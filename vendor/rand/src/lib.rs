//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (the container has no crates.io access, so external deps are
//! vendored as minimal local implementations).
//!
//! Implemented surface: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `gen_ratio`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`seq::SliceRandom::shuffle`]. The generator
//! is xoshiro256++ seeded via splitmix64 — deterministic and of ample
//! quality for workload-input synthesis. Workload expectations are
//! computed by Rust reference implementations from the same generated
//! data, so the exact stream need not match upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        u32::sample_range(self, 0, denominator, false) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "whole domain" uniform distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a bounded range (`Rng::gen_range`).
pub trait SampleUniform: Sized {
    /// Uniform in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    assert!(low <= high, "empty range");
                    (high as $wide).wrapping_sub(low as $wide).wrapping_add(1)
                } else {
                    assert!(low < high, "empty range");
                    (high as $wide).wrapping_sub(low as $wide)
                };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return rng.next_u64() as $t;
                }
                // Modulo bias is < 2^-40 for every span used here.
                low.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _: bool) -> Self {
        assert!(low < high, "empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as upstream does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// Upstream's `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::seq::SliceRandom;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let u = r.gen_range(1u32..=8);
            assert!((1..=8).contains(&u));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_ratio(4, 5)).count();
        assert!((7_500..8_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
