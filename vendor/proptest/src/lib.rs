//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses (the container has no crates.io access, so external
//! deps are vendored as minimal local implementations).
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible
//! runs), and there is no shrinking — a failing case panics with the
//! generated values visible via the assertion message.
//!
//! Implemented surface: [`strategy::Strategy`] with `prop_map`/`boxed`,
//! range and tuple strategies, [`strategy::Just`], [`arbitrary::any`],
//! [`collection::vec`], [`ProptestConfig::with_cases`], and the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`]
//! macros.

#![forbid(unsafe_code)]

/// Per-block test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! The deterministic case generator.

    /// Splitmix64 generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span =
                        (*self.end() as u64).wrapping_sub(*self.start() as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    self.start().wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generates one value covering the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($s:ident),+) => {
            impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($s::arbitrary(rng),)+)
                }
            }
        };
    }
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            $(let $arg = $strat;)+
            for _case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assertion inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_generate_in_domain() {
        let mut rng = crate::test_runner::TestRng::from_name("domains");
        let s = prop_oneof![(0u32..4).prop_map(|v| v * 10), Just(99u32)];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 99 || v % 10 == 0 && v < 40, "v = {v}");
        }
        let t = (0usize..3, 1i32..=1, any::<bool>());
        for _ in 0..50 {
            let (a, b, _c) = t.generate(&mut rng);
            assert!(a < 3);
            assert_eq!(b, 1);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::TestRng::from_name("lens");
        let s = crate::collection::vec(0u8..255, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trips(x in 0u64..1000, flip in any::<bool>()) {
            let y = if flip { x } else { x + 1 };
            prop_assert!(y >= x);
            prop_assert_ne!(x, 1000);
        }
    }
}
