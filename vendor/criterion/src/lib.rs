//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses (the container has no crates.io access, so external
//! deps are vendored as minimal local implementations).
//!
//! It measures for real: each `bench_function` estimates the per-call
//! cost, sizes batches to ~10 ms, takes `sample_size` timed samples, and
//! prints min/median ns-per-iteration — enough to compare runs (e.g. the
//! NullSink-overhead acceptance check), without upstream's statistics or
//! HTML reports.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

const TARGET_SAMPLE: Duration = Duration::from_millis(10);
const WARMUP: Duration = Duration::from_millis(25);

/// Benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args; honor a plain substring filter
        // and ignore harness flags like `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 20 }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = name.to_string();
        run_one(&full, 20, self.filter.as_deref(), f);
        self
    }
}

/// Throughput annotation (recorded for API compatibility; reporting is
/// ns/iter either way).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records the per-iteration throughput (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.criterion.filter.as_deref(), f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    sample_size: usize,
    /// ns per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of a batch sized to
    /// roughly 10 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-call cost.
        let start = Instant::now();
        let mut calls: u64 = 0;
        while start.elapsed() < WARMUP {
            black_box(f());
            calls += 1;
        }
        let per_call = start.elapsed().as_secs_f64() / calls as f64;
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_call) as u64).clamp(1, 1_000_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(ns);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, filter: Option<&str>, mut f: F) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples: closure never called iter)");
        return;
    }
    let mut s = b.samples.clone();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = s[s.len() / 2];
    let min = s[0];
    println!(
        "{name:<40} time: [min {:>12} median {:>12}] ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        s.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher { sample_size: 3, samples: Vec::new() };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&ns| ns > 0.0));
    }
}
