//! # multiscalar-repro — reproduction of *Multiscalar Processors* (ISCA 1995)
//!
//! This is the umbrella crate of the workspace; it re-exports the full
//! stack so examples and integration tests can use one import. See the
//! member crates for the implementation:
//!
//! * [`ms_isa`] — the annotated instruction set,
//! * [`ms_asm`] — the assembler (scalar + multiscalar binaries from one
//!   source),
//! * [`ms_cfg`] — control-flow-graph walking for task annotation,
//! * [`ms_memsys`] — memory, caches, bus, and the Address Resolution
//!   Buffer,
//! * [`ms_pipeline`] — the processing-unit pipeline,
//! * [`ms_predictor`] — task prediction, return-address stack, descriptor
//!   cache,
//! * [`multiscalar`] — the multiscalar processor and the scalar baseline,
//! * [`ms_workloads`] — the evaluation benchmark suite.
//!
//! ## Where the documentation lives
//!
//! The repository's design notes are markdown files at the root, each
//! the authority on its axis:
//!
//! * **DESIGN.md** — what is built and why: system inventory,
//!   microarchitecture parameters, testing strategy, fault injection,
//!   differential fuzzing, cycle accounting (§11), and the
//!   event-driven skip-ahead scheduler with its safety argument (§13).
//! * **PERFORMANCE.md** — host throughput: the `msperf`/`msprof`
//!   harnesses, the interleaved A/B methodology, both optimization
//!   passes, and the `BENCH_perf.json` artifact schema.
//! * **EXPERIMENTS.md** — simulated results: every paper table and
//!   figure reproduced, paper numbers beside measured ones.
//! * **ROADMAP.md** — the north star and open items.
//!
//! Simulated behaviour is byte-deterministic: wall-clock never appears
//! in a result artifact, and host-side optimizations (PERFORMANCE.md)
//! are admitted only when golden tests prove `RunStats` and CPI stacks
//! unchanged — see `SimConfig::skip_ahead` for the knob that toggles
//! the pass-2 scheduler.

pub use ms_asm;
pub use ms_cfg;
pub use ms_isa;
pub use ms_memsys;
pub use ms_pipeline;
pub use ms_predictor;
pub use ms_workloads;
pub use multiscalar;
