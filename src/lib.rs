//! # multiscalar-repro — reproduction of *Multiscalar Processors* (ISCA 1995)
//!
//! This is the umbrella crate of the workspace; it re-exports the full
//! stack so examples and integration tests can use one import. See the
//! member crates for the implementation:
//!
//! * [`ms_isa`] — the annotated instruction set,
//! * [`ms_asm`] — the assembler (scalar + multiscalar binaries from one
//!   source),
//! * [`ms_memsys`] — memory, caches, bus, and the Address Resolution
//!   Buffer,
//! * [`ms_pipeline`] — the processing-unit pipeline,
//! * [`ms_predictor`] — task prediction, return-address stack, descriptor
//!   cache,
//! * [`multiscalar`] — the multiscalar processor and the scalar baseline,
//! * [`ms_workloads`] — the evaluation benchmark suite.

pub use ms_asm;
pub use ms_cfg;
pub use ms_isa;
pub use ms_memsys;
pub use ms_pipeline;
pub use ms_predictor;
pub use ms_workloads;
pub use multiscalar;
