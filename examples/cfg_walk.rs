//! Figure 2: the task-by-task walk of a program CFG.
//!
//! The paper's Figure 2 shows basic blocks A..E with an inner loop (B, C)
//! inside an outer loop (A..D), executed as the dynamic sequence
//! A¹₁B¹₁C¹₁B¹₂… — one *task* per outer iteration. This example builds
//! that CFG, runs it on a 4-unit multiscalar processor, and prints the
//! retirement log: the sequential task walk reconstructed from a parallel
//! execution.
//!
//! ```text
//! cargo run --example cfg_walk
//! ```

use ms_asm::{assemble, AsmMode};
use multiscalar::{Processor, SimConfig};

/// Outer loop of 3 iterations; each iteration runs a data-dependent number
/// of inner (B,C) iterations, like the walk in the paper's Figure 2.
const SRC: &str = r#"
.data
inner_counts: .word 3, 2, 3      ; B/C repetitions per outer iteration
sums: .space 12

.text
main:
.task targets=A create=$16,$20,$22
INIT:
    li!f    $16, 3               ; outer trip count
    li!f    $20, 0               ; outer induction
    la!f    $22, inner_counts
    b!s     A

; Task = one outer iteration: A, then the inner loop over B and C, then D.
.task targets=A,E create=$20,$22
A:
    addiu!f $20, $20, 1
    addiu!f $22, $22, 4
    lw      $9, -4($22)          ; inner trip count for this iteration
    li      $8, 0
B:
    addiu   $8, $8, 1            ; block B
C:
    bne     $8, $9, B            ; block C: inner back edge
D:
    la      $10, sums
    sll     $11, $20, 2
    addu    $10, $10, $11
    sw      $8, -4($10)
    bne!s   $20, $16, A          ; outer back edge / exit (task boundary)

.task targets=halt create=
E:
    halt
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = assemble(SRC, AsmMode::Multiscalar)?;
    println!("program listing (Figure 4 shape):\n{}", prog.listing());

    let mut p = Processor::new(prog.clone(), SimConfig::multiscalar(4))?;
    let stats = p.run()?;

    println!("task walk (retirement order):");
    let name_of = |entry: u32| {
        prog.symbols.iter().find(|(_, &a)| a == entry).map(|(n, _)| n.as_str()).unwrap_or("?")
    };
    for (i, r) in p.retirement_log().iter().enumerate() {
        println!(
            "  task {i}: {:12} on unit {} retired at cycle {:>4} ({} instructions)",
            name_of(r.entry),
            r.unit,
            r.cycle,
            r.instructions
        );
    }
    println!(
        "\n{} tasks retired in {} cycles; inner-loop branches were never \
         predicted by the sequencer — only task boundaries were",
        stats.tasks_retired, stats.cycles
    );
    let sums = prog.symbol("sums").expect("sums");
    let got: Vec<u64> = (0..3).map(|i| p.memory().read_le(sums + 4 * i, 4)).collect();
    assert_eq!(got, vec![3, 2, 3]);
    println!("inner-iteration counts verified: {got:?}");
    Ok(())
}
