//! Section 2.2's binary-migration story.
//!
//! "The job of migrating a multiscalar program from one generation to
//! another generation of hardware might be as simple as taking an old
//! binary, determining the CFG (a routine task), deciding upon a task
//! structure, and producing a new binary. … The core of the binary …
//! remain[s] virtually the same."
//!
//! This example takes the assembled Example (Figure 3) binary, strips it
//! back to annotated source with the disassembler, reassembles the
//! regenerated source, verifies bit-identity, and runs both binaries to
//! show identical architectural results and cycle counts.
//!
//! ```text
//! cargo run --release --example migrate_binary
//! ```

use ms_asm::{assemble, program_to_source, AsmMode};
use ms_cfg::{check_program, Severity};
use ms_workloads::{by_name, Scale};
use multiscalar::{Processor, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = by_name("Example", Scale::Test).expect("Example workload");
    let original = w.assemble(AsmMode::Multiscalar)?;

    // "Determine the CFG" — the static checker rediscovers every task
    // region and exit from the binary alone.
    let report = check_program(&original);
    println!(
        "old binary: {} instructions, {} tasks, {} annotation errors",
        original.text.len(),
        report.tasks.len(),
        report.of_severity(Severity::Error).count()
    );

    // "Produce a new binary" — regenerate source and reassemble.
    let source = program_to_source(&original);
    let migrated = assemble(&source, AsmMode::Multiscalar)?;
    assert_eq!(original.text, migrated.text, "text must be preserved");
    assert_eq!(original.tasks, migrated.tasks, "descriptors must be preserved");
    assert_eq!(original.data, migrated.data, "data must be preserved");
    println!("regenerated {} lines of source; reassembly is bit-identical", source.lines().count());

    // Both binaries behave identically on the same machine.
    let mut p1 = Processor::new(original, SimConfig::multiscalar(4))?;
    let s1 = p1.run()?;
    let mut p2 = Processor::new(migrated, SimConfig::multiscalar(4))?;
    let s2 = p2.run()?;
    assert_eq!(s1.cycles, s2.cycles);
    assert_eq!(s1.instructions, s2.instructions);
    println!(
        "both binaries: {} instructions in {} cycles (IPC {:.2})",
        s1.instructions,
        s1.cycles,
        s1.ipc()
    );
    println!("migration round-trip verified");
    Ok(())
}
