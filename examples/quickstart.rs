//! Quickstart: write a tiny annotated program, run it on the scalar
//! baseline and on 4-unit / 8-unit multiscalar processors, and compare.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ms_asm::{assemble, AsmMode};
use multiscalar::{Processor, ScalarProcessor, SimConfig};

/// A vector-scale loop: out[i] = 3 * in[i] + 7. One task per iteration;
/// the only value crossing tasks is the induction cursor, forwarded at
/// the top of each task.
const SRC: &str = r#"
.data
in:  .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
inend: .word 0
out: .space 64

.text
main:
.task targets=LOOP create=$16,$20,$22
INIT:
    la      $20, in
    la      $22, out
    la!f    $16, inend
    release $20, $22
    b!s     LOOP

.task targets=LOOP,DONE create=$20,$22
LOOP:
    addiu!f $20, $20, 4     ; forward the cursor early (paper Section 3.2.2)
    addiu!f $22, $22, 4
    lw      $8, -4($20)
    li      $9, 3
    mul     $8, $8, $9
    addiu   $8, $8, 7
    sw      $8, -4($22)
    bne!s   $20, $16, LOOP  ; stop bit: the task ends here

.task targets=halt create=
DONE:
    halt
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One source, two binaries (paper Table 2).
    let scalar_bin = assemble(SRC, AsmMode::Scalar)?;
    let multi_bin = assemble(SRC, AsmMode::Multiscalar)?;

    let mut scalar = ScalarProcessor::new(scalar_bin.clone(), SimConfig::scalar())?;
    let s = scalar.run()?;
    println!(
        "scalar   : {} instructions, {} cycles (IPC {:.2})",
        s.instructions,
        s.cycles,
        s.ipc()
    );

    for units in [4usize, 8] {
        let mut p = Processor::new(multi_bin.clone(), SimConfig::multiscalar(units))?;
        let m = p.run()?;
        println!(
            "{units}-unit   : {} instructions, {} cycles (speedup {:.2}, prediction {:.1}%)",
            m.instructions,
            m.cycles,
            s.cycles as f64 / m.cycles as f64,
            100.0 * m.prediction_accuracy()
        );
        // The results are identical to the scalar run.
        let out = multi_bin.symbol("out").expect("out symbol");
        for i in 0..16u32 {
            let got = p.memory().read_le(out + 4 * i, 4);
            assert_eq!(got, (3 * (i as u64 + 1)) + 7);
        }
    }
    println!("all outputs verified: out[i] = 3*in[i] + 7");
    Ok(())
}
