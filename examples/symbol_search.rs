//! The paper's running example (Figure 3): the linked-list symbol search,
//! with the paper's input ("16 tokens, each appearing 450 times").
//!
//! Prints the scalar-vs-multiscalar comparison the paper uses to motivate
//! the whole paradigm: "other known ILP paradigms such as superscalar and
//! VLIW are unlikely to extract any meaningful parallelism, in an
//! efficient manner, for this example."
//!
//! ```text
//! cargo run --release --example symbol_search
//! ```

use ms_workloads::{by_name, Scale};
use multiscalar::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = by_name("Example", Scale::Full).expect("Example workload");
    println!("{}\n", w.description);

    let s = w.run_scalar(SimConfig::scalar())?;
    println!(
        "scalar      : {:>8} instructions {:>9} cycles  IPC {:.2}",
        s.instructions,
        s.cycles,
        s.ipc()
    );

    for units in [4usize, 8] {
        for width in [1usize, 2] {
            let cfg = SimConfig::multiscalar(units).issue(width);
            let m = w.run_multiscalar(cfg)?;
            println!(
                "{units}-unit {width}-way: {:>8} instructions {:>9} cycles  speedup {:.2}  \
                 prediction {:.1}%  squashes {}+{}",
                m.instructions,
                m.cycles,
                s.cycles as f64 / m.cycles as f64,
                100.0 * m.prediction_accuracy(),
                m.control_squashes,
                m.memory_squashes,
            );
        }
    }
    println!("\nevery run validated the final symbol table against the reference");
    Ok(())
}
