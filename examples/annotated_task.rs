//! Figure 4: what a multiscalar program looks like.
//!
//! Prints the assembled Example (Figure 3) binary the way the paper's
//! Figure 4 presents it: task descriptors with create masks and successor
//! targets, forward bits, stop bits and release instructions — then shows
//! the binary encoding of a few instructions with their tag bits (the
//! paper's "table of tag bits" beside an unchanged base ISA).
//!
//! ```text
//! cargo run --example annotated_task
//! ```

use ms_asm::AsmMode;
use ms_isa::encode;
use ms_workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = by_name("Example", Scale::Test).expect("Example workload");
    let ms = w.assemble(AsmMode::Multiscalar)?;
    let sc = w.assemble(AsmMode::Scalar)?;

    println!("=== multiscalar binary (Figure 4 shape) ===\n");
    // Print only the text section (skip the data block listing).
    println!("{}", ms.listing());

    println!("=== task descriptors ===\n");
    for desc in ms.tasks.values() {
        println!("{desc}");
    }

    println!("\n=== tag-bit table (first task) ===\n");
    let outer = ms.symbol("OUTER").expect("OUTER");
    println!("{:10} {:>10} {:>4}  instruction", "addr", "word", "tags");
    for i in 0..10u32 {
        let pc = outer + 4 * i;
        let instr = ms.instr_at(pc).expect("in text");
        let (word, tags) = encode(&instr)?;
        println!("{pc:#010x} {word:#010x}  {tags:#05b}  {instr}");
    }

    println!(
        "\nscalar binary: {} instructions; multiscalar binary: {} \
         instructions (+{}, the releases of Figure 4)",
        sc.text.len(),
        ms.text.len(),
        ms.text.len() - sc.text.len()
    );
    Ok(())
}
