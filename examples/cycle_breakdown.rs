//! Section 3: the distribution of processing-unit cycles.
//!
//! Runs three benchmarks with opposite characters — cmp (independent
//! tasks), compress (a register recurrence between tasks) and gcc
//! (squash-dominated) — and prints where their unit-cycles go, using the
//! paper's taxonomy: useful computation, non-useful computation (work
//! ultimately squashed), no-computation (inter-task wait, intra-task
//! wait, waiting for retirement, ARB stalls) and idle.
//!
//! Also emits a Chrome `trace_event` timeline per benchmark (open in
//! Perfetto or `chrome://tracing`) showing each unit's task spans and the
//! squash waves behind the "non-useful" bucket. Timelines are written
//! under `target/examples/` so build products never land in the source
//! tree (the exact path is printed per benchmark).
//!
//! ```text
//! cargo run --release --example cycle_breakdown
//! ```

use ms_workloads::{by_name, Scale};
use multiscalar::trace::ChromeTraceSink;
use multiscalar::SimConfig;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;
    for name in ["Cmp", "Compress", "Gcc"] {
        let w = by_name(name, Scale::Test).expect("workload");
        let trace_path =
            out_dir.join(format!("cycle_breakdown_{}.trace.json", name.to_ascii_lowercase()));
        let sink = ChromeTraceSink::new(BufWriter::new(File::create(&trace_path)?));
        let (stats, sink) = w.run_multiscalar_with_sink(SimConfig::multiscalar(8), sink)?;
        let (_, err) = sink.into_inner();
        if let Some(e) = err {
            return Err(e.into());
        }
        println!("=== {name} (8 units, 1-way, in-order) ===");
        println!("{}", stats);
        println!("timeline: {} (load in Perfetto)\n", trace_path.display());
    }
    println!(
        "cmp keeps its units busy; compress stalls successors on the `ent` \
         value (inter-task); gcc burns cycles on squashed work — the three \
         loss modes of paper Section 3."
    );
    Ok(())
}
