//! Section 3: the distribution of processing-unit cycles.
//!
//! Runs three benchmarks with opposite characters — cmp (independent
//! tasks), compress (a register recurrence between tasks) and gcc
//! (squash-dominated) — and prints where their unit-cycles go, using the
//! paper's taxonomy: useful computation, non-useful computation (work
//! ultimately squashed), no-computation (inter-task wait, intra-task
//! wait, waiting for retirement, ARB stalls) and idle.
//!
//! ```text
//! cargo run --release --example cycle_breakdown
//! ```

use ms_workloads::{by_name, Scale};
use multiscalar::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["Cmp", "Compress", "Gcc"] {
        let w = by_name(name, Scale::Test).expect("workload");
        let stats = w.run_multiscalar(SimConfig::multiscalar(8))?;
        println!("=== {name} (8 units, 1-way, in-order) ===");
        println!("{}\n", stats);
    }
    println!(
        "cmp keeps its units busy; compress stalls successors on the `ent` \
         value (inter-task); gcc burns cycles on squashed work — the three \
         loss modes of paper Section 3."
    );
    Ok(())
}
