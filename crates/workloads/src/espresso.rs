//! SPECint92 `espresso` kernel (`massive_count`).
//!
//! Paper Section 5.3: "The top function in espresso is massive_count (37%
//! of instructions). The massive_count function has two main loops. In
//! both cases, the loop body is a task … In the first loop, each
//! iteration executes a variable number of instructions (cycles are lost
//! due to load balance). In the second loop (which contains a nested
//! loop), an iteration of the outer loop includes all the iterations of
//! the inner loop (in this situation, the task partitioning needed a
//! manual hint to select this granularity)."
//!
//! Loop A counts set bits of each word into shared per-bit-position
//! counters in memory (inter-task memory dependences through the counter
//! array); loop B sums matrix rows (independent tasks containing a nested
//! loop).

use crate::data::{rng, word_block, Scale};
use crate::{Check, Workload};
use rand::Rng;

/// Builds the espresso workload.
pub fn workload(scale: Scale) -> Workload {
    let nwords = scale.pick(48, 2500);
    let rows = scale.pick(8, 120);
    let cols = 16usize;

    let mut r = rng(0xe59);
    // Sparse words (a few set bits each) with occasional zeros.
    // Most words are empty (trivial tasks); the rest are dense (long
    // bit-count loops) — the paper's "variable number of instructions"
    // load imbalance.
    let words: Vec<u32> = (0..nwords)
        .map(|_| {
            if r.gen_ratio(4, 5) {
                0
            } else {
                let mut w = 0u32;
                for _ in 0..r.gen_range(16..30) {
                    w |= 1 << r.gen_range(0..32);
                }
                w
            }
        })
        .collect();
    let mat: Vec<u32> = (0..rows * cols).map(|_| r.gen_range(0..1000)).collect();

    // Reference.
    let mut cnt = [0u32; 32];
    for &w in &words {
        for (b, c) in cnt.iter_mut().enumerate() {
            if w & (1 << b) != 0 {
                *c += 1;
            }
        }
    }
    let rowsums: Vec<u32> = (0..rows)
        .map(|rr| mat[rr * cols..(rr + 1) * cols].iter().copied().fold(0u32, u32::wrapping_add))
        .collect();

    let mut checks: Vec<Check> = cnt
        .iter()
        .enumerate()
        .map(|(b, &v)| Check::word("cnt", (b * 4) as u32, v, &format!("bit {b} count")))
        .collect();
    checks.extend(
        rowsums
            .iter()
            .enumerate()
            .map(|(rr, &v)| Check::word("rowsum", (rr * 4) as u32, v, &format!("row {rr} sum"))),
    );

    let source = format!(
        r#"
; espresso massive_count: bit counting + nested-loop row sums.
.data
{words_block}
wordsend: .word 0
{mat_block}
matend: .word 0
.align 2
cnt:    .space 128
rowsum: .space {rowsum_bytes}

.text
main:
.task targets=WLOOP create=$16,$20
INITA:
    la      $20, words
    la!f    $16, wordsend
    release $20
    b!s     WLOOP

; Loop A: one word per task; shared counters in memory.
.task targets=WLOOP,INITB create=$20
WLOOP:
    addiu!f $20, $20, 4
    lw      $8, -4($20)
    beq     $8, $0, WNEXT      ; zero words do no counting work
    la      $9, cnt
BITLOOP:
    andi    $10, $8, 1
    beq     $10, $0, NOBIT
    lw      $11, 0($9)
    addiu   $11, $11, 1
    sw      $11, 0($9)
NOBIT:
    addiu   $9, $9, 4
    srl     $8, $8, 1
    bne     $8, $0, BITLOOP
WNEXT:
    bne!s   $20, $16, WLOOP

; Loop B setup (the "manual hint" granularity: task = whole row).
.task targets=BLOOP create=$17,$20,$22
INITB:
    la      $20, mat
    la      $22, rowsum
    la!f    $17, matend
    release $20, $22
    b!s     BLOOP

.task targets=BLOOP,EDONE create=$20,$22
BLOOP:
    addiu!f $20, $20, {rowstride}
    addiu!f $22, $22, 4
    li      $9, -{rowstride}
    li      $8, 0
BSUM:
    addu    $10, $20, $9
    lw      $11, 0($10)
    addu    $8, $8, $11
    addiu   $9, $9, 4
    bltz    $9, BSUM
    ; keep the low 32 bits (reference wraps at u32)
    sll     $8, $8, 32
    srl     $8, $8, 32
    sw      $8, -4($22)
    bne!s   $20, $17, BLOOP

.task targets=halt create=
EDONE:
    halt
"#,
        words_block = word_block("words", &words),
        mat_block = word_block("mat", &mat),
        rowsum_bytes = rows * 4,
        rowstride = cols * 4,
    );

    Workload {
        name: "Espresso",
        description: "massive_count: per-word bit counting into shared \
                      memory counters (violations/forwarding) plus \
                      independent nested-loop row sums",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }

    #[test]
    fn memory_counter_chains_cause_violations_or_forwarding() {
        let w = workload(Scale::Test);
        let m = w.run_multiscalar(multiscalar::SimConfig::multiscalar(8)).unwrap();
        // The shared counters must exercise the ARB's speculative paths.
        assert!(m.arb.load_forwards + m.memory_squashes > 0);
    }
}
