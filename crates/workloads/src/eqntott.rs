//! SPECint92 `eqntott` kernel (`cmppt`).
//!
//! Paper Section 5.3: "Most (85%) of the instructions in eqntott are in
//! the cmppt function, which is dominated by a loop. The compiler
//! automatically encompasses the entire loop body into a task, allowing
//! multiple iterations of the loop to execute in parallel."
//!
//! `cmppt` lexicographically compares pairs of product-term vectors. One
//! task = one full pair comparison (the inner word loop with early exit),
//! so tasks are independent but vary in length — moderate speedups, high
//! prediction accuracy.

use crate::data::{rng, word_block, Scale};
use crate::{Check, Workload};
use rand::Rng;

const L: usize = 8; // words per product term

/// Builds the eqntott workload.
pub fn workload(scale: Scale) -> Workload {
    let pairs = scale.pick(24, 2500);
    let mut r = rng(0xe9);
    let mut va = Vec::with_capacity(pairs * L);
    let mut vb = Vec::with_capacity(pairs * L);
    for _ in 0..pairs {
        let base: Vec<u32> = (0..L).map(|_| r.gen_range(0..0x4000)).collect();
        let mut other = base.clone();
        if r.gen_ratio(7, 10) {
            // Most differing pairs differ early (short tasks); equal
            // pairs run the whole inner loop (long tasks) — the load
            // imbalance that holds eqntott to moderate speedups.
            let at = if r.gen_ratio(3, 4) { r.gen_range(0..2) } else { r.gen_range(0..L) };
            other[at] = other[at].wrapping_add(1 + r.gen_range(0..5));
        }
        va.extend_from_slice(&base);
        vb.extend_from_slice(&other);
    }

    // Reference: 0 = equal, 1 = a < b, 2 = a > b (on the first difference).
    let results: Vec<u32> = (0..pairs)
        .map(|p| {
            for i in 0..L {
                let (x, y) = (va[p * L + i], vb[p * L + i]);
                if x != y {
                    return if x < y { 1 } else { 2 };
                }
            }
            0
        })
        .collect();
    let eqcount = results.iter().filter(|&&v| v == 0).count() as u32;

    let mut checks: Vec<Check> = results
        .iter()
        .enumerate()
        .map(|(p, &v)| Check::word("out", (p * 4) as u32, v, &format!("cmppt({p})")))
        .collect();
    checks.push(Check::word("eqcount", 0, eqcount, "equal-pair count"));

    let source = format!(
        r#"
; eqntott cmppt: one product-term comparison per task.
.data
{va_block}
vaend: .word 0
{vb_block}
.align 2
out: .space {out_bytes}
eqcount: .word 0

.text
main:
.task targets=PAIR create=$16,$20,$21,$22,$24
INIT:
    la      $20, va
    la      $21, vb
    la      $22, out
    la!f    $16, vaend
    li!f    $24, 0             ; equal-pair counter (register recurrence)
    release $20, $21, $22
    b!s     PAIR

.task targets=PAIR,PDONE create=$20,$21,$22,$24
PAIR:
    addiu!f $20, $20, {stride}
    addiu!f $21, $21, {stride}
    addiu!f $22, $22, 4
    li      $9, -{stride}
    li      $8, 0              ; result: equal
CMPLOOP:
    addu    $10, $20, $9
    lw      $11, 0($10)
    addu    $10, $21, $9
    lw      $12, 0($10)
    bne     $11, $12, DIFFER
    addiu   $9, $9, 4
    bltz    $9, CMPLOOP
    j       STORE_RES
DIFFER:
    sltu    $13, $11, $12
    li      $8, 2
    beq     $13, $0, STORE_RES
    li      $8, 1
STORE_RES:
    sw      $8, -4($22)
    ; The result feeds eqntott's bookkeeping: equal pairs bump a counter
    ; that is only known late in the task (partial serialization).
    bne     $8, $0, NOTEQ
    addiu!f $24, $24, 1
    j       PNEXT
NOTEQ:
    release $24
PNEXT:
    bne!s   $20, $16, PAIR

.task targets=halt create=
PDONE:
    la      $9, eqcount
    sw      $24, 0($9)
    halt
"#,
        va_block = word_block("va", &va),
        vb_block = word_block("vb", &vb),
        stride = L * 4,
        out_bytes = pairs * 4,
    );

    Workload {
        name: "Eqntott",
        description: "independent vector comparisons with early exit \
                      (variable task length -> load-balance losses); \
                      moderate speedups",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;
    use multiscalar::SimConfig;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }

    #[test]
    fn comparisons_run_in_parallel() {
        let w = workload(Scale::Test);
        let s = w.run_scalar(SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(SimConfig::multiscalar(8)).unwrap();
        assert!(s.cycles as f64 / m.cycles as f64 > 1.5);
    }
}
