//! SPECint92 `sc` kernel (`RealEvalAll` work list).
//!
//! Paper Section 5.3: "we restructured the RealEvalOne loop to build a
//! work list of the cells to be evaluated and to call RealEvalOne for each
//! of the cells on the work list" — because the original per-cell loop had
//! "enormous" load imbalance (empty vs. expression cells). One task = one
//! work-list entry; each calls a *suppressed* recursive expression
//! evaluator (a function executed inside the task), using a per-task stack
//! frame that the ARB renames across units exactly as Section 2.3
//! describes for parallel calls to `process`.

use crate::data::{rng, Scale};
use crate::{Check, Workload};
use rand::Rng;
use std::fmt::Write;

/// Expression tree: leaf or binary op (1 add, 2 sub, 3 mul).
enum Node {
    Leaf(i32),
    Op(u32, Box<Node>, Box<Node>),
}

fn gen_tree(r: &mut impl Rng, depth: u32) -> Node {
    if depth == 0 || r.gen_ratio(1, 3) {
        Node::Leaf(r.gen_range(-50..50))
    } else {
        Node::Op(
            r.gen_range(1..4),
            Box::new(gen_tree(r, depth - 1)),
            Box::new(gen_tree(r, depth - 1)),
        )
    }
}

/// Evaluates with the exact semantics of the assembly: 64-bit arithmetic
/// on sign-extended leaves, truncated to u32 at the final store.
fn eval(n: &Node) -> i64 {
    match n {
        Node::Leaf(v) => *v as i64,
        Node::Op(op, l, rr) => {
            let (a, b) = (eval(l), eval(rr));
            match op {
                1 => a.wrapping_add(b),
                2 => a.wrapping_sub(b),
                _ => a.wrapping_mul(b),
            }
        }
    }
}

/// Emits `.word` node records, returning the label of the root.
fn emit_tree(n: &Node, out: &mut String, next_id: &mut usize) -> String {
    let id = *next_id;
    *next_id += 1;
    let label = format!("nd{id}");
    match n {
        Node::Leaf(v) => {
            let _ = writeln!(out, "{label}: .word 0, {v}, 0");
        }
        Node::Op(op, l, r) => {
            let ll = emit_tree(l, out, next_id);
            let rl = emit_tree(r, out, next_id);
            let _ = writeln!(out, "{label}: .word {op}, {ll}, {rl}");
        }
    }
    label
}

/// Builds the sc workload.
pub fn workload(scale: Scale) -> Workload {
    let cells = scale.pick(12, 400);
    let mut r = rng(0x5c);
    let mut nodes = String::new();
    let mut next_id = 0usize;
    let mut roots = Vec::with_capacity(cells);
    let mut expected = Vec::with_capacity(cells);

    let mut trees = Vec::new();
    for _ in 0..cells {
        // Highly variable cell cost (the paper: "the load imbalance
        // between the work at each cell is enormous").
        let depth = r.gen_range(0..8);
        let t = gen_tree(&mut r, depth);
        expected.push(eval(&t) as u32);
        trees.push(t);
    }
    for t in &trees {
        roots.push(emit_tree(t, &mut nodes, &mut next_id));
    }

    let mut worklist = String::from(".align 2\nworklist:\n");
    for root in &roots {
        let _ = writeln!(worklist, "  .word {root}");
    }

    let checks = expected
        .iter()
        .enumerate()
        .map(|(i, &v)| Check::word("results", (i * 4) as u32, v, &format!("cell {i} value")))
        .collect();

    let source = format!(
        r#"
; sc RealEvalAll: a work list of cells, each evaluated by a recursive
; expression interpreter called inside the task (suppressed call).
.data
{nodes}
{worklist}
wlend: .word 0
.align 2
results: .space {res_bytes}

.text
main:
.task targets=WORK create=$16,$20,$22
INIT:
    la      $20, worklist
    la      $22, results
    la!f    $16, wlend
    release $20, $22
    b!s     WORK

.task targets=WORK,SCDONE create=$20,$22
WORK:
    addiu!f $20, $20, 4
    addiu!f $22, $22, 4
    lw      $4, -4($20)        ; cell expression root
    jal     eval
    sw      $2, -4($22)
    bne!s   $20, $16, WORK

.task targets=halt create=
SCDONE:
    halt

; eval(node in $4) -> $2. Recursive; uses the task's (ARB-renamed) stack.
eval:
    lw      $9, 0($4)
    bne     $9, $0, EVINNER
    lw      $2, 4($4)          ; leaf value (sign-extended)
    jr      $31
EVINNER:
    addiu   $29, $29, -32
    sd      $31, 0($29)
    sd      $4, 8($29)
    lw      $4, 4($4)
    jal     eval
    sd      $2, 16($29)
    ld      $4, 8($29)
    lw      $4, 8($4)
    jal     eval
    ld      $9, 16($29)        ; left value
    ld      $4, 8($29)
    lw      $10, 0($4)         ; op
    xori    $11, $10, 1
    beq     $11, $0, DOADD
    xori    $11, $10, 2
    beq     $11, $0, DOSUB
    mul     $2, $9, $2
    j       EVRET
DOADD:
    addu    $2, $9, $2
    j       EVRET
DOSUB:
    subu    $2, $9, $2
EVRET:
    ld      $31, 0($29)
    addiu   $29, $29, 32
    jr      $31
"#,
        nodes = nodes,
        worklist = worklist,
        res_bytes = cells * 4,
    );

    Workload {
        name: "Sc",
        description: "work-list of expression cells, each evaluated by a \
                      recursive interpreter inside the task; per-task stack \
                      frames renamed by the ARB; variable task cost",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn reference_eval_matches_hand_cases() {
        let t = Node::Op(
            3,
            Box::new(Node::Op(1, Box::new(Node::Leaf(2)), Box::new(Node::Leaf(3)))),
            Box::new(Node::Leaf(-4)),
        );
        assert_eq!(eval(&t), -20);
    }

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }
}
