//! SPECfp92 `tomcatv` kernel.
//!
//! Paper Section 5.3: "For tomcatv nearly all time is spent in a loop
//! whose iterations are independent. Accordingly, we achieve good speedup
//! for 4-unit and 8-unit multiscalar processors. The higher-issue
//! configurations are stymied because of the contention on the cache to
//! memory bus." One task = one interior mesh row of a five-point f64
//! stencil; the arrays exceed the data-cache banks, so misses load the
//! shared bus exactly as the paper describes.

use crate::data::{double_block, rng, Scale};
use crate::{Check, Workload};
use rand::Rng;

/// Builds the tomcatv workload.
pub fn workload(scale: Scale) -> Workload {
    let rows = scale.pick(8, 104);
    let cols = scale.pick(10, 104);
    let mut r = rng(0x70c);
    let xin: Vec<f64> = (0..rows * cols).map(|_| r.gen_range(0.0..1.0)).collect();

    // Reference stencil, with the assembly's exact operation order:
    // ((left + right) + (up + down)) * 0.25.
    let mut xout = vec![0.0f64; rows * cols];
    for i in 1..rows - 1 {
        for j in 1..cols - 1 {
            let l = xin[i * cols + j - 1];
            let rr = xin[i * cols + j + 1];
            let u = xin[(i - 1) * cols + j];
            let d = xin[(i + 1) * cols + j];
            xout[i * cols + j] = ((l + rr) + (u + d)) * 0.25;
        }
    }

    // Check a deterministic sample of interior points (all of them at
    // test scale) plus the corners of the interior.
    let mut checks = Vec::new();
    let step = if rows * cols > 512 { 7 } else { 1 };
    let mut k = 0usize;
    for i in 1..rows - 1 {
        for j in 1..cols - 1 {
            if k.is_multiple_of(step) {
                checks.push(Check::double(
                    "xout",
                    ((i * cols + j) * 8) as u32,
                    xout[i * cols + j],
                    &format!("xout[{i}][{j}]"),
                ));
            }
            k += 1;
        }
    }

    let source = format!(
        r#"
; tomcatv: independent row tasks over a five-point f64 stencil.
.data
{xin_block}
.align 3
xout: .space {arr_bytes}
quarter: .double 0.25

.text
main:
.task targets=ROW create=$17,$18,$19,$20,$22,$f1
INIT:
    la      $20, xin          ; row cursor (points at row r-1 base)
    la      $22, xout
    li!f    $18, {rowstride}  ; row stride in bytes
    li!f    $19, {colend}     ; last interior column offset
    la      $9, quarter
    l.d!f   $f1, 0($9)
    la!f    $17, rowend       ; cursor bound: base of last interior row
    release $20, $22
    b!s     ROW

.task targets=ROW,TDONE create=$20,$22
ROW:
    addiu!f $20, $20, {rowstride}
    addiu!f $22, $22, {rowstride}
    li      $9, 8             ; first interior column (j = 1)
COL:
    addu    $10, $20, $9
    l.d     $f2, -8($10)      ; left
    l.d     $f3, 8($10)       ; right
    subu    $11, $10, $18
    l.d     $f4, 0($11)       ; up
    addu    $11, $10, $18
    l.d     $f5, 0($11)       ; down
    add.d   $f2, $f2, $f3
    add.d   $f4, $f4, $f5
    add.d   $f2, $f2, $f4
    mul.d   $f2, $f2, $f1
    addu    $11, $22, $9
    s.d     $f2, 0($11)
    addiu   $9, $9, 8
    bne     $9, $19, COL
    bne!s   $20, $17, ROW

.task targets=halt create=
TDONE:
    halt
"#,
        xin_block = double_block("xin", &xin),
        arr_bytes = rows * cols * 8,
        rowstride = cols * 8,
        colend = (cols - 1) * 8,
    );

    // The loop bound is the base address of the last interior row:
    // xin + (rows-2)*stride. `la` only takes labels, so compute it.
    let source = source.replace(
        "    la!f    $17, rowend       ; cursor bound: base of last interior row",
        &format!(
            "    la      $17, xin\n    li      $9, {}\n    addu!f  $17, $17, $9 ; bound: base of last interior row",
            (rows - 2) * cols * 8
        ),
    );

    Workload {
        name: "Tomcatv",
        description: "independent FP stencil rows (near-linear speedup, \
                      ~99% prediction); big arrays drive bus contention at \
                      higher issue widths",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;
    use multiscalar::SimConfig;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }

    #[test]
    fn rows_scale_across_units() {
        let w = workload(Scale::Test);
        let s = w.run_scalar(SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(SimConfig::multiscalar(8)).unwrap();
        assert!(s.cycles as f64 / m.cycles as f64 > 1.5);
    }
}
