//! Debug driver: run one workload by name at test scale and print stats.
//!
//! Usage: `wldbg <name> [scalar|ms] [units]`

use ms_workloads::{by_name, Scale};
use multiscalar::SimConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("Example");
    let mode = args.get(2).map(String::as_str).unwrap_or("scalar");
    let units: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let w = by_name(name, Scale::Test).unwrap_or_else(|| panic!("unknown workload {name}"));
    let result = if mode == "scalar" {
        w.run_scalar(SimConfig::scalar().max_cycles(3_000_000))
    } else {
        w.run_multiscalar(SimConfig::multiscalar(units).max_cycles(3_000_000))
    };
    match result {
        Ok(stats) => println!("{name} {mode}: ok\n{stats}"),
        Err(e) => println!("{name} {mode}: ERROR {e}"),
    }
}
