//! Debug driver: run one workload by name at test scale and print stats.
//!
//! Usage: `wldbg <name> [scalar|ms] [units] [--max-cycles N]`
//!
//! The cycle bound defaults to 3,000,000 and can be overridden with
//! `--max-cycles` or the `MS_MAX_CYCLES` environment variable (the flag
//! wins). On a timeout or a stalled run the full diagnostic snapshot is
//! printed.

use ms_workloads::{by_name, Scale, WorkloadError};
use multiscalar::SimConfig;

const DEFAULT_MAX_CYCLES: u64 = 3_000_000;

fn max_cycles_from(args: &[String]) -> u64 {
    if let Some(i) = args.iter().position(|a| a == "--max-cycles") {
        let val = args.get(i + 1).and_then(|s| s.parse().ok());
        return val.unwrap_or_else(|| {
            eprintln!("wldbg: --max-cycles needs a positive integer");
            std::process::exit(2);
        });
    }
    match std::env::var("MS_MAX_CYCLES") {
        Ok(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("wldbg: MS_MAX_CYCLES={s} is not a positive integer");
            std::process::exit(2);
        }),
        Err(_) => DEFAULT_MAX_CYCLES,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("Example");
    let mode = args.get(2).map(String::as_str).unwrap_or("scalar");
    let units: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let max_cycles = max_cycles_from(&args);
    let w = by_name(name, Scale::Test).unwrap_or_else(|| panic!("unknown workload {name}"));
    let result = if mode == "scalar" {
        w.run_scalar(SimConfig::scalar().max_cycles(max_cycles))
    } else {
        w.run_multiscalar(SimConfig::multiscalar(units).max_cycles(max_cycles))
    };
    match result {
        Ok(stats) => println!("{name} {mode}: ok\n{stats}"),
        Err(e) => {
            println!("{name} {mode}: ERROR {e}");
            if let WorkloadError::Sim(sim) = &e {
                if let Some(snap) = sim.snapshot() {
                    println!("{snap}");
                }
            }
            std::process::exit(1);
        }
    }
}
