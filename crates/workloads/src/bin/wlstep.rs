//! Debug driver: step a workload's multiscalar run and dump state.
//!
//! Usage: `wlstep <name> [units] [cycles] [dump_every]`

use ms_asm::AsmMode;
use ms_workloads::{by_name, Scale};
use multiscalar::{Processor, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("Eqntott");
    let units: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cycles: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let every: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(500);
    let w = by_name(name, Scale::Test).unwrap_or_else(|| panic!("unknown workload {name}"));
    let prog = w.assemble(AsmMode::Multiscalar).expect("assemble");
    let mut p = Processor::new(prog, SimConfig::multiscalar(units)).expect("build");
    for c in 0..cycles {
        if let Err(e) = p.step() {
            println!("cycle {c}: ERROR {e}");
            return;
        }
        if c % every == 0 || c + 5 >= cycles {
            println!("cycle {c}: {}", p.debug_state());
        }
    }
}
