//! Quick full-scale sweep: every workload, scalar vs. 8-unit
//! multiscalar, with wall-clock timings — a fast sanity check between
//! full `tables` runs.
//!
//! ```text
//! cargo run --release -p ms-workloads --bin speed
//! ```

use ms_workloads::{suite, Scale};
use multiscalar::SimConfig;
use std::io::Write;
use std::time::Instant;
fn main() {
    for w in suite(Scale::Full) {
        let t = Instant::now();
        let s =
            w.run_scalar(SimConfig::scalar()).unwrap_or_else(|e| panic!("{} scalar: {e}", w.name));
        let ts = t.elapsed();
        let t = Instant::now();
        let m = w
            .run_multiscalar(SimConfig::multiscalar(8))
            .unwrap_or_else(|e| panic!("{} ms: {e}", w.name));
        let tm = t.elapsed();
        println!(
            "{:10} scalar {:>9} cyc IPC {:.2} ({:>7.2?}) | ms8 {:>9} cyc ({:>7.2?}) speedup {:5.2} pred {:5.1}% sq {}c+{}m",
            w.name, s.cycles, s.ipc(), ts, m.cycles, tm,
            s.cycles as f64 / m.cycles as f64,
            100.0 * m.prediction_accuracy(), m.control_squashes, m.memory_squashes
        );
        std::io::stdout().flush().unwrap();
    }
}
