//! # ms-workloads — the evaluation benchmark suite
//!
//! The paper evaluates on SPECint92 (compress, eqntott, espresso, gcc, sc,
//! xlisp), SPECfp92 tomcatv, GNU cmp and wc, and the Figure-3 symbol-search
//! example ("16 tokens, each appearing 450 times"). SPEC92 binaries and
//! inputs are not redistributable and no MIPS toolchain is assumed, so each
//! benchmark here is a synthetic kernel that reproduces the *dominant loop
//! structure the paper describes for that program* (Section 5.3): the same
//! task shape, the same inter-task dependence pattern, and therefore the
//! same qualitative multiscalar behaviour. See `DESIGN.md` §2 for the
//! substitution rationale.
//!
//! Every workload carries:
//! * one annotated assembly source (assembled into both the scalar and the
//!   multiscalar binary, reproducing Table 2's instruction-count deltas),
//! * deterministic generated inputs, and
//! * expected outputs computed by a Rust reference implementation, checked
//!   against simulated memory after every run — the simulators are
//!   *functionally validated* on every benchmark, not just timed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cmp;
mod compress;
mod data;
mod eqntott;
mod espresso;
mod gcc_like;
mod sc_like;
mod symsearch;
mod tomcatv;
mod wc;
mod xlisp_like;

pub use data::Scale;

use ms_asm::{assemble, AsmMode};
use ms_isa::Program;
use multiscalar::{Processor, RunStats, ScalarProcessor, SimConfig, SimError};
use std::fmt;

/// An expected memory value, checked after a run.
#[derive(Clone, Debug)]
pub struct Check {
    /// Data-segment label the expectation is anchored at.
    pub symbol: String,
    /// Byte offset from the label.
    pub offset: u32,
    /// Expected little-endian bytes.
    pub bytes: Vec<u8>,
    /// What this value means (for error messages).
    pub what: String,
}

impl Check {
    /// A `.word` (u32) expectation.
    pub fn word(symbol: &str, offset: u32, value: u32, what: &str) -> Check {
        Check {
            symbol: symbol.into(),
            offset,
            bytes: value.to_le_bytes().to_vec(),
            what: what.into(),
        }
    }

    /// A `.dword` (u64) expectation.
    pub fn dword(symbol: &str, offset: u32, value: u64, what: &str) -> Check {
        Check {
            symbol: symbol.into(),
            offset,
            bytes: value.to_le_bytes().to_vec(),
            what: what.into(),
        }
    }

    /// An `f64` expectation (exact bit pattern).
    pub fn double(symbol: &str, offset: u32, value: f64, what: &str) -> Check {
        Check {
            symbol: symbol.into(),
            offset,
            bytes: value.to_bits().to_le_bytes().to_vec(),
            what: what.into(),
        }
    }
}

/// A benchmark: annotated source, inputs, and reference-computed
/// expectations.
pub struct Workload {
    /// Benchmark name (paper row name).
    pub name: &'static str,
    /// What it models and why (paper Section 5.3 characterization).
    pub description: &'static str,
    /// Dual-mode assembly source.
    pub source: String,
    /// Expected memory state after a correct run.
    pub checks: Vec<Check>,
}

/// A validation failure: the simulation produced wrong values.
#[derive(Debug)]
pub enum WorkloadError {
    /// Assembly of the workload source failed.
    Asm(ms_asm::AsmError),
    /// The simulator reported an error.
    Sim(SimError),
    /// An output value did not match the reference implementation.
    Mismatch {
        /// Benchmark name.
        name: &'static str,
        /// Which expectation failed.
        what: String,
        /// Expected bytes.
        expected: Vec<u8>,
        /// Bytes found in simulated memory.
        found: Vec<u8>,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "assembly failed: {e}"),
            WorkloadError::Sim(e) => write!(f, "simulation failed: {e}"),
            WorkloadError::Mismatch { name, what, expected, found } => {
                write!(f, "{name}: {what}: expected {expected:02x?}, found {found:02x?}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<ms_asm::AsmError> for WorkloadError {
    fn from(e: ms_asm::AsmError) -> Self {
        WorkloadError::Asm(e)
    }
}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> Self {
        WorkloadError::Sim(e)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl Workload {
    /// A stable 64-bit fingerprint of the workload's full content
    /// identity: name, generated source (which bakes in the scale-sized
    /// inputs and the per-workload RNG seeds), and reference-computed
    /// expectations.
    ///
    /// Equal fingerprints mean the same program, inputs, and expected
    /// outputs, so a simulation result for one is valid for the other —
    /// this is what keys the `ms-sweep` on-disk result cache. The hash is
    /// FNV-1a, independent of `std`'s unstable default hasher.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, self.name.as_bytes());
        fnv1a(&mut h, &[0xff]);
        fnv1a(&mut h, self.source.as_bytes());
        for c in &self.checks {
            fnv1a(&mut h, &[0xfe]);
            fnv1a(&mut h, c.symbol.as_bytes());
            fnv1a(&mut h, &c.offset.to_le_bytes());
            fnv1a(&mut h, &c.bytes);
        }
        h
    }
}

impl Workload {
    /// Assembles the workload in the given mode.
    ///
    /// Results are memoized process-wide, keyed by the workload
    /// [`fingerprint`](Workload::fingerprint) and mode: sweeps run the
    /// same program under dozens of machine configurations, and
    /// re-parsing the source for each design point costs more than the
    /// cheap [`Program`] clone a cache hit pays.
    ///
    /// # Errors
    /// Returns the underlying assembler error.
    pub fn assemble(&self, mode: AsmMode) -> Result<Program, WorkloadError> {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<(u64, AsmMode), Program>>> = OnceLock::new();
        let key = (self.fingerprint(), mode);
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(prog) = cache.lock().unwrap().get(&key) {
            return Ok(prog.clone());
        }
        let prog = assemble(&self.source, mode)?;
        cache.lock().unwrap().insert(key, prog.clone());
        Ok(prog)
    }

    /// Validates simulated memory against the reference-computed
    /// expectations — the sequential-semantics oracle shared by every run
    /// path, including the `ms-chaos` campaign.
    ///
    /// # Errors
    /// Returns [`WorkloadError::Mismatch`] for the first wrong value.
    ///
    /// # Panics
    /// Panics if a check references a symbol the program does not define
    /// (a bug in the workload definition, not in the simulation).
    pub fn verify_memory(
        &self,
        mem: &ms_memsys::Memory,
        prog: &Program,
    ) -> Result<(), WorkloadError> {
        for c in &self.checks {
            let base = prog.symbol(&c.symbol).unwrap_or_else(|| {
                panic!("{}: check references unknown symbol {}", self.name, c.symbol)
            });
            let found = mem.read_vec(base + c.offset, c.bytes.len());
            if found != c.bytes {
                return Err(WorkloadError::Mismatch {
                    name: self.name,
                    what: c.what.clone(),
                    expected: c.bytes.clone(),
                    found,
                });
            }
        }
        Ok(())
    }

    /// Runs the scalar binary on the scalar baseline and validates the
    /// result against the reference implementation.
    ///
    /// # Errors
    /// Propagates assembly/simulation errors and validation mismatches.
    pub fn run_scalar(&self, cfg: SimConfig) -> Result<RunStats, WorkloadError> {
        let prog = self.assemble(AsmMode::Scalar)?;
        let mut p = ScalarProcessor::new(prog, cfg)?;
        let stats = p.run()?;
        self.verify_memory(p.memory(), p.program())?;
        Ok(stats)
    }

    /// Runs the multiscalar binary on a multiscalar processor and
    /// validates the result against the reference implementation.
    ///
    /// # Errors
    /// Propagates assembly/simulation errors and validation mismatches.
    pub fn run_multiscalar(&self, cfg: SimConfig) -> Result<RunStats, WorkloadError> {
        let prog = self.assemble(AsmMode::Multiscalar)?;
        let mut p = Processor::new(prog, cfg)?;
        let stats = p.run()?;
        self.verify_memory(p.memory(), p.program())?;
        Ok(stats)
    }

    /// Like [`Workload::run_multiscalar`], but reports every
    /// [`multiscalar::trace::TraceEvent`] to `sink` and returns the
    /// finished sink alongside the stats.
    ///
    /// # Errors
    /// Propagates assembly/simulation errors and validation mismatches.
    pub fn run_multiscalar_with_sink<S: multiscalar::trace::TraceSink>(
        &self,
        cfg: SimConfig,
        sink: S,
    ) -> Result<(RunStats, S), WorkloadError> {
        let prog = self.assemble(AsmMode::Multiscalar)?;
        let mut p = Processor::with_sink(prog, cfg, sink)?;
        let stats = p.run()?;
        self.verify_memory(p.memory(), p.program())?;
        Ok((stats, p.into_sink()))
    }

    /// Like [`Workload::run_multiscalar`], but charges every (unit,
    /// cycle) to `acct` — with [`multiscalar::CpiAccountant`] the
    /// returned stats carry a conservation-checked
    /// [`multiscalar::trace::CpiStack`] in [`RunStats::cpi`]. This is the
    /// run path behind `msprof` and `--cpi` sweeps.
    ///
    /// # Errors
    /// Propagates assembly/simulation errors and validation mismatches.
    pub fn run_multiscalar_with_accountant<A: multiscalar::CycleAccountant>(
        &self,
        cfg: SimConfig,
        acct: A,
    ) -> Result<RunStats, WorkloadError> {
        let prog = self.assemble(AsmMode::Multiscalar)?;
        let mut p = Processor::with_accountant(prog, cfg, acct)?;
        let stats = p.run()?;
        self.verify_memory(p.memory(), p.program())?;
        Ok(stats)
    }

    /// Like [`Workload::run_multiscalar_with_sink`], but additionally
    /// charges cycles to `acct` — for callers that want an event stream
    /// *and* a CPI stack from the same run (e.g. `mstrace`
    /// reconciliation, metrics-plus-`--cpi` sweeps).
    ///
    /// # Errors
    /// Propagates assembly/simulation errors and validation mismatches.
    pub fn run_multiscalar_instrumented<
        S: multiscalar::trace::TraceSink,
        A: multiscalar::CycleAccountant,
    >(
        &self,
        cfg: SimConfig,
        sink: S,
        acct: A,
    ) -> Result<(RunStats, S), WorkloadError> {
        let prog = self.assemble(AsmMode::Multiscalar)?;
        let mut p = Processor::with_parts(prog, cfg, sink, multiscalar::NoFaults, acct)?;
        let stats = p.run()?;
        self.verify_memory(p.memory(), p.program())?;
        Ok((stats, p.into_sink()))
    }

    /// Like [`Workload::run_multiscalar`], but perturbs the
    /// microarchitecture through `injector` (chaos testing) and returns
    /// the finished processor alongside the stats so callers can inspect
    /// the retirement log and final memory. Memory is validated against
    /// the reference before returning — fault injection must never change
    /// architectural results.
    ///
    /// # Errors
    /// Propagates assembly/simulation errors and validation mismatches.
    #[allow(clippy::type_complexity)]
    pub fn run_multiscalar_with_injector<F: multiscalar::FaultInjector>(
        &self,
        cfg: SimConfig,
        injector: F,
    ) -> Result<(RunStats, Processor<multiscalar::trace::NullSink, F>), WorkloadError> {
        let prog = self.assemble(AsmMode::Multiscalar)?;
        let mut p = Processor::with_injector(prog, cfg, injector)?;
        let stats = p.run()?;
        self.verify_memory(p.memory(), p.program())?;
        Ok((stats, p))
    }
}

/// The full benchmark ensemble, in the paper's table order.
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        compress::workload(scale),
        eqntott::workload(scale),
        espresso::workload(scale),
        gcc_like::workload(scale),
        sc_like::workload(scale),
        xlisp_like::workload(scale),
        tomcatv::workload(scale),
        cmp::workload(scale),
        wc::workload(scale),
        symsearch::workload(scale),
    ]
}

/// Looks up one workload by its paper row name (case-insensitive).
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod identity_tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic_and_scale_sensitive() {
        let a = by_name("Wc", Scale::Test).unwrap();
        let b = by_name("Wc", Scale::Test).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same workload, same fingerprint");
        let full = by_name("Wc", Scale::Full).unwrap();
        assert_ne!(a.fingerprint(), full.fingerprint(), "scale changes the fingerprint");
        let other = by_name("Cmp", Scale::Test).unwrap();
        assert_ne!(a.fingerprint(), other.fingerprint(), "different workloads differ");
    }

    #[test]
    fn scale_ids_round_trip() {
        for s in [Scale::Test, Scale::Full] {
            assert_eq!(Scale::parse(s.id()), Some(s));
        }
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Runs a workload at test scale through the scalar baseline and a
    /// 4-unit multiscalar processor, validating both and the basic
    /// instruction-count relation (Table 2: multiscalar >= scalar).
    pub fn check_workload(w: &Workload) {
        let s =
            w.run_scalar(SimConfig::scalar()).unwrap_or_else(|e| panic!("{} scalar: {e}", w.name));
        let m = w
            .run_multiscalar(SimConfig::multiscalar(4))
            .unwrap_or_else(|e| panic!("{} multiscalar: {e}", w.name));
        assert!(
            m.instructions >= s.instructions,
            "{}: multiscalar dynamic count {} < scalar {}",
            w.name,
            m.instructions,
            s.instructions
        );
        assert!(s.cycles > 0 && m.cycles > 0);
    }
}
