//! GNU `cmp` (file compare).
//!
//! Paper Section 5.3: cmp spends "almost all its time in a loop" whose
//! body "contains an inner loop", and achieves the best speedups in the
//! evaluation (6.24x at 8 units) because block comparisons are
//! independent. One task = one 16-byte block comparison; the two input
//! buffers differ near the end, so nearly every task runs the full inner
//! loop in parallel with its neighbours.

use crate::data::{byte_block, random_bytes, Scale};
use crate::{Check, Workload};

const BLOCK: usize = 16;

/// Builds the cmp workload.
pub fn workload(scale: Scale) -> Workload {
    let n = scale.pick(320, 24_000);
    debug_assert_eq!(n % BLOCK, 0);
    let a = random_bytes(0xc3b9, n);
    let mut b = a.clone();
    // One difference ~94% of the way through (like comparing two nearly
    // identical files).
    let diff_at = n * 15 / 16;
    b[diff_at] ^= 0x40;

    let first_diff =
        a.iter().zip(&b).position(|(x, y)| x != y).map(|i| i as u32).unwrap_or(n as u32);

    let source = format!(
        r#"
; cmp: one 16-byte block comparison per task.
.data
{a_block}
aend: .byte 0
{b_block}
.align 2
result: .word {sentinel}     ; first differing index, or N if equal

.text
main:
.task targets=BLK create=$16,$20,$21
INIT:
    la      $20, filea
    la      $21, fileb
    la!f    $16, aend
    release $20, $21
    b!s     BLK

.task targets=BLK,EQDONE,DIFFOUND create=$20,$21
BLK:
    addiu!f $20, $20, {block}
    addiu!f $21, $21, {block}
    li      $9, -{block}
BYTELOOP:
    addu    $10, $20, $9
    lbu     $11, 0($10)
    addu    $12, $21, $9
    lbu     $13, 0($12)
    bne     $11, $13, DIFF
    addiu   $9, $9, 1
    bltz    $9, BYTELOOP
    bne!s   $20, $16, BLK      ; equal block: next block or done

.task targets=halt create=
EQDONE:
    halt                       ; files equal: result keeps the sentinel N

DIFF:
    la      $14, filea
    subu    $15, $20, $14
    addu    $15, $15, $9       ; index of the differing byte
    la      $14, result
    sw      $15, 0($14)
    j!s     DIFFOUND

.task targets=halt create=
DIFFOUND:
    halt
"#,
        a_block = byte_block("filea", &a),
        b_block = byte_block("fileb", &b),
        block = BLOCK,
        sentinel = n,
    );

    Workload {
        name: "Cmp",
        description: "independent block comparisons (best speedup in the \
                      paper); inner byte loop per task",
        source,
        checks: vec![Check::word("result", 0, first_diff, "first differing index")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;
    use multiscalar::SimConfig;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }

    #[test]
    fn block_tasks_scale_well() {
        let w = workload(Scale::Test);
        let s = w.run_scalar(SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(SimConfig::multiscalar(8)).unwrap();
        let speedup = s.cycles as f64 / m.cycles as f64;
        assert!(speedup > 2.0, "cmp speedup only {speedup:.2}");
    }
}
