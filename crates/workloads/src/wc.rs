//! GNU `wc` (word count).
//!
//! Paper Section 5.3: "cmp and wc are straightforward, with each spending
//! almost all its time in a loop … the performance loss may be attributed
//! mainly to cycles lost due to branches and loads inside each task
//! (intra-task dependences)." One task = one input character; the
//! line/word counters and the in-word flag are loop-carried registers
//! produced early in each task and forwarded, so the counter chains
//! pipeline across units.

use crate::data::{byte_block, random_text, Scale};
use crate::{Check, Workload};

/// Builds the wc workload.
pub fn workload(scale: Scale) -> Workload {
    let n = scale.pick(300, 30_000);
    let text = random_text(0xacc0, n);

    // Reference word count.
    let mut lines = 0u32;
    let mut words = 0u32;
    let mut inword = false;
    for &c in &text {
        if c == b'\n' {
            lines += 1;
        }
        let space = c == b' ' || c == b'\n' || c == b'\t';
        if !space && !inword {
            words += 1;
        }
        inword = !space;
    }

    let source = format!(
        r#"
; wc: per-character tasks with forwarded counter chains.
.data
{text_block}
textend: .byte 0
.align 2
results: .word 0, 0, 0      ; lines, words, chars

.text
main:
.task targets=CHLOOP create=$16,$20,$21,$22,$23
INIT:
    la      $20, text        ; cursor
    la!f    $16, textend     ; end
    li!f    $21, 0           ; lines
    li!f    $22, 0           ; words
    li!f    $23, 0           ; in-word flag
    release $20
    b!s     CHLOOP

.task targets=CHLOOP,FINISH create=$20,$21,$22,$23
CHLOOP:
    addiu!f $20, $20, 1      ; induction first, forwarded
    lbu     $8, -1($20)
    ; lines += (c == '\n')
    xori    $9, $8, 10
    sltiu   $9, $9, 1
    addu!f  $21, $21, $9
    ; space = (c==' ') | (c=='\t') | (c=='\n')
    xori    $10, $8, 32
    sltiu   $10, $10, 1
    xori    $11, $8, 9
    sltiu   $11, $11, 1
    or      $10, $10, $11
    or      $10, $10, $9
    ; newinword = !space ; words += newinword & !inword
    sltiu   $11, $10, 1
    xori    $12, $23, 1
    and     $12, $12, $11
    addu!f  $22, $22, $12
    move!f  $23, $11
    bne!s   $20, $16, CHLOOP

.task targets=halt create=
FINISH:
    la      $9, results
    sw      $21, 0($9)
    sw      $22, 4($9)
    la      $10, text
    subu    $11, $20, $10
    sw      $11, 8($9)
    halt
"#,
        text_block = byte_block("text", &text),
    );

    Workload {
        name: "Wc",
        description: "per-character loop with forwarded counter chains \
                      (lines/words/in-word state); losses from intra-task \
                      loads and branches",
        source,
        checks: vec![
            Check::word("results", 0, lines, "line count"),
            Check::word("results", 4, words, "word count"),
            Check::word("results", 8, n as u32, "char count"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;
    use multiscalar::SimConfig;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }

    #[test]
    fn counter_chain_pipelines_across_units() {
        let w = workload(Scale::Test);
        let s = w.run_scalar(SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(SimConfig::multiscalar(8)).unwrap();
        let speedup = s.cycles as f64 / m.cycles as f64;
        assert!(speedup > 1.3, "wc speedup only {speedup:.2}");
    }
}
