//! The paper's Figure-3 example: linked-list symbol search.
//!
//! "Execution repeatedly takes a symbol from a buffer and runs down a
//! linked list checking for a match of the symbol. If a match is found, a
//! function is called to process the symbol. If no match is found, an
//! entry in the list is allocated for the new symbol." The paper's input:
//! "an input file of 16 tokens, each appearing 450 times in the file."
//!
//! One task = one outer-loop iteration (one complete list search),
//! annotated exactly as Figure 4: the induction variable is incremented
//! and forwarded at the top of the task, and after dead-register analysis
//! it is the only register in the create mask ("the only register value
//! that is live outside the task is the induction variable").

use crate::data::{rng, word_block, Scale};
use crate::{Check, Workload};
use rand::seq::SliceRandom;
use std::collections::HashMap;

const NSYMS: usize = 16;

fn generate_buffer(scale: Scale) -> Vec<u32> {
    let reps = scale.pick(8, 450);
    let symbols: Vec<u32> = (0..NSYMS as u32).map(|i| 1000 + i * 7).collect();
    let mut buf: Vec<u32> = symbols.iter().flat_map(|&s| std::iter::repeat_n(s, reps)).collect();
    buf.shuffle(&mut rng(0x5ea2c4));
    buf
}

/// Builds the symbol-search workload.
pub fn workload(scale: Scale) -> Workload {
    let buffer = generate_buffer(scale);

    // Reference: first occurrence allocates a node (count 0); subsequent
    // occurrences increment the node's count. Nodes are allocated in
    // first-appearance order at heap + 16*i.
    let mut order: Vec<u32> = Vec::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &sym in &buffer {
        match counts.get_mut(&sym) {
            Some(c) => *c += 1,
            None => {
                order.push(sym);
                counts.insert(sym, 0);
            }
        }
    }
    let mut checks = Vec::new();
    for (i, &sym) in order.iter().enumerate() {
        let base = 16 * i as u32;
        checks.push(Check::word("heap", base, sym, &format!("node {i} symbol")));
        checks.push(Check::word(
            "heap",
            base + 4,
            counts[&sym],
            &format!("node {i} ({sym}) match count"),
        ));
    }

    let source = format!(
        r#"
; Figure 3 / Figure 4: symbol-table search (the paper's "Example").
.data
{buffer_block}
bufend:  .word 0
listhd:  .word 0
listtl:  .word 0
heapptr: .word heap
heap:    .space {heap_bytes}

.text
main:
; Prologue task: set up the buffer cursor and end pointer.
.task targets=OUTER create=$16,$20
INIT:
    la      $20, buffer        ; pre-increment idiom (Figure 4): the task
    la!f    $16, bufend        ; bumps the cursor first, reads at -4
    release $20
    b!s     OUTER

; One complete list search per task, annotated exactly as Figure 4: the
; create mask is $4,$8,$17,$20,$23; the last updates of $4, $20 and $23
; carry forward bits; $8 and $17 (updated repeatedly in the inner loop)
; are released at the inner-loop exit; $4 is re-released where the
; forwarding write may not have executed (ignored if it did).
.task targets=OUTER,OUTERFALLOUT create=$4,$8,$17,$20,$23
OUTER:
    addiu!f $20, $20, 4        ; forward the induction variable early
    lw!f    $23, -4($20)       ; symbol = SYMVAL(buffer[indx])
    la      $9, listhd
    lw      $17, 0($9)
    beq     $17, $0, INNERFALLOUT
INNER:
    lw      $8, 0($17)         ; LELE(list)
    beq     $8, $23, FOUND
    lw      $17, 8($17)        ; LNEXT(list)
    bne     $17, $0, INNER
    j       INNERFALLOUT
FOUND:
    move!f  $4, $17
    jal     process
INNERFALLOUT:
    release $8, $17            ; Figure 4: release at the inner-loop exit
    bne     $17, $0, SKIPINNER ; found (or still in list): no insertion
    move!f  $4, $23
    jal     addlist
SKIPINNER:
    release $4                 ; ignored if a forwarding write executed
    bne!s   $20, $16, OUTER    ; Stop Always (Figure 4)

.task targets=halt create=
OUTERFALLOUT:
    halt

; process(list): count the match.
process:
    lw      $9, 4($4)
    addiu   $9, $9, 1
    sw      $9, 4($4)
    jr      $31

; addlist(symbol in $23): append a node {{sym, 0, 0}} to the list tail.
addlist:
    la      $9, heapptr
    lw      $10, 0($9)
    sw      $23, 0($10)
    sw      $0, 4($10)
    sw      $0, 8($10)
    addiu   $11, $10, 16
    sw      $11, 0($9)
    la      $9, listtl
    lw      $11, 0($9)
    beq     $11, $0, EMPTYLIST
    sw      $10, 8($11)        ; tail->next = node
    j       SETTL
EMPTYLIST:
    la      $12, listhd
    sw      $10, 0($12)
SETTL:
    sw      $10, 0($9)
    jr      $31
"#,
        buffer_block = word_block("buffer", &buffer),
        heap_bytes = 16 * NSYMS + 16,
    );

    Workload {
        name: "Example",
        description: "Figure-3 linked-list symbol search; 16 tokens x 450 \
                      occurrences; one list search per task; mostly \
                      independent iterations",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;
    use multiscalar::SimConfig;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        let w = workload(Scale::Test);
        check_workload(&w);
    }

    #[test]
    fn eight_units_match_reference_too() {
        let w = workload(Scale::Test);
        w.run_multiscalar(SimConfig::multiscalar(8).issue(2).out_of_order(true))
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn multiscalar_speeds_up_the_search() {
        let w = workload(Scale::Test);
        let s = w.run_scalar(SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(SimConfig::multiscalar(8)).unwrap();
        let speedup = s.cycles as f64 / m.cycles as f64;
        assert!(speedup > 1.5, "Example speedup only {speedup:.2}");
    }
}
