//! SPECint92 `xlisp` kernel.
//!
//! Paper Section 5.3 groups xlisp with gcc: squashes and near-sequential
//! execution of the important tasks, so multiscalar overheads produce
//! slight slowdowns; the paper is "less confident" parallelism exists at
//! all. The defining xlisp behaviour is allocator/GC pointer churn: every
//! task pops cons cells from a global free list and pushes them back —
//! a serial dependence chain through one memory word (`freehd`).

use crate::data::Scale;
use crate::{Check, Workload};
use ms_asm::{assemble, AsmMode};

/// Builds the xlisp-like workload.
pub fn workload(scale: Scale) -> Workload {
    let iters = scale.pick(24, 4000);
    let ncells = 64usize;

    // Free list: cells[i].next = cells[i+1], last = 0. Cell = {next, val}.
    let mut cell_words = Vec::with_capacity(ncells * 2);
    for i in 0..ncells {
        cell_words.push(if i + 1 < ncells {
            format!("cells+{}", (i + 1) * 8)
        } else {
            "0".to_string()
        });
        cell_words.push("0".to_string());
    }
    let mut cells_block = String::from(".align 3\ncells:\n");
    for pair in cell_words.chunks(2) {
        cells_block.push_str(&format!("  .word {}, {}\n", pair[0], pair[1]));
    }

    let source = format!(
        r#"
; xlisp-like allocator churn: every task pops two cells off the global
; free list and pushes them back swapped — a serial chain through memory.
.data
{cells_block}
.align 2
freehd: .word cells
final:  .word 0

.text
main:
.task targets=ALLOC create=$16,$20
INIT:
    li!f    $16, {iters}
    li!f    $20, 0
    b!s     ALLOC

.task targets=ALLOC,XDONE create=$20
ALLOC:
    addiu!f $20, $20, 1
    la      $9, freehd
    lw      $10, 0($9)         ; c1
    lw      $11, 0($10)        ; c2 = c1.next
    lw      $12, 0($11)        ; rest = c2.next
    sw      $12, 0($9)         ; freehd = rest (pop both)
    sw      $20, 4($10)        ; c1.val = i
    sw      $20, 4($11)        ; c2.val = i
    lw      $13, 0($9)         ; head (== rest)
    sw      $13, 0($10)        ; c1.next = head
    sw      $10, 0($11)        ; c2.next = c1
    sw      $11, 0($9)         ; freehd = c2 (push back swapped)
    bne!s   $20, $16, ALLOC

.task targets=halt create=
XDONE:
    la      $9, freehd
    lw      $10, 0($9)
    la      $11, final
    sw      $10, 0($11)
    halt
"#,
    );

    // Reference: replay the free-list mutation with real addresses, which
    // requires the assembled symbol table.
    let prog = assemble(&source, AsmMode::Scalar).expect("xlisp source assembles");
    let cells = prog.symbol("cells").expect("cells symbol");
    let addr = |i: usize| cells + (i * 8) as u32;
    let index = |a: u32| ((a - cells) / 8) as usize;

    let mut next: Vec<u32> =
        (0..ncells).map(|i| if i + 1 < ncells { addr(i + 1) } else { 0 }).collect();
    let mut val: Vec<u32> = vec![0; ncells];
    let mut freehd = addr(0);
    for i in 1..=iters as u32 {
        let c1 = freehd;
        let c2 = next[index(c1)];
        let rest = next[index(c2)];
        val[index(c1)] = i;
        val[index(c2)] = i;
        next[index(c1)] = rest;
        next[index(c2)] = c1;
        freehd = c2;
    }

    let mut checks = vec![
        Check::word("final", 0, freehd, "final free-list head"),
        Check::word("freehd", 0, freehd, "freehd word"),
    ];
    for i in 0..ncells {
        checks.push(Check::word("cells", (i * 8) as u32, next[i], &format!("cell {i} next")));
        checks.push(Check::word("cells", (i * 8 + 4) as u32, val[i], &format!("cell {i} val")));
    }

    Workload {
        name: "Xlisp",
        description: "allocator free-list churn: serial load/store chain \
                      through a global head pointer (near-sequential, \
                      squash-prone — slight slowdowns in the paper)",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }

    #[test]
    fn freelist_chain_serializes_units() {
        let w = workload(Scale::Test);
        let s = w.run_scalar(multiscalar::SimConfig::scalar()).unwrap();
        let m = w.run_multiscalar(multiscalar::SimConfig::multiscalar(8)).unwrap();
        let speedup = s.cycles as f64 / m.cycles as f64;
        assert!(speedup < 2.0, "xlisp-like chain should not scale, got {speedup:.2}");
    }
}
