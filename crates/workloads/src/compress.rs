//! SPECint92 `compress` kernel.
//!
//! Paper Section 5.3: "In compress all time is spent in a single (big)
//! loop, which contains a complex flow of control within. This loop is
//! bound by a recurrence (getting the index into the hash table) that
//! results in a long critical path through the entire program. The
//! problem is further aggravated by the huge size of the hash table,
//! which results in a high rate of cache misses."
//!
//! The kernel is an LZW-style hash-probe loop: the current code `ent` is
//! a loop-carried register recurrence produced *late* in each task (after
//! the table probe), serializing the tasks; the hash table is much larger
//! than the data-cache banks.

use crate::data::{byte_block, rng, Scale};
use crate::{Check, Workload};
use rand::Rng;

const TBL_ENTRIES: u32 = 32768;

/// Reference model of the kernel, byte-for-byte identical to the assembly.
struct Ref {
    tbl: Vec<(u32, u32)>, // (fcode, code)
    ent: u32,
    next_code: u32,
    out: Vec<u32>,
}

impl Ref {
    fn new() -> Ref {
        Ref { tbl: vec![(0, 0); TBL_ENTRIES as usize], ent: 0, next_code: 256, out: Vec::new() }
    }

    fn step(&mut self, c: u8) {
        let c = c as u32;
        let fcode = (self.ent << 9) | c | 0x0100_0000;
        let mut h = ((self.ent << 2) ^ (self.ent >> 7) ^ (c << 6)) & (TBL_ENTRIES - 1);
        loop {
            let (e, code) = self.tbl[h as usize];
            if e == fcode {
                self.ent = code;
                return;
            }
            if e == 0 {
                self.tbl[h as usize] = (fcode, self.next_code);
                self.out.push(self.ent);
                self.next_code += 1;
                self.ent = c;
                return;
            }
            h = (h + 1) & (TBL_ENTRIES - 1);
        }
    }
}

/// Builds the compress workload.
pub fn workload(scale: Scale) -> Workload {
    let n = scale.pick(400, 8_000);
    // Compressible input: phrases drawn from a small dictionary, so the
    // table warms up and most steps hit (like compressing text).
    let mut r = rng(0xc0de);
    let phrases: Vec<Vec<u8>> = (0..8)
        .map(|_| (0..r.gen_range(6..14)).map(|_| b'a' + r.gen_range(0..6u8)).collect())
        .collect();
    let mut input = Vec::with_capacity(n);
    while input.len() < n {
        let ph = &phrases[r.gen_range(0..phrases.len())];
        input.extend_from_slice(ph);
    }
    input.truncate(n);

    let mut m = Ref::new();
    for &c in &input {
        m.step(c);
    }

    let mut checks = vec![
        Check::word("final_state", 0, m.ent, "final ent"),
        Check::word("final_state", 4, m.next_code, "final next_code"),
        Check::word("final_state", 8, m.out.len() as u32, "codes emitted"),
    ];
    // Spot-check the output stream (first/last/middle codes) plus a
    // rolling checksum stored by the program.
    let mut csum = 0u32;
    for &code in &m.out {
        csum = csum.wrapping_mul(31).wrapping_add(code);
    }
    checks.push(Check::word("final_state", 12, csum, "output checksum"));
    if let Some(&first) = m.out.first() {
        checks.push(Check::word("outbuf", 0, first, "first emitted code"));
    }

    let source = format!(
        r#"
; compress: hash-probe loop bound by the `ent` register recurrence.
.data
{input_block}
inend: .byte 0
.align 2
table:  .space {tbl_bytes}   ; 32768 entries x (fcode word, code word)
outbuf: .space {out_bytes}
final_state: .word 0, 0, 0, 0

.text
main:
.task targets=CLOOP create=$15,$16,$20,$21,$22,$23
INIT:
    la      $20, input       ; input cursor
    la!f    $16, inend
    li!f    $21, 0           ; ent
    la!f    $22, outbuf      ; output cursor
    li!f    $23, 256         ; next_code
    li!f    $15, 32767       ; table index mask (pass-through constant)
    release $20
    b!s     CLOOP

; Probe task: fetch the next byte, hash, and walk the table. Its successor
; is data-dependent — HITT on a match, EMPTYT on a free slot — which is
; what makes compress hard to predict (paper: ~87% accuracy).
.task targets=HITT,EMPTYT create=$8,$9,$12,$20
CLOOP:
    addiu!f $20, $20, 1
    lbu!f   $8, -1($20)
    ; fcode = (ent << 9) | c | 0x1000000
    sll     $9, $21, 9
    or      $9, $9, $8
    li      $10, 0x1000000
    or!f    $9, $9, $10
    ; h = ((ent << 2) ^ (ent >> 7) ^ (c << 6)) & mask
    sll     $10, $21, 2
    srl     $11, $21, 7
    xor     $10, $10, $11
    sll     $11, $8, 6
    xor     $10, $10, $11
    and     $10, $10, $15
    la      $11, table
PROBE:
    sll     $12, $10, 3
    addu    $12, $11, $12    ; &table[h]
    lw      $13, 0($12)      ; fcode slot
    beq     $13, $9, TOHIT
    beq     $13, $0, TOEMPTY
    addiu   $10, $10, 1
    and     $10, $10, $15
    j       PROBE
TOHIT:
    release $12              ; last slot address this task computed
    j!s     HITT
TOEMPTY:
    release $12
    j!s     EMPTYT

; Hit: ent = table[h].code (the late-produced recurrence).
.task targets=CLOOP,CDONE create=$21,$22,$23
HITT:
    lw!f    $21, 4($12)
    release $22, $23
    bne!st  $20, $16, CLOOP
    j!s     CDONE

; Miss: insert the pair, emit ent, restart the phrase.
.task targets=CLOOP,CDONE create=$21,$22,$23
EMPTYT:
    sw      $9, 0($12)       ; insert {{fcode, next_code}}
    sw      $23, 4($12)
    sw      $21, 0($22)      ; emit(ent)
    addiu!f $22, $22, 4
    addiu!f $23, $23, 1
    move!f  $21, $8          ; ent = c
    bne!st  $20, $16, CLOOP
    j!s     CDONE

.task targets=halt create=
CDONE:
    ; Fold the output stream into a checksum and store the final state.
    la      $9, final_state
    sw      $21, 0($9)
    sw      $23, 4($9)
    la      $10, outbuf
    subu    $11, $22, $10
    srl     $11, $11, 2
    sw      $11, 8($9)
    li      $12, 0           ; csum
    beq     $11, $0, CSDONE
CSLOOP:
    lw      $13, 0($10)
    li      $14, 31
    mul     $12, $12, $14
    addu    $12, $12, $13
    ; keep 32 bits (the reference wraps at u32)
    sll     $12, $12, 32
    srl     $12, $12, 32
    addiu   $10, $10, 4
    bne     $10, $22, CSLOOP
CSDONE:
    sw      $12, 12($9)
    halt
"#,
        input_block = byte_block("input", &input),
        tbl_bytes = TBL_ENTRIES * 8,
        out_bytes = (n + 8) * 4,
    );

    Workload {
        name: "Compress",
        description: "hash-probe loop bound by a late-produced register \
                      recurrence (ent) with a cache-hostile table \
                      (paper: lowest integer speedups)",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn reference_model_is_sane() {
        let mut m = Ref::new();
        for c in [b'a', b'b', b'a', b'b', b'a'] {
            m.step(c);
        }
        // Every new pair inserts and emits.
        assert!(!m.out.is_empty());
        assert!(m.next_code > 256);
    }

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }
}
