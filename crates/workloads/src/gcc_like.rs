//! SPECint92 `gcc` kernel.
//!
//! Paper Section 5.3: "Both gcc and xlisp distribute execution time
//! uniformly across a great deal of code … for the task partitioning that
//! we use currently, squashes (both prediction and memory order) result
//! in near-sequential execution of the important tasks. Accordingly, the
//! overheads in our multiscalar execution … result in a slow down in some
//! cases."
//!
//! The kernel is an IR-walker: one task per node, with a data-dependent
//! multi-way dispatch whose *task successor* is unpredictable (~25% of
//! nodes exit through a different task), plus serializing updates of
//! global state in memory — the squash-dominated regime the paper
//! describes.

use crate::data::{random_words, word_block, Scale};
use crate::{Check, Workload};

/// Builds the gcc-like workload.
pub fn workload(scale: Scale) -> Workload {
    let n = scale.pick(64, 6000);
    let ops = random_words(0x6cc, n, 1 << 16);

    // Reference.
    let mut g1 = 0u32;
    let mut g2 = 0u32;
    let mut g3 = 0u32;
    let mut acc = 0u32;
    for &op in &ops {
        match op & 3 {
            0 => acc = acc.wrapping_add(op >> 2),
            1 => g1 = g1.wrapping_add(op ^ g1),
            2 => {
                let mut s = g2;
                for k in 0..8u32 {
                    s = s.wrapping_add(op.rotate_right(k));
                }
                g2 = s;
            }
            _ => g3 = g3.wrapping_add(1),
        }
    }

    let checks = vec![
        Check::word("globals", 0, g1, "g1"),
        Check::word("globals", 4, g2, "g2"),
        Check::word("globals", 8, g3, "g3"),
        Check::word("globals", 12, acc, "acc"),
    ];

    let source = format!(
        r#"
; gcc-like IR walk: unpredictable task successors + global-state updates.
.data
{ops_block}
opsend: .word 0
.align 2
globals: .word 0, 0, 0, 0    ; g1, g2, g3, acc

.text
main:
.task targets=NODE create=$16,$20,$21
INIT:
    la      $20, ops
    la!f    $16, opsend
    li!f    $21, 0            ; acc (register recurrence)
    release $20
    b!s     NODE

.task targets=NODE,SPECIAL,STOREOUT create=$20,$21
NODE:
    addiu!f $20, $20, 4
    lw      $8, -4($20)
    andi    $9, $8, 3
    beq     $9, $0, CASE0
    xori    $10, $9, 1
    beq     $10, $0, CASE1
    xori    $10, $9, 2
    beq     $10, $0, CASE2
    ; case 3: exits to the SPECIAL task (data-dependent successor)
    release $21
    j!s     SPECIAL
CASE0:
    srl     $10, $8, 2
    addu    $21, $21, $10
    sll     $21, $21, 32     ; keep u32 semantics
    srl!f   $21, $21, 32
    j       NNEXT
CASE1:
    release $21
    la      $11, globals
    lw      $12, 0($11)
    xor     $13, $8, $12
    addu    $12, $12, $13
    sll     $12, $12, 32
    srl     $12, $12, 32
    sw      $12, 0($11)
    j       NNEXT
CASE2:
    release $21
    la      $11, globals
    lw      $12, 4($11)      ; s = g2
    li      $9, 0
ROTLOOP:
    ; op.rotate_right(k) on 32 bits
    srlv    $13, $8, $9
    li      $14, 32
    subu    $14, $14, $9
    sllv    $15, $8, $14
    or      $13, $13, $15
    sll     $13, $13, 32
    srl     $13, $13, 32
    addu    $12, $12, $13
    addiu   $9, $9, 1
    slti    $14, $9, 8
    bne     $14, $0, ROTLOOP
    sll     $12, $12, 32
    srl     $12, $12, 32
    sw      $12, 4($11)
NNEXT:
    bne!st  $20, $16, NODE     ; continue the walk (stop if taken)
    j!s     STOREOUT           ; ops exhausted

; The special handler task: bumps g3, then rejoins the walk. It creates
; nothing — $20/$21 pass through from the predecessor's forwarded view.
.task targets=NODE,STOREOUT create=
SPECIAL:
    la      $11, globals
    lw      $12, 8($11)
    addiu   $12, $12, 1
    sw      $12, 8($11)
    bne!st  $20, $16, NODE
    j!s     STOREOUT

.task targets=halt create=
STOREOUT:
    la      $11, globals
    sw      $21, 12($11)
    halt
"#,
        ops_block = word_block("ops", &ops),
    );

    Workload {
        name: "Gcc",
        description: "IR walk with data-dependent task successors (~25% \
                      mispredicted) and serializing global updates — the \
                      squash-dominated near-slowdown regime",
        source,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_workload;

    #[test]
    fn validates_on_scalar_and_multiscalar() {
        check_workload(&workload(Scale::Test));
    }

    #[test]
    fn control_squashes_dominate() {
        let w = workload(Scale::Test);
        let m = w.run_multiscalar(multiscalar::SimConfig::multiscalar(4)).unwrap();
        assert!(m.control_squashes > 0, "expected task mispredictions");
    }
}
