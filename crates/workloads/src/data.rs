//! Input generation helpers shared by the workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Input sizing: `Test` keeps unit tests fast; `Full` approximates the
/// paper's smallest benchmark sizes (hundreds of thousands of dynamic
/// instructions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small inputs for unit/integration tests.
    Test,
    /// Benchmark-harness inputs.
    Full,
}

impl Scale {
    /// Picks the test or full value.
    pub fn pick(self, test: usize, full: usize) -> usize {
        match self {
            Scale::Test => test,
            Scale::Full => full,
        }
    }

    /// Stable identifier, safe for on-disk cache keys and CLI round-trips.
    pub fn id(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Full => "full",
        }
    }

    /// Parses the identifier produced by [`Scale::id`] (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "test" => Some(Scale::Test),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// A deterministic RNG seeded per workload.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Renders a `.word` data block (chunked lines) for `label`.
pub fn word_block(label: &str, words: &[u32]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, ".align 3");
    let _ = writeln!(s, "{label}:");
    for chunk in words.chunks(12) {
        let items: Vec<String> = chunk.iter().map(|w| w.to_string()).collect();
        let _ = writeln!(s, "  .word {}", items.join(", "));
    }
    if words.is_empty() {
        let _ = writeln!(s, "  .word 0");
    }
    s
}

/// Renders a `.byte` data block (chunked lines) for `label`.
pub fn byte_block(label: &str, bytes: &[u8]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, ".align 3");
    let _ = writeln!(s, "{label}:");
    for chunk in bytes.chunks(24) {
        let items: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(s, "  .byte {}", items.join(", "));
    }
    if bytes.is_empty() {
        let _ = writeln!(s, "  .byte 0");
    }
    s
}

/// Renders a `.double` data block for `label`.
pub fn double_block(label: &str, values: &[f64]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, ".align 3");
    let _ = writeln!(s, "{label}:");
    for chunk in values.chunks(8) {
        let items: Vec<String> = chunk.iter().map(|v| format!("{v:?}")).collect();
        let _ = writeln!(s, "  .double {}", items.join(", "));
    }
    s
}

/// `n` random u32 words below `bound`.
pub fn random_words(seed: u64, n: usize, bound: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bound)).collect()
}

/// `n` random bytes.
pub fn random_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

/// Text-like bytes: words of lowercase letters separated by spaces and
/// newlines (for the wc benchmark).
pub fn random_text(seed: u64, n: usize) -> Vec<u8> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let word_len = r.gen_range(1..9);
        for _ in 0..word_len {
            if out.len() >= n {
                break;
            }
            out.push(b'a' + r.gen_range(0..26u8));
        }
        if out.len() < n {
            out.push(if r.gen_ratio(1, 8) { b'\n' } else { b' ' });
        }
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Test.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_words(7, 16, 100), random_words(7, 16, 100));
        assert_eq!(random_bytes(7, 16), random_bytes(7, 16));
        assert_eq!(random_text(7, 64), random_text(7, 64));
    }

    #[test]
    fn blocks_render_and_assemble() {
        let src = format!(
            "\n.data\n{}{}{}\n.text\nmain: halt\n",
            word_block("w", &[1, 2, 3]),
            byte_block("b", &[4, 5]),
            double_block("d", &[1.5]),
        );
        let p = ms_asm::assemble(&src, ms_asm::AsmMode::Scalar).expect("assemble");
        assert!(p.symbol("w").is_some());
        assert!(p.symbol("b").is_some());
        assert!(p.symbol("d").is_some());
    }

    #[test]
    fn text_is_textish() {
        let t = random_text(3, 1000);
        assert!(t.iter().all(|&c| c.is_ascii_lowercase() || c == b' ' || c == b'\n'));
        assert!(t.contains(&b' '));
    }
}
