//! The static annotation checker must accept every workload's multiscalar
//! binary: no exit missing from a descriptor, no unmarked task-boundary
//! crossing, no forward/release outside a create mask.

use ms_asm::AsmMode;
use ms_cfg::{check_program, Severity};
use ms_workloads::{suite, Scale};

#[test]
fn all_workload_annotations_pass_the_static_checker() {
    for w in suite(Scale::Test) {
        let prog = w.assemble(AsmMode::Multiscalar).expect("assembles");
        let report = check_program(&prog);
        let errors: Vec<String> =
            report.of_severity(Severity::Error).map(|d| d.to_string()).collect();
        assert!(errors.is_empty(), "{}: static annotation errors:\n{}", w.name, errors.join("\n"));
    }
}

#[test]
fn checker_discovers_every_task() {
    for w in suite(Scale::Test) {
        let prog = w.assemble(AsmMode::Multiscalar).expect("assembles");
        let report = check_program(&prog);
        assert_eq!(report.tasks.len(), prog.tasks.len(), "{}: not all tasks analysed", w.name);
        for t in &report.tasks {
            assert!(t.reachable > 0, "{}: empty task {:#x}", w.name, t.entry);
            assert!(!t.exits.is_empty(), "{}: no exits for task {:#x}", w.name, t.entry);
        }
    }
}
