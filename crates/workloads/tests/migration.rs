//! The binary-migration round-trip (paper Section 2.2) must hold for
//! every workload: disassembling the multiscalar binary to source and
//! reassembling yields a bit-identical program, and the migrated binary
//! still produces validated results.

use ms_asm::{assemble, program_to_source, AsmMode};
use ms_workloads::{suite, Scale};
use multiscalar::{Processor, SimConfig};

#[test]
fn every_workload_binary_migrates_losslessly() {
    for w in suite(Scale::Test) {
        let original = w.assemble(AsmMode::Multiscalar).expect("assembles");
        let source = program_to_source(&original);
        let migrated = assemble(&source, AsmMode::Multiscalar)
            .unwrap_or_else(|e| panic!("{}: regenerated source fails: {e}", w.name));
        assert_eq!(original.text, migrated.text, "{}: text differs", w.name);
        assert_eq!(original.tasks, migrated.tasks, "{}: descriptors differ", w.name);
        assert_eq!(original.data, migrated.data, "{}: data differs", w.name);
        assert_eq!(original.entry, migrated.entry, "{}: entry differs", w.name);
    }
}

#[test]
fn migrated_binaries_run_identically() {
    for name in ["Example", "Wc", "Gcc"] {
        let w = ms_workloads::by_name(name, Scale::Test).unwrap();
        let original = w.assemble(AsmMode::Multiscalar).unwrap();
        let migrated = assemble(&program_to_source(&original), AsmMode::Multiscalar).unwrap();
        let mut p1 = Processor::new(original, SimConfig::multiscalar(4)).unwrap();
        let s1 = p1.run().unwrap();
        let mut p2 = Processor::new(migrated, SimConfig::multiscalar(4)).unwrap();
        let s2 = p2.run().unwrap();
        assert_eq!(s1.cycles, s2.cycles, "{name}");
        assert_eq!(s1.instructions, s2.instructions, "{name}");
    }
}
