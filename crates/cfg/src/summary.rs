//! Function summaries for suppressed calls.
//!
//! "A task should be free to contain function calls" (paper Section
//! 3.2.3), and a function executed entirely inside a task is the paper's
//! *suppressed* function. To check a task's annotations we need each
//! callee's effects: the registers it may write, forward and release, and
//! whether it can return. Summaries are computed to a fixpoint, so mutual
//! recursion converges.

use ms_isa::{Op, Program, Reg, RegMask, StopCond};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The may-effects of one function (a `jal` target).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Entry address.
    pub entry: u32,
    /// Registers any instruction in the function (or its callees) may
    /// write.
    pub writes: RegMask,
    /// Registers carrying forward bits anywhere inside.
    pub forwards: RegMask,
    /// Registers named by `release` anywhere inside.
    pub releases: RegMask,
    /// Whether a path reaches `jr $31` at the function's own call depth.
    pub returns: bool,
    /// Functions this one calls directly.
    pub calls: BTreeSet<u32>,
    /// PCs of stop-tagged instructions inside the function (a task ending
    /// inside a suppressed call — legal but worth surfacing).
    pub internal_stops: Vec<u32>,
    /// PCs of register-indirect jumps through a register other than `$31`
    /// (statically unverifiable control).
    pub indirect_jumps: Vec<u32>,
}

/// Walks one function body (without descending into callees) and records
/// its local effects plus direct call targets.
fn walk_function(prog: &Program, entry: u32) -> FnSummary {
    let mut s = FnSummary { entry, ..FnSummary::default() };
    let mut seen = BTreeSet::new();
    let mut work = VecDeque::from([entry]);
    while let Some(pc) = work.pop_front() {
        if !seen.insert(pc) {
            continue;
        }
        let Some(instr) = prog.instr_at(pc) else {
            continue; // running off text is reported by the task checker
        };
        if let Some(d) = instr.op.def() {
            s.writes.insert(d);
            if instr.tags.forward {
                s.forwards.insert(d);
            }
        }
        if let Op::Release { regs } = instr.op {
            s.releases = s.releases.union(regs.to_mask());
        }
        if instr.tags.stop != StopCond::None {
            s.internal_stops.push(pc);
            // A stop ends the task; conservatively do not follow further
            // on the stopping path, but conditional stops continue.
        }
        match instr.op {
            Op::J { target } => work.push_back(target),
            Op::Jal { target } => {
                s.calls.insert(target);
                work.push_back(pc + 4); // assume the callee returns
            }
            Op::Jr { rs } => {
                if rs == Reg::RA {
                    s.returns = true;
                } else {
                    s.indirect_jumps.push(pc);
                }
            }
            Op::Jalr { .. } => s.indirect_jumps.push(pc),
            Op::Halt => {}
            ref op if op.is_branch() => {
                work.push_back(pc + 4);
                if let Some(c) = branch_target(op, pc) {
                    work.push_back(c);
                }
            }
            _ => work.push_back(pc + 4),
        }
    }
    s
}

pub(crate) fn branch_target(op: &Op, pc: u32) -> Option<u32> {
    let off = match *op {
        Op::Beq { off, .. }
        | Op::Bne { off, .. }
        | Op::Blez { off, .. }
        | Op::Bgtz { off, .. }
        | Op::Bltz { off, .. }
        | Op::Bgez { off, .. } => off,
        _ => return None,
    };
    Some((pc as i64 + 4 + (off as i64) * 4) as u32)
}

/// Computes summaries for every `jal` target in the program, propagating
/// callee effects to callers until a fixpoint.
pub fn summarize_functions(prog: &Program) -> BTreeMap<u32, FnSummary> {
    // Discover function entries: all jal targets.
    let mut entries = BTreeSet::new();
    for (i, instr) in prog.text.iter().enumerate() {
        let _pc = prog.text_base + 4 * i as u32;
        if let Op::Jal { target } = instr.op {
            entries.insert(target);
        }
    }
    let mut summaries: BTreeMap<u32, FnSummary> =
        entries.iter().map(|&e| (e, walk_function(prog, e))).collect();

    // Fixpoint: fold callee effects into callers.
    loop {
        let mut changed = false;
        let snapshot = summaries.clone();
        for s in summaries.values_mut() {
            for callee in s.calls.clone() {
                if let Some(c) = snapshot.get(&callee) {
                    let w = s.writes.union(c.writes);
                    let f = s.forwards.union(c.forwards);
                    let r = s.releases.union(c.releases);
                    if w != s.writes || f != s.forwards || r != s.releases {
                        s.writes = w;
                        s.forwards = f;
                        s.releases = r;
                        changed = true;
                    }
                    for &stop in &c.internal_stops {
                        if !s.internal_stops.contains(&stop) {
                            s.internal_stops.push(stop);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_asm::{assemble, AsmMode};

    #[test]
    fn leaf_function_summary() {
        let prog = assemble(
            "main:\n jal f\n halt\nf:\n addiu!f $5, $5, 1\n release $6\n jr $31\n",
            AsmMode::Multiscalar,
        )
        .unwrap();
        let sums = summarize_functions(&prog);
        let f = sums.get(&prog.symbol("f").unwrap()).unwrap();
        assert!(f.returns);
        assert!(f.writes.contains(ms_isa::Reg::int(5)));
        assert!(f.forwards.contains(ms_isa::Reg::int(5)));
        assert!(f.releases.contains(ms_isa::Reg::int(6)));
        assert!(f.calls.is_empty());
    }

    #[test]
    fn nested_calls_fold_effects() {
        let prog = assemble(
            "main:\n jal outer\n halt\nouter:\n jal inner\n jr $31\ninner:\n li!f $7, 1\n jr $31\n",
            AsmMode::Multiscalar,
        )
        .unwrap();
        let sums = summarize_functions(&prog);
        let outer = sums.get(&prog.symbol("outer").unwrap()).unwrap();
        assert!(outer.forwards.contains(ms_isa::Reg::int(7)));
        assert!(outer.returns);
    }

    #[test]
    fn recursion_converges() {
        let prog = assemble(
            "main:\n jal f\n halt\nf:\n blez $4, OUT\n addiu $4, $4, -1\n jal f\nOUT:\n jr $31\n",
            AsmMode::Multiscalar,
        )
        .unwrap();
        let sums = summarize_functions(&prog);
        let f = sums.get(&prog.symbol("f").unwrap()).unwrap();
        assert!(f.returns);
        assert!(f.writes.contains(ms_isa::Reg::int(4)));
    }

    #[test]
    fn indirect_jumps_are_flagged() {
        let prog = assemble("main:\n jal f\n halt\nf:\n jr $9\n", AsmMode::Multiscalar).unwrap();
        let sums = summarize_functions(&prog);
        let f = sums.get(&prog.symbol("f").unwrap()).unwrap();
        assert_eq!(f.indirect_jumps.len(), 1);
        assert!(!f.returns);
    }
}
