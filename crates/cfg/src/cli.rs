//! Minimal shared argument parsing for the `ms-cfg` binaries.
//!
//! `mscheck` historically ignored unknown `--` flags, so a typo like
//! `--lsit` ran a plain check and exited 0 — silently *not* doing what
//! the user asked. This module gives `mscheck` and `mspart` one strict
//! parser: every `--name` argument must be a declared flag (no value) or
//! option (takes a value, `--name value` or `--name=value`, repeatable);
//! anything else is an error the binary reports with its usage text and
//! exit status 2.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The argument vocabulary of one binary.
#[derive(Clone, Copy, Debug)]
pub struct CliSpec {
    /// Boolean flags, spelled with their leading dashes (e.g. `--list`).
    pub flags: &'static [&'static str],
    /// Value-taking options, spelled with their leading dashes. Options
    /// may repeat; values accumulate in order.
    pub options: &'static [&'static str],
}

/// Parsed arguments: which flags were present, option values in order of
/// appearance, and positional arguments in order.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    /// Flags seen on the command line.
    pub flags: BTreeSet<String>,
    /// Option values, keyed by option name, in appearance order.
    pub options: BTreeMap<String, Vec<String>>,
    /// Positional arguments in order.
    pub positional: Vec<String>,
}

impl CliArgs {
    /// Whether `flag` (with dashes) was present.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains(flag)
    }

    /// All values given for `option` (with dashes), in order.
    pub fn values(&self, option: &str) -> &[String] {
        self.options.get(option).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The last value given for `option`, if any.
    pub fn value(&self, option: &str) -> Option<&str> {
        self.values(option).last().map(String::as_str)
    }
}

/// A command-line the spec rejects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses `args` (without the program name) against `spec`.
///
/// A literal `--` ends option parsing; everything after it is
/// positional. Any other argument starting with `-` that is not a
/// declared flag or option is rejected.
///
/// # Errors
/// Returns a [`CliError`] naming the offending argument for unknown
/// flags, a missing option value, or a value supplied to a plain flag.
pub fn parse_cli(
    spec: &CliSpec,
    args: impl IntoIterator<Item = String>,
) -> Result<CliArgs, CliError> {
    let mut parsed = CliArgs::default();
    let mut it = args.into_iter();
    let mut options_done = false;
    while let Some(arg) = it.next() {
        if options_done || arg == "-" || !arg.starts_with('-') {
            parsed.positional.push(arg);
            continue;
        }
        if arg == "--" {
            options_done = true;
            continue;
        }
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) => (n.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        if spec.flags.contains(&name.as_str()) {
            if inline.is_some() {
                return Err(CliError(format!("flag `{name}` does not take a value")));
            }
            parsed.flags.insert(name);
        } else if spec.options.contains(&name.as_str()) {
            let value = match inline {
                Some(v) => v,
                None => {
                    it.next().ok_or_else(|| CliError(format!("option `{name}` needs a value")))?
                }
            };
            parsed.options.entry(name).or_default().push(value);
        } else {
            return Err(CliError(format!("unknown option `{arg}`")));
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CliSpec = CliSpec { flags: &["--list"], options: &["--policy", "--workload"] };

    fn parse(args: &[&str]) -> Result<CliArgs, CliError> {
        parse_cli(&SPEC, args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_options_and_positionals_separate() {
        let a = parse(&["--list", "--policy", "size=8", "--policy=size=16", "prog.s"]).unwrap();
        assert!(a.has("--list"));
        assert_eq!(a.values("--policy"), ["size=8", "size=16"]);
        assert_eq!(a.value("--policy"), Some("size=16"));
        assert_eq!(a.positional, ["prog.s"]);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let e = parse(&["--lsit", "prog.s"]).unwrap_err();
        assert!(e.to_string().contains("--lsit"), "{e}");
    }

    #[test]
    fn missing_option_value_is_rejected() {
        let e = parse(&["--policy"]).unwrap_err();
        assert!(e.to_string().contains("needs a value"), "{e}");
    }

    #[test]
    fn flag_with_value_is_rejected() {
        let e = parse(&["--list=yes"]).unwrap_err();
        assert!(e.to_string().contains("does not take a value"), "{e}");
    }

    #[test]
    fn double_dash_ends_option_parsing() {
        let a = parse(&["--", "--lsit"]).unwrap();
        assert_eq!(a.positional, ["--lsit"]);
    }
}
