//! Automatic task partitioning of plain scalar programs.
//!
//! The paper's multiscalar compiler "walks through the CFG and demarcates
//! tasks" (Section 2.2) and then records, per task, the create mask, the
//! control edges leaving the task (targets), forward bits and release
//! instructions. The hand-annotated workloads in this repository play the
//! role of that compiler's *output*; this module supplies the missing
//! *front half*: given an un-annotated scalar binary, it partitions the
//! task-level code into tasks under a [`PartitionPolicy`] and derives a
//! complete, checker-clean annotation overlay.
//!
//! The partitioner is deliberately conservative. Its proof obligations
//! (DESIGN.md Section 15) are:
//!
//! 1. every emitted program passes [`crate::check_program`] with zero
//!    errors,
//! 2. the multiscalar execution computes the same architectural result as
//!    the scalar input (same data memory, same registers except `$31`,
//!    which legitimately differs when inserted instructions shift code
//!    addresses),
//! 3. the emitted source is deterministic: same input and policy, same
//!    bytes.
//!
//! Functions (`jal` targets and everything reachable from them) are left
//! un-partitioned: they execute as the paper's *suppressed* calls inside
//! whichever task invokes them, and their effects are folded into create
//! masks via [`crate::summarize_functions`].

use crate::summary::{branch_target, summarize_functions, FnSummary};
use ms_asm::{annotate_source, assemble, Annotations, AsmMode, InsertOp, TaskAnn};
use ms_isa::{Op, Program, Reg, RegMask, StopCond, TargetKind, MAX_TARGETS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Knobs of the task partitioner. Each field is a policy axis with a
/// stable textual form, so sweeps can treat the partitioner like any
/// other [`SimConfig`](https://docs.rs) knob: the key identifies the
/// policy point in job ids, cache keys and reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPolicy {
    /// Greedy upper bound on task size: once a task has accumulated this
    /// many instructions, the next instruction starts a new task.
    pub max_task_instrs: u32,
    /// Start a new task at every loop head (back-edge target), so one
    /// loop iteration becomes one task — the paper's Figure 4 shape.
    pub loop_heads: bool,
    /// Start a new task after every call site, bounding how much of a
    /// caller rides in the same task as a suppressed call.
    pub call_split: bool,
    /// Derive `!f` forward bits for registers whose final value is
    /// produced early; without them successors wait for end-of-task
    /// auto-release.
    pub forward: bool,
    /// Insert explicit `release` instructions before a task's closing
    /// stop for create-mask registers the task never redefines.
    pub releases: bool,
}

impl Default for PartitionPolicy {
    fn default() -> Self {
        PartitionPolicy {
            max_task_instrs: 32,
            loop_heads: true,
            call_split: false,
            forward: true,
            releases: true,
        }
    }
}

impl PartitionPolicy {
    /// Stable identity of this policy point, safe for cache keys and
    /// reports. Versioned like `SimConfig::stable_key`: any change to
    /// partitioning semantics must bump `part v1`.
    pub fn stable_key(&self) -> String {
        format!(
            "part v1;size={};loops={};calls={};fwd={};rel={}",
            self.max_task_instrs,
            u8::from(self.loop_heads),
            u8::from(self.call_split),
            u8::from(self.forward),
            u8::from(self.releases),
        )
    }

    /// Parses a key produced by [`PartitionPolicy::stable_key`].
    ///
    /// # Errors
    /// Returns a message naming the malformed field, unknown version or
    /// missing field.
    pub fn from_stable_key(key: &str) -> Result<PartitionPolicy, String> {
        let mut parts = key.split(';');
        let version = parts.next().unwrap_or_default();
        if version != "part v1" {
            return Err(format!("unknown partition policy version `{version}`"));
        }
        let mut policy = PartitionPolicy::default();
        let mut seen = BTreeSet::new();
        for field in parts {
            let (k, v) =
                field.split_once('=').ok_or_else(|| format!("malformed policy field `{field}`"))?;
            policy.apply(k, v)?;
            seen.insert(k.to_string());
        }
        for required in ["size", "loops", "calls", "fwd", "rel"] {
            if !seen.contains(required) {
                return Err(format!("policy key is missing field `{required}`"));
            }
        }
        Ok(policy)
    }

    /// Parses a comma-separated CLI override list (e.g. `size=8,loops=0`)
    /// on top of the default policy. An empty string is the default.
    ///
    /// # Errors
    /// Returns a message naming the unknown or malformed override.
    pub fn parse(overrides: &str) -> Result<PartitionPolicy, String> {
        let mut policy = PartitionPolicy::default();
        for field in overrides.split(',').filter(|f| !f.trim().is_empty()) {
            let (k, v) = field
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("malformed policy override `{field}`"))?;
            policy.apply(k, v)?;
        }
        Ok(policy)
    }

    fn apply(&mut self, k: &str, v: &str) -> Result<(), String> {
        fn flag(k: &str, v: &str) -> Result<bool, String> {
            match v {
                "0" => Ok(false),
                "1" => Ok(true),
                _ => Err(format!("policy field `{k}` wants 0 or 1, got `{v}`")),
            }
        }
        match k {
            "size" => {
                self.max_task_instrs =
                    v.parse::<u32>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("policy field `size` wants a positive integer, got `{v}`")
                    })?;
            }
            "loops" => self.loop_heads = flag(k, v)?,
            "calls" => self.call_split = flag(k, v)?,
            "fwd" => self.forward = flag(k, v)?,
            "rel" => self.releases = flag(k, v)?,
            _ => return Err(format!("unknown policy field `{k}`")),
        }
        Ok(())
    }
}

/// Why a program cannot be partitioned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// The input already carries task descriptors or tag bits; the
    /// partitioner only accepts plain scalar programs.
    AlreadyAnnotated,
    /// The program has no text to partition.
    EmptyText,
    /// Scalar assembly of the input source failed.
    Assemble(String),
    /// A register-indirect jump at task level: its successors cannot be
    /// enumerated statically, so no descriptor targets can be derived.
    IndirectControl {
        /// Address of the `jr`/`jalr`.
        pc: u32,
    },
    /// Task-level control reaches an address past the text segment.
    RunsOffText {
        /// Address of the instruction whose successor is out of text.
        pc: u32,
    },
    /// An address is reachable both at task level and inside a called
    /// function; tasks and suppressed-call bodies must not overlap.
    SharedCode {
        /// The doubly-reachable address.
        pc: u32,
    },
    /// A control shape the partitioner declines (e.g. an always-taken
    /// branch as the final text instruction, whose checker-mandated
    /// fall-through target would dangle past the text segment).
    Unsupported {
        /// Address of the offending instruction.
        pc: u32,
        /// What about it is unsupported.
        what: &'static str,
    },
    /// A task could not be split below [`MAX_TARGETS`] descriptor
    /// targets (defensive: the splitter peels blocks until every task
    /// fits, so this indicates an internal invariant violation).
    TooManyTargets {
        /// Entry of the over-full task.
        entry: u32,
    },
    /// The emitted annotated source failed to re-assemble — an internal
    /// emitter bug surfaced as an error instead of a panic.
    Emit(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::AlreadyAnnotated => {
                write!(f, "input already carries multiscalar annotations")
            }
            PartitionError::EmptyText => write!(f, "program has no text segment"),
            PartitionError::Assemble(e) => write!(f, "scalar assembly failed: {e}"),
            PartitionError::IndirectControl { pc } => {
                write!(f, "register-indirect jump at task level at {pc:#x}")
            }
            PartitionError::RunsOffText { pc } => {
                write!(f, "control at {pc:#x} runs off the end of the text segment")
            }
            PartitionError::SharedCode { pc } => {
                write!(f, "address {pc:#x} is reachable both at task level and inside a function")
            }
            PartitionError::Unsupported { pc, what } => write!(f, "{what} at {pc:#x}"),
            PartitionError::TooManyTargets { entry } => {
                write!(f, "task at {entry:#x} cannot be split below {MAX_TARGETS} targets")
            }
            PartitionError::Emit(e) => write!(f, "emitted source failed to assemble: {e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// The result of a successful partition.
#[derive(Debug)]
pub struct Partitioned {
    /// The annotated assembly source (dual-mode: assembles as both the
    /// multiscalar and the scalar program).
    pub source: String,
    /// The assembled multiscalar binary of [`Partitioned::source`].
    pub program: Program,
    /// The policy that produced this partition.
    pub policy: PartitionPolicy,
    /// Task entry addresses in the *input* (scalar) address space.
    pub entries: Vec<u32>,
    /// Number of tasks (equals `entries.len()`).
    pub task_count: usize,
    /// Number of instructions inserted (releases and boundary jumps).
    pub inserted: usize,
    /// Number of forward bits placed.
    pub forwards: usize,
    /// Number of registers named by inserted releases.
    pub releases: usize,
    /// Size of the largest task, in input instructions.
    pub max_task_instrs: usize,
}

/// Static facts about the task-level code of the input program.
struct Analysis<'a> {
    prog: &'a Program,
    summaries: BTreeMap<u32, FnSummary>,
    /// Every address reachable at task level (functions excluded).
    task_pcs: BTreeSet<u32>,
    /// Maximal runs of consecutive task-level addresses, half-open.
    ranges: Vec<(u32, u32)>,
    /// Task-level control edges, with always-taken branches resolved.
    edges: Vec<(u32, u32)>,
}

/// `b target` assembles to `beq $0, $0` (or any `beq` with `rs == rt`):
/// the checker resolves exactly this shape statically, so the partitioner
/// must agree with it instruction for instruction.
fn always_taken(op: &Op) -> bool {
    matches!(*op, Op::Beq { rs, rt, .. } if rs == rt)
}

/// Task-level successors of `pc` in the scalar program, with always-taken
/// branches resolved to their target. `jal` continues past the call only
/// when the callee can return; the callee body itself is not a successor
/// (it is a suppressed call).
fn scalar_successors(
    prog: &Program,
    summaries: &BTreeMap<u32, FnSummary>,
    pc: u32,
) -> Result<Vec<u32>, PartitionError> {
    let instr = prog.instr_at(pc).expect("caller ensured pc is in text");
    let succ = match instr.op {
        Op::Halt => Vec::new(),
        Op::J { target } => vec![target],
        Op::Jal { target } => {
            if summaries.get(&target).is_none_or(|s| s.returns) {
                vec![pc + 4]
            } else {
                Vec::new()
            }
        }
        Op::Jr { .. } | Op::Jalr { .. } => return Err(PartitionError::IndirectControl { pc }),
        ref op if op.is_branch() => {
            let t = branch_target(op, pc).expect("is_branch implies a target");
            if always_taken(op) {
                vec![t]
            } else {
                vec![pc + 4, t]
            }
        }
        _ => vec![pc + 4],
    };
    for &s in &succ {
        if prog.instr_at(s).is_none() {
            return Err(PartitionError::RunsOffText { pc });
        }
    }
    Ok(succ)
}

/// Collects every address inside the function at `entry` (following the
/// same walk as the summarizer: `jal` assumed to return, callees not
/// entered).
fn function_pcs(prog: &Program, entry: u32) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    let mut work = VecDeque::from([entry]);
    while let Some(pc) = work.pop_front() {
        if !seen.insert(pc) {
            continue;
        }
        let Some(instr) = prog.instr_at(pc) else {
            continue;
        };
        match instr.op {
            Op::J { target } => work.push_back(target),
            Op::Jal { .. } => work.push_back(pc + 4),
            Op::Jr { .. } | Op::Jalr { .. } | Op::Halt => {}
            ref op if op.is_branch() => {
                work.push_back(pc + 4);
                if let Some(t) = branch_target(op, pc) {
                    work.push_back(t);
                }
            }
            _ => work.push_back(pc + 4),
        }
    }
    seen
}

fn analyze(prog: &Program) -> Result<Analysis<'_>, PartitionError> {
    let summaries = summarize_functions(prog);

    // Task-level reachability from the program entry.
    let mut task_pcs = BTreeSet::new();
    let mut work = VecDeque::from([prog.entry]);
    if prog.instr_at(prog.entry).is_none() {
        return Err(PartitionError::EmptyText);
    }
    let mut edges = Vec::new();
    while let Some(pc) = work.pop_front() {
        if !task_pcs.insert(pc) {
            continue;
        }
        for s in scalar_successors(prog, &summaries, pc)? {
            edges.push((pc, s));
            work.push_back(s);
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Suppressed-call bodies must be disjoint from task-level code.
    for &entry in summaries.keys() {
        for pc in function_pcs(prog, entry) {
            if task_pcs.contains(&pc) {
                return Err(PartitionError::SharedCode { pc });
            }
        }
    }

    // Maximal contiguous runs of task-level addresses.
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    for &pc in &task_pcs {
        match ranges.last_mut() {
            Some((_, end)) if *end == pc => *end = pc + 4,
            _ => ranges.push((pc, pc + 4)),
        }
    }

    Ok(Analysis { prog, summaries, task_pcs, ranges, edges })
}

impl Analysis<'_> {
    fn range_of(&self, pc: u32) -> (u32, u32) {
        *self
            .ranges
            .iter()
            .find(|&&(s, e)| pc >= s && pc < e)
            .expect("pc is task-level, so it lies in a range")
    }

    /// The entry of the task that owns `pc`: tasks tile each range, so
    /// this is the greatest entry at or below `pc` within its range.
    fn task_of(&self, entries: &BTreeSet<u32>, pc: u32) -> u32 {
        let (start, _) = self.range_of(pc);
        *entries.range(start..=pc).next_back().expect("every range start is an entry")
    }

    /// The half-open address span of the task entered at `entry`.
    fn span_of(&self, entries: &BTreeSet<u32>, entry: u32) -> (u32, u32) {
        let (_, range_end) = self.range_of(entry);
        let end = entries.range(entry + 4..range_end).next().copied().unwrap_or(range_end);
        (entry, end)
    }
}

/// How one instruction participates in its task's boundary: the stop
/// condition it must carry, the static exits it contributes, and whether
/// a boundary jump must be inserted after it (the `jal` case: a stop bit
/// on the call itself would make the checker treat the *callee* as the
/// exit, so the stop rides on an inserted `j`).
#[derive(Clone, Debug, Default)]
struct Boundary {
    stop: StopCond,
    exits: Vec<TargetKind>,
    insert_jump: Option<u32>,
}

/// Decides the boundary role of `pc` inside its task `span` given the
/// current entry set. Mirrors the checker's task walk exactly:
///
/// * a stop-always on a *branch* records both the branch target and the
///   fall-through as exits, so an always-taken `b!s` must list both;
/// * a conditional stop keeps the task walking on the non-stopping side,
///   so `!st`/`!sn` are only used when that side stays inside the task;
/// * `jal` is never stop-tagged (see [`Boundary::insert_jump`]);
/// * an untagged always-taken branch still has its fall-through walked by
///   the checker, so when the fall-through is a task entry the branch
///   carries `!sn` — a stop that provably never fires but marks the edge.
fn classify(
    a: &Analysis<'_>,
    entries: &BTreeSet<u32>,
    span: (u32, u32),
    pc: u32,
) -> Result<Boundary, PartitionError> {
    let instr = a.prog.instr_at(pc).expect("span addresses are in text");
    let is_entry = |v: u32| entries.contains(&v);
    let b = |stop, exits, insert_jump| Boundary { stop, exits, insert_jump };
    let none = Boundary::default();
    Ok(match instr.op {
        Op::Halt => b(StopCond::None, vec![TargetKind::Halt], None),
        Op::J { target } => {
            if is_entry(target) {
                b(StopCond::Always, vec![TargetKind::Addr(target)], None)
            } else {
                none
            }
        }
        Op::Jal { target } => {
            let returns = a.summaries.get(&target).is_none_or(|s| s.returns);
            if returns && is_entry(pc + 4) {
                b(StopCond::None, vec![TargetKind::Addr(pc + 4)], Some(pc + 4))
            } else {
                none
            }
        }
        Op::Jr { .. } | Op::Jalr { .. } => {
            return Err(PartitionError::IndirectControl { pc });
        }
        ref op if op.is_branch() => {
            let t = branch_target(op, pc).expect("is_branch implies a target");
            if always_taken(op) {
                if is_entry(t) {
                    if pc + 4 < span.1 {
                        // Fall-through stays inside the task: the stop
                        // fires only when taken (i.e. always).
                        b(StopCond::IfTaken, vec![TargetKind::Addr(t)], None)
                    } else {
                        // Stop-always on a branch: the checker demands
                        // the (dead) fall-through among the targets too.
                        if a.prog.instr_at(pc + 4).is_none() {
                            return Err(PartitionError::Unsupported {
                                pc,
                                what: "always-taken branch at the end of the text segment",
                            });
                        }
                        b(
                            StopCond::Always,
                            vec![TargetKind::Addr(t), TargetKind::Addr(pc + 4)],
                            None,
                        )
                    }
                } else if pc + 4 >= span.1 {
                    // Target stays in the task but the checker still
                    // walks the dead fall-through, which would escape the
                    // span; `!sn` marks it as a (never-taken) exit.
                    if a.prog.instr_at(pc + 4).is_none() {
                        return Err(PartitionError::Unsupported {
                            pc,
                            what: "always-taken branch at the end of the text segment",
                        });
                    }
                    b(StopCond::IfNotTaken, vec![TargetKind::Addr(pc + 4)], None)
                } else {
                    none
                }
            } else {
                match (is_entry(t), is_entry(pc + 4)) {
                    (true, true) => b(
                        StopCond::Always,
                        vec![TargetKind::Addr(t), TargetKind::Addr(pc + 4)],
                        None,
                    ),
                    (true, false) => b(StopCond::IfTaken, vec![TargetKind::Addr(t)], None),
                    (false, true) => b(StopCond::IfNotTaken, vec![TargetKind::Addr(pc + 4)], None),
                    (false, false) => none,
                }
            }
        }
        _ => {
            if is_entry(pc + 4) {
                b(StopCond::Always, vec![TargetKind::Addr(pc + 4)], None)
            } else {
                none
            }
        }
    })
}

/// The deduplicated descriptor targets of the task at `entry`, in first
/// contribution order.
fn targets_of(
    a: &Analysis<'_>,
    entries: &BTreeSet<u32>,
    entry: u32,
) -> Result<Vec<TargetKind>, PartitionError> {
    let span = a.span_of(entries, entry);
    let mut targets = Vec::new();
    let mut pc = span.0;
    while pc < span.1 {
        for exit in classify(a, entries, span, pc)?.exits {
            if !targets.contains(&exit) {
                targets.push(exit);
            }
        }
        pc += 4;
    }
    Ok(targets)
}

/// Builds the final entry set: range starts, policy-selected boundaries,
/// then a fixpoint making every cross-task edge land on an entry and
/// splitting any task with more than [`MAX_TARGETS`] targets.
fn place_entries(
    a: &Analysis<'_>,
    policy: &PartitionPolicy,
) -> Result<BTreeSet<u32>, PartitionError> {
    let mut entries: BTreeSet<u32> = a.ranges.iter().map(|&(s, _)| s).collect();

    if policy.loop_heads {
        for &(u, v) in &a.edges {
            if v <= u {
                entries.insert(v);
            }
        }
    }
    if policy.call_split {
        for &pc in &a.task_pcs {
            if matches!(a.prog.instr_at(pc).map(|i| i.op), Some(Op::Jal { .. }))
                && a.task_pcs.contains(&(pc + 4))
            {
                entries.insert(pc + 4);
            }
        }
    }
    // Greedy size cap. A fall-through boundary is legal at any address
    // (the preceding instruction takes a plain `!s`), so no leader set
    // is needed.
    for &(start, end) in &a.ranges {
        let mut count = 0u32;
        let mut pc = start;
        while pc < end {
            if entries.contains(&pc) {
                count = 0;
            } else if count >= policy.max_task_instrs {
                entries.insert(pc);
                count = 0;
            }
            count += 1;
            pc += 4;
        }
    }

    loop {
        // Every cross-task edge must enter at the target task's entry:
        // the checker reports fall-through or branches into a task's
        // middle, and the sequencer could not describe such an edge.
        let mut changed = false;
        for &(u, v) in &a.edges {
            if a.task_of(&entries, u) != a.task_of(&entries, v) && !entries.contains(&v) {
                entries.insert(v);
                changed = true;
            }
        }
        if changed {
            continue;
        }
        // Descriptors hold at most MAX_TARGETS targets; halve any task
        // that exceeds it. A single instruction contributes at most two
        // targets, so halving terminates.
        for &entry in entries.clone().iter() {
            if targets_of(a, &entries, entry)?.len() > MAX_TARGETS {
                let span = a.span_of(&entries, entry);
                let instrs = (span.1 - span.0) / 4;
                let mid = span.0 + 4 * (instrs / 2);
                if mid == span.0 || !entries.insert(mid) {
                    return Err(PartitionError::TooManyTargets { entry });
                }
                changed = true;
                break;
            }
        }
        if !changed {
            return Ok(entries);
        }
    }
}

/// Successors of `pc` as the *checker's stale-communication walk* will
/// see them in the emitted program, expressed in input addresses: stop
/// bits end the path, conditional stops keep the non-stopping side, an
/// inserted boundary jump ends the path after a `jal`.
fn stale_successors(a: &Analysis<'_>, boundaries: &BTreeMap<u32, Boundary>, pc: u32) -> Vec<u32> {
    let Some(instr) = a.prog.instr_at(pc) else {
        return Vec::new();
    };
    let always = always_taken(&instr.op);
    let is_real_branch = instr.op.is_branch() && !always;
    let boundary = boundaries.get(&pc);
    match boundary.map_or(StopCond::None, |b| b.stop) {
        StopCond::Always => return Vec::new(),
        StopCond::IfTaken if is_real_branch => return vec![pc + 4],
        StopCond::IfNotTaken if is_real_branch => {
            return branch_target(&instr.op, pc).into_iter().collect();
        }
        StopCond::IfTaken if always => return Vec::new(),
        StopCond::IfNotTaken if always => {
            return branch_target(&instr.op, pc).into_iter().collect();
        }
        _ => {}
    }
    match instr.op {
        Op::J { target } => vec![target],
        Op::Jal { .. } => {
            if boundary.is_some_and(|b| b.insert_jump.is_some()) {
                Vec::new() // the inserted `j!s` ends the walk
            } else {
                vec![pc + 4] // the checker walks past every other call
            }
        }
        Op::Jr { .. } | Op::Jalr { .. } | Op::Halt => Vec::new(),
        ref op if always => branch_target(op, pc).into_iter().collect(),
        ref op if op.is_branch() => {
            let mut v = vec![pc + 4];
            v.extend(branch_target(op, pc));
            v
        }
        _ => vec![pc + 4],
    }
}

/// Whether any write of `reg` (a task-level def or a callee write) is
/// reachable from `pc` on the checker's stale walk. Walking through the
/// task's own entry models loop-carried staleness; other entries end the
/// walk just as the checker's does.
fn write_reachable(
    a: &Analysis<'_>,
    entries: &BTreeSet<u32>,
    boundaries: &BTreeMap<u32, Boundary>,
    own_entry: u32,
    from: u32,
    reg: Reg,
) -> bool {
    let mut seen = BTreeSet::new();
    let mut work: VecDeque<u32> = stale_successors(a, boundaries, from).into();
    while let Some(pc) = work.pop_front() {
        if !seen.insert(pc) {
            continue;
        }
        if pc != own_entry && entries.contains(&pc) {
            continue;
        }
        let Some(instr) = a.prog.instr_at(pc) else {
            continue;
        };
        let mut written = RegMask::EMPTY;
        if let Some(d) = instr.op.def() {
            written.insert(d);
        }
        if let Op::Jal { target } = instr.op {
            if let Some(sum) = a.summaries.get(&target) {
                written = written.union(sum.writes);
            }
        }
        if written.contains(reg) {
            return true;
        }
        work.extend(stale_successors(a, boundaries, pc));
    }
    false
}

/// Partitions a plain scalar `prog` into tasks under `policy` and derives
/// a complete annotation overlay: task descriptors (entry, create mask,
/// targets), stop bits, forward bits and optional explicit releases.
///
/// # Errors
/// Returns a [`PartitionError`] when the input is already annotated, has
/// task-level indirect control, overlaps task and function code, or hits
/// a declined control shape.
pub fn partition_program(
    prog: &Program,
    policy: &PartitionPolicy,
) -> Result<Partitioned, PartitionError> {
    if prog.text.is_empty() {
        return Err(PartitionError::EmptyText);
    }
    if !prog.tasks.is_empty()
        || prog.text.iter().any(|i| i.tags.forward || i.tags.stop != StopCond::None)
        || prog.text.iter().any(|i| matches!(i.op, Op::Release { .. }))
    {
        return Err(PartitionError::AlreadyAnnotated);
    }

    let a = analyze(prog)?;
    let entries = place_entries(&a, policy)?;

    // Boundary classification for every task-level instruction.
    let mut boundaries: BTreeMap<u32, Boundary> = BTreeMap::new();
    let mut max_task_instrs = 0usize;
    for &entry in &entries {
        let span = a.span_of(&entries, entry);
        max_task_instrs = max_task_instrs.max(((span.1 - span.0) / 4) as usize);
        let mut pc = span.0;
        while pc < span.1 {
            let b = classify(&a, &entries, span, pc)?;
            if b.stop != StopCond::None || !b.exits.is_empty() || b.insert_jump.is_some() {
                boundaries.insert(pc, b);
            }
            pc += 4;
        }
    }

    // Create masks: every task-level def in the span plus each callee's
    // write set. Over-approximating with span-dead code is harmless (the
    // checker only requires communicated registers to be covered).
    let mut creates: BTreeMap<u32, RegMask> = BTreeMap::new();
    for &entry in &entries {
        let span = a.span_of(&entries, entry);
        let mut create = RegMask::EMPTY;
        let mut pc = span.0;
        while pc < span.1 {
            let instr = a.prog.instr_at(pc).expect("span addresses are in text");
            if let Some(d) = instr.op.def() {
                create.insert(d);
            }
            if let Op::Jal { target } = instr.op {
                if let Some(sum) = a.summaries.get(&target) {
                    create = create.union(sum.writes);
                }
            }
            pc += 4;
        }
        create.remove(Reg::ZERO);
        creates.insert(entry, create);
    }

    // Forward bits: a task-level write whose register is never written
    // again on any checker-visible path gets `!f` — the value is final,
    // successors need not wait for end-of-task auto-release. Multiple
    // mutually exclusive final writes may each carry the bit (Figure 4).
    let mut forward_pcs: BTreeSet<u32> = BTreeSet::new();
    if policy.forward {
        for &entry in &entries {
            let span = a.span_of(&entries, entry);
            let mut pc = span.0;
            while pc < span.1 {
                let instr = a.prog.instr_at(pc).expect("span addresses are in text");
                let candidate = match instr.op {
                    Op::Jal { .. } => None, // $31 shifts with inserted code
                    ref op => op.def().filter(|d| *d != Reg::ZERO),
                };
                if let Some(d) = candidate {
                    if !write_reachable(&a, &entries, &boundaries, entry, pc, d) {
                        forward_pcs.insert(pc);
                    }
                }
                pc += 4;
            }
        }
    }

    // Explicit releases: when a task closes on a stop-always boundary,
    // create-mask registers that were neither forwarded nor defined at
    // the closing instruction are released just before it, sparing
    // successors the end-of-task auto-release wait.
    let mut inserts: BTreeMap<u32, Vec<InsertOp>> = BTreeMap::new();
    let mut released = 0usize;
    for &entry in &entries {
        let span = a.span_of(&entries, entry);
        if let Some(b) = boundaries.get(&(span.1 - 4)) {
            if let Some(target) = b.insert_jump {
                inserts.entry(target).or_default().push(InsertOp::Jump { target, stop: true });
            }
        }
        if !policy.releases {
            continue;
        }
        let last_pc = span.1 - 4;
        let Some(b) = boundaries.get(&last_pc) else {
            continue;
        };
        let last = a.prog.instr_at(last_pc).expect("span addresses are in text");
        let mut rel = creates[&entry];
        let mut pc = span.0;
        while pc < span.1 {
            if forward_pcs.contains(&pc) {
                if let Some(d) = a.prog.instr_at(pc).and_then(|i| i.op.def()) {
                    rel.remove(d);
                }
            }
            pc += 4;
        }
        let (key, front) = if b.insert_jump.is_some() {
            // Release between the call and the inserted boundary jump.
            (span.1, true)
        } else if b.stop == StopCond::Always {
            if let Some(d) = last.op.def() {
                rel.remove(d); // the closing instruction writes after us
            }
            (last_pc, false)
        } else {
            continue; // conditional exits keep executing: no safe point
        };
        rel.remove(Reg::ZERO);
        if rel.is_empty() {
            continue;
        }
        released += rel.iter().count();
        let op = InsertOp::Release(rel.iter().collect());
        let slot = inserts.entry(key).or_default();
        if front {
            slot.insert(0, op);
        } else {
            slot.push(op);
        }
    }

    // Assemble the overlay and emit.
    let mut ann = Annotations::default();
    for (&pc, b) in &boundaries {
        if b.stop != StopCond::None || forward_pcs.contains(&pc) {
            let base = a.prog.instr_at(pc).expect("boundary pcs are in text").tags;
            ann.tags.insert(
                pc,
                ms_isa::TagBits {
                    forward: base.forward || forward_pcs.contains(&pc),
                    stop: b.stop,
                },
            );
        }
    }
    for &pc in &forward_pcs {
        ann.tags
            .entry(pc)
            .or_insert(ms_isa::TagBits { forward: true, stop: StopCond::None })
            .forward = true;
    }
    for &entry in &entries {
        let mut targets = targets_of(&a, &entries, entry)?;
        if targets.is_empty() {
            // A task that can never exit (an intra-task infinite loop)
            // still needs a descriptor target; point it at itself.
            targets.push(TargetKind::Addr(entry));
        }
        ann.tasks.insert(entry, TaskAnn { create: creates[&entry], targets });
    }
    ann.insert_before = inserts;

    let source = annotate_source(prog, &ann);
    let program =
        assemble(&source, AsmMode::Multiscalar).map_err(|e| PartitionError::Emit(e.to_string()))?;
    let inserted = program.text.len() - prog.text.len();

    Ok(Partitioned {
        source,
        program,
        policy: policy.clone(),
        entries: entries.iter().copied().collect(),
        task_count: ann.tasks.len(),
        inserted,
        forwards: forward_pcs.len(),
        releases: released,
        max_task_instrs,
    })
}

/// Assembles `src` in scalar mode (dropping any multiscalar annotations
/// it may carry) and partitions the result under `policy`.
///
/// # Errors
/// Returns [`PartitionError::Assemble`] when the source does not
/// assemble, otherwise whatever [`partition_program`] reports.
pub fn partition_source(
    src: &str,
    policy: &PartitionPolicy,
) -> Result<Partitioned, PartitionError> {
    let scalar =
        assemble(src, AsmMode::Scalar).map_err(|e| PartitionError::Assemble(e.to_string()))?;
    partition_program(&scalar, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_program;

    const LOOPY: &str = "
.data
arr: .word 1, 2, 3, 4
out: .space 32

.text
main:
    li $16, 4
    li $2, 0
    la $8, arr
LOOP:
    lw $9, 0($8)
    addu $2, $2, $9
    addiu $8, $8, 4
    addiu $16, $16, -1
    bne $16, $0, LOOP
    la $10, out
    sw $2, 0($10)
    halt
";

    const CALLS: &str = "
main:
    li $4, 3
    jal double
    jal double
    halt
double:
    addu $4, $4, $4
    jr $31
";

    fn checked(src: &str, policy: &PartitionPolicy) -> Partitioned {
        let part = partition_source(src, policy).expect("partitions");
        let report = check_program(&part.program);
        assert!(
            !report.has_errors(),
            "checker rejects emitted program:\n{report}\n{}",
            part.source
        );
        part
    }

    #[test]
    fn loop_program_partitions_cleanly() {
        let part = checked(LOOPY, &PartitionPolicy::default());
        // Loop-head splitting puts the loop body in its own task.
        assert!(part.task_count >= 2, "{}", part.source);
        assert!(part.forwards > 0, "{}", part.source);
    }

    #[test]
    fn size_cap_produces_more_tasks() {
        let coarse = checked(LOOPY, &PartitionPolicy { max_task_instrs: 64, ..Default::default() });
        let fine = checked(LOOPY, &PartitionPolicy { max_task_instrs: 2, ..Default::default() });
        assert!(
            fine.task_count > coarse.task_count,
            "{} vs {}",
            fine.task_count,
            coarse.task_count
        );
        assert!(fine.max_task_instrs <= 2 + 1, "{}", fine.max_task_instrs);
    }

    #[test]
    fn call_split_starts_a_task_after_each_call() {
        let merged = checked(CALLS, &PartitionPolicy { call_split: false, ..Default::default() });
        let split = checked(CALLS, &PartitionPolicy { call_split: true, ..Default::default() });
        assert!(split.task_count > merged.task_count, "{}", split.source);
        // The boundary after a call is an inserted `j!s`, never a stop
        // bit on the `jal` itself.
        assert!(split.source.contains("j!s"), "{}", split.source);
        assert!(!split.source.contains("jal!"), "{}", split.source);
    }

    #[test]
    fn releases_ride_before_the_closing_stop() {
        let part = checked(LOOPY, &PartitionPolicy { forward: false, ..Default::default() });
        assert!(part.releases > 0, "{}", part.source);
        assert!(part.source.contains("release"), "{}", part.source);
    }

    #[test]
    fn annotated_input_is_rejected() {
        let src = "main:\n.task targets=halt create=$2\nA:\n li!f $2, 1\n halt\n";
        let prog = assemble(src, AsmMode::Multiscalar).unwrap();
        match partition_program(&prog, &PartitionPolicy::default()) {
            Err(PartitionError::AlreadyAnnotated) => {}
            other => panic!("expected AlreadyAnnotated, got {:?}", other.map(|p| p.source)),
        }
        // Scalar-stripping the same source makes it partitionable.
        partition_source(src, &PartitionPolicy::default()).expect("stripped input partitions");
    }

    #[test]
    fn task_level_indirect_jump_is_rejected() {
        let src = "main:\n la $8, main\n jr $8\n";
        match partition_source(src, &PartitionPolicy::default()) {
            Err(PartitionError::IndirectControl { .. }) => {}
            other => panic!("expected IndirectControl, got {other:?}"),
        }
    }

    #[test]
    fn stable_key_round_trips() {
        for policy in [
            PartitionPolicy::default(),
            PartitionPolicy {
                max_task_instrs: 7,
                loop_heads: false,
                call_split: true,
                forward: false,
                releases: false,
            },
        ] {
            let key = policy.stable_key();
            assert_eq!(PartitionPolicy::from_stable_key(&key), Ok(policy.clone()), "{key}");
        }
        assert!(PartitionPolicy::from_stable_key("part v0;size=1").is_err());
        assert!(PartitionPolicy::from_stable_key("part v1;size=8").is_err(), "missing fields");
    }

    #[test]
    fn cli_overrides_parse() {
        let p = PartitionPolicy::parse("size=8,loops=0,rel=0").unwrap();
        assert_eq!(p.max_task_instrs, 8);
        assert!(!p.loop_heads);
        assert!(!p.releases);
        assert_eq!(PartitionPolicy::parse("").unwrap(), PartitionPolicy::default());
        assert!(PartitionPolicy::parse("bogus=1").is_err());
        assert!(PartitionPolicy::parse("size=0").is_err());
    }

    #[test]
    fn emitted_source_is_deterministic() {
        let a = checked(LOOPY, &PartitionPolicy::default());
        let b = checked(LOOPY, &PartitionPolicy::default());
        assert_eq!(a.source, b.source);
    }
}
