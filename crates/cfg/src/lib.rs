//! # ms-cfg — static analysis of multiscalar task annotations
//!
//! The paper's compiler performs "a static analysis of the CFG … to supply
//! the create mask" and records "the boundaries of a task and the control
//! edges leaving the task" in descriptors (Section 2.2). Annotation
//! mistakes surface at run time as sequencer errors or wrong values; this
//! crate performs the corresponding *static* checks, so a multiscalar
//! binary can be verified before it ever runs:
//!
//! * every statically reachable task exit appears among its descriptor's
//!   targets,
//! * control never falls through into another task's entry without a stop
//!   bit,
//! * every forwarded (`!f`) or released register — including inside
//!   functions called by the task (the paper's *suppressed* calls) — is
//!   covered by the task's create mask,
//! * create-mask registers never forwarded or released anywhere in the
//!   task are reported (they rely on end-of-task auto-release, which is
//!   correct but slow — exactly the paper's motivation for explicit
//!   releases).
//!
//! Functions reached by `jal` are summarized once (writes, forwards,
//! releases, whether they return) and the summaries are folded into each
//! calling task, so recursion and shared helpers are handled.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cli;
pub mod partition;
mod summary;
mod taskcheck;

pub use cli::{parse_cli, CliArgs, CliError, CliSpec};
pub use partition::{
    partition_program, partition_source, PartitionError, PartitionPolicy, Partitioned,
};
pub use summary::{summarize_functions, FnSummary};
pub use taskcheck::{check_program, Diagnostic, Report, Severity, TaskAnalysis};

#[cfg(test)]
mod tests {
    use super::*;
    use ms_asm::{assemble, AsmMode};

    fn check(src: &str) -> Report {
        let prog = assemble(src, AsmMode::Multiscalar).expect("assembles");
        check_program(&prog)
    }

    #[test]
    fn clean_program_has_no_errors() {
        let r = check(
            "
main:
.task targets=LOOP create=$2,$16
INIT:
    li!f $16, 4
    li!f $2, 0
    b!s  LOOP
.task targets=LOOP,DONE create=$2
LOOP:
    addiu!f $2, $2, 1
    bne!s $2, $16, LOOP
.task targets=halt create=
DONE:
    halt
",
        );
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.tasks.len(), 3);
    }

    #[test]
    fn missing_target_is_an_error() {
        let r = check(
            "
main:
.task targets=DONE create=$2
A:
    addiu!f $2, $2, 1
    bne!s $2, $16, A      ; back edge not in targets!
.task targets=halt create=
DONE:
    halt
",
        );
        assert!(r.has_errors(), "{r}");
        let msg = r.to_string();
        assert!(msg.contains("not among its descriptor targets"), "{msg}");
    }

    #[test]
    fn fallthrough_into_next_task_is_an_error() {
        let r = check(
            "
main:
.task targets=B create=$2
A:
    addiu!f $2, $2, 1     ; no stop bit: control falls into B
.task targets=halt create=
B:
    halt
",
        );
        assert!(r.has_errors(), "{r}");
        assert!(r.to_string().contains("falls through"), "{r}");
    }

    #[test]
    fn forward_outside_create_mask_is_an_error() {
        let r = check(
            "
main:
.task targets=halt create=$2
A:
    addiu!f $3, $3, 1     ; forwards $3 but creates only $2
    halt
",
        );
        assert!(r.has_errors(), "{r}");
        assert!(r.to_string().contains("$3"), "{r}");
    }

    #[test]
    fn release_outside_create_mask_is_an_error() {
        let r = check(
            "
main:
.task targets=halt create=$2
A:
    release $4
    li!f $2, 1
    halt
",
        );
        assert!(r.has_errors(), "{r}");
    }

    #[test]
    fn auto_release_reliance_is_reported_as_info() {
        let r = check(
            "
main:
.task targets=halt create=$2,$3
A:
    li!f $2, 1            ; $3 never forwarded or released
    halt
",
        );
        assert!(!r.has_errors(), "{r}");
        assert!(r.diagnostics.iter().any(|d| d.severity == Severity::Info), "{r}");
    }

    #[test]
    fn stale_forward_bit_is_an_error() {
        // The forward bit sends $2 once; the later write is invisible to
        // successors, which silently compute on the stale value.
        let r = check(
            "
main:
.task targets=B create=$2
A:
    li!f $2, 1
    addiu $2, $2, 1
    b!s B
.task targets=halt create=
B:
    halt
",
        );
        assert!(r.has_errors(), "{r}");
        assert!(r.to_string().contains("stale"), "{r}");
    }

    #[test]
    fn stale_release_is_an_error() {
        let r = check(
            "
main:
.task targets=B create=$2
A:
    release $2
    li $2, 7
    b!s B
.task targets=halt create=
B:
    halt
",
        );
        assert!(r.has_errors(), "{r}");
        assert!(r.to_string().contains("stale"), "{r}");
    }

    #[test]
    fn stale_forward_through_a_callee_write_is_an_error() {
        // The task forwards $5 and then calls a helper that rewrites it.
        let r = check(
            "
main:
.task targets=halt create=$5
A:
    li!f $5, 1
    jal helper
    halt
helper:
    addiu $5, $5, 1
    jr $31
",
        );
        assert!(r.has_errors(), "{r}");
        assert!(r.to_string().contains("stale"), "{r}");
    }

    #[test]
    fn exclusive_path_reforward_is_a_warning_not_an_error() {
        // Figure 4 forwards $4 on two dynamically exclusive paths; a
        // path-insensitive checker cannot prove exclusivity, so this is
        // flagged as a warning but must not be an error.
        let r = check(
            "
main:
.task targets=halt create=$2
A:
    bne $3, $0, OTHER
    li!f $2, 1
    halt
OTHER:
    li!f $2, 2
    halt
",
        );
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn reforward_on_one_path_is_a_warning() {
        let r = check(
            "
main:
.task targets=halt create=$2
A:
    li!f $2, 1
    beq $3, $0, SKIP
    li $2, 2
SKIP:
    halt
",
        );
        assert!(!r.has_errors(), "{r}");
        assert!(r.diagnostics.iter().any(|d| d.severity == Severity::Warning), "{r}");
    }

    #[test]
    fn suppressed_calls_fold_function_effects_into_the_task() {
        // The helper forwards $5; the task's create mask must cover it.
        let bad = check(
            "
main:
.task targets=halt create=$2
A:
    jal helper
    li!f $2, 1
    halt
helper:
    addiu!f $5, $5, 1
    jr $31
",
        );
        assert!(bad.has_errors(), "{bad}");

        let good = check(
            "
main:
.task targets=halt create=$2,$5
A:
    jal helper
    li!f $2, 1
    halt
helper:
    addiu!f $5, $5, 1
    jr $31
",
        );
        assert!(!good.has_errors(), "{good}");
    }

    #[test]
    fn recursive_functions_are_summarized() {
        let r = check(
            "
main:
.task targets=halt create=$2
A:
    jal fib
    move!f $2, $2
    halt
fib:
    addiu $29, $29, -16
    sd $31, 0($29)
    blez $4, BASE
    addiu $4, $4, -1
    jal fib
BASE:
    ld $31, 0($29)
    addiu $29, $29, 16
    jr $31
",
        );
        // No errors: fib returns and writes no forwarded regs.
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn return_exit_matches_ret_target() {
        let ok = check(
            "
main:
.task targets=F create=$31
A:
    jal!f!s F
.task targets=halt create=
B:
    halt
.task targets=ret create=$2
F:
    li!f $2, 3
    jr!s $31
",
        );
        assert!(!ok.has_errors(), "{ok}");

        let bad = check(
            "
main:
.task targets=F create=$31
A:
    jal!f!s F
.task targets=halt create=
B:
    halt
.task targets=B create=$2    ; should be ret
F:
    li!f $2, 3
    jr!s $31
",
        );
        assert!(bad.has_errors(), "{bad}");
    }

    #[test]
    fn conditional_stop_paths_are_followed() {
        let r = check(
            "
main:
.task targets=A,B create=$2
A:
    addiu!f $2, $2, 1
    bne!st $2, $16, A     ; stop if taken -> target A
    j!s B                 ; otherwise stop -> B
.task targets=halt create=
B:
    halt
",
        );
        assert!(!r.has_errors(), "{r}");
        // The first task has exactly two exits.
        assert_eq!(r.tasks[0].exits.len(), 2, "{r}");
    }
}
