//! `mspart` — partition plain scalar programs into multiscalar tasks.
//!
//! ```text
//! mspart program.s                         # partition with the default policy
//! mspart --policy size=8,loops=0 prog.s    # override policy axes
//! mspart --workload wc --workload sort     # partition scalar-stripped workloads
//! mspart --workload all --scale test       # the whole built-in suite
//! mspart --policy size=8 --policy size=32 prog.s   # one case per policy
//! mspart --emit out.s prog.s               # write the annotated source
//! mspart --report report.json ...          # deterministic JSON report
//! ```
//!
//! Inputs named by file are assembled in scalar mode, so already-annotated
//! sources are accepted: their annotations are stripped and re-derived.
//! Every emitted program is gated through the static checker; annotation
//! errors make the case fail.
//!
//! The report is byte-deterministic (`multiscalar-part/v1`): fixed field
//! order, no timestamps, so CI can `cmp` two runs.
//!
//! Exit status: 0 if every case partitioned and checked clean, 1 if any
//! case failed, 2 on usage, read or assembly errors.

use ms_cfg::{check_program, parse_cli, CliSpec, PartitionPolicy, Partitioned, Severity};
use ms_workloads::Scale;
use std::fmt::Write as _;
use std::process::ExitCode;

const USAGE: &str = "usage: mspart [--policy AXES]... [--workload NAME]... [--scale test|full] \
                     [--emit FILE] [--report FILE] [program.s]...";
const SPEC: CliSpec =
    CliSpec { flags: &[], options: &["--policy", "--workload", "--scale", "--emit", "--report"] };

/// One partitioning case: an input crossed with a policy point.
struct Case {
    input: String,
    policy_key: String,
    outcome: Result<(Partitioned, usize, usize, usize), String>,
}

fn fail(msg: String) -> ExitCode {
    eprintln!("mspart: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = match parse_cli(&SPEC, std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return fail(e.to_string()),
    };

    let scale = match args.value("--scale").unwrap_or("test") {
        "test" => Scale::Test,
        "full" => Scale::Full,
        other => return fail(format!("unknown scale `{other}`")),
    };

    let mut policies = Vec::new();
    for axes in args.values("--policy") {
        match PartitionPolicy::parse(axes) {
            Ok(p) => policies.push(p),
            Err(e) => return fail(e),
        }
    }
    if policies.is_empty() {
        policies.push(PartitionPolicy::default());
    }

    // Gather inputs: named workloads (scalar-stripped), then files.
    let mut inputs: Vec<(String, String)> = Vec::new();
    for name in args.values("--workload") {
        if name == "all" {
            for w in ms_workloads::suite(scale) {
                inputs.push((w.name.to_lowercase(), w.source));
            }
        } else {
            match ms_workloads::by_name(name, scale) {
                Some(w) => inputs.push((w.name.to_lowercase(), w.source)),
                None => return fail(format!("unknown workload `{name}`")),
            }
        }
    }
    for path in &args.positional {
        match std::fs::read_to_string(path) {
            Ok(src) => inputs.push((path.clone(), src)),
            Err(e) => return fail(format!("cannot read {path}: {e}")),
        }
    }
    if inputs.is_empty() {
        return fail("no inputs: give a file or --workload".into());
    }
    if args.value("--emit").is_some() && inputs.len() * policies.len() != 1 {
        return fail("--emit needs exactly one input and one policy".into());
    }

    let mut cases = Vec::new();
    for (input, src) in &inputs {
        for policy in &policies {
            let outcome = match ms_cfg::partition_source(src, policy) {
                Ok(part) => {
                    let report = check_program(&part.program);
                    let errors = report.of_severity(Severity::Error).count();
                    let warnings = report.of_severity(Severity::Warning).count();
                    let infos = report.of_severity(Severity::Info).count();
                    if errors > 0 {
                        for d in report.of_severity(Severity::Error) {
                            eprintln!("mspart: {input}: {d}");
                        }
                    }
                    Ok((part, errors, warnings, infos))
                }
                Err(e) => Err(e.to_string()),
            };
            cases.push(Case { input: input.clone(), policy_key: policy.stable_key(), outcome });
        }
    }

    if let Some(path) = args.value("--emit") {
        if let Ok((part, ..)) = &cases[0].outcome {
            if let Err(e) = std::fs::write(path, &part.source) {
                return fail(format!("cannot write {path}: {e}"));
            }
        }
    }

    let mut failed = false;
    for case in &cases {
        match &case.outcome {
            Ok((part, errors, warnings, _)) => {
                println!(
                    "{}: policy [{}]: {} tasks, {} inserted, {} forwards, {} releases, \
                     {} errors, {} warnings",
                    case.input,
                    case.policy_key,
                    part.task_count,
                    part.inserted,
                    part.forwards,
                    part.releases,
                    errors,
                    warnings
                );
                failed |= *errors > 0;
            }
            Err(e) => {
                println!("{}: policy [{}]: FAILED: {e}", case.input, case.policy_key);
                failed = true;
            }
        }
    }

    if let Some(path) = args.value("--report") {
        let json = report_json(&cases);
        let result = if path == "-" {
            println!("{json}");
            Ok(())
        } else {
            std::fs::write(path, json)
        };
        if let Err(e) = result {
            return fail(format!("cannot write {path}: {e}"));
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the deterministic `multiscalar-part/v1` report: fixed field
/// order, no timestamps or floats, byte-identical across runs.
fn report_json(cases: &[Case]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"schema\": \"multiscalar-part/v1\",\n  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let sep = if i + 1 == cases.len() { "" } else { "," };
        match &case.outcome {
            Ok((part, errors, warnings, infos)) => {
                let _ = writeln!(
                    out,
                    "    {{\"input\": \"{}\", \"policy\": \"{}\", \"ok\": true, \
                     \"tasks\": {}, \"inserted\": {}, \"forwards\": {}, \"releases\": {}, \
                     \"max_task_instrs\": {}, \"errors\": {}, \"warnings\": {}, \"infos\": {}}}{sep}",
                    esc(&case.input),
                    esc(&case.policy_key),
                    part.task_count,
                    part.inserted,
                    part.forwards,
                    part.releases,
                    part.max_task_instrs,
                    errors,
                    warnings,
                    infos,
                );
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "    {{\"input\": \"{}\", \"policy\": \"{}\", \"ok\": false, \
                     \"error\": \"{}\"}}{sep}",
                    esc(&case.input),
                    esc(&case.policy_key),
                    esc(e),
                );
            }
        }
    }
    out.push_str("  ]\n}\n");
    out
}
