//! `mscheck` — assemble a multiscalar source file and statically verify
//! its task annotations.
//!
//! ```text
//! mscheck program.s            # check annotations
//! mscheck --list program.s     # also print the annotated listing
//! ```
//!
//! Exit status: 0 if no errors, 1 on annotation errors, 2 on usage or
//! assembly failure.

use ms_asm::{assemble, AsmMode};
use ms_cfg::{check_program, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = args.iter().any(|a| a == "--list");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: mscheck [--list] <program.s>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mscheck: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let prog = match assemble(&src, AsmMode::Multiscalar) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mscheck: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if list {
        println!("{}", prog.listing());
    }
    let report = check_program(&prog);
    for d in &report.diagnostics {
        println!("{d}");
    }
    let errors = report.of_severity(Severity::Error).count();
    let warnings = report.of_severity(Severity::Warning).count();
    println!("{}: {} tasks, {} errors, {} warnings", path, report.tasks.len(), errors, warnings);
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
