//! `mscheck` — assemble a multiscalar source file and statically verify
//! its task annotations.
//!
//! ```text
//! mscheck program.s            # check annotations
//! mscheck --list program.s     # print the annotated listing to stdout
//! ```
//!
//! With `--list`, the listing is the only stdout output; diagnostics and
//! the summary line go to stderr so piped listings stay machine-clean.
//!
//! Exit status: 0 if no errors, 1 on annotation errors, 2 on usage or
//! assembly failure.

use ms_asm::{assemble, AsmMode};
use ms_cfg::{check_program, parse_cli, CliSpec, Severity};
use std::process::ExitCode;

const USAGE: &str = "usage: mscheck [--list] <program.s>";
const SPEC: CliSpec = CliSpec { flags: &["--list"], options: &[] };

fn main() -> ExitCode {
    let args = match parse_cli(&SPEC, std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mscheck: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let [path] = args.positional.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let list = args.has("--list");
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mscheck: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let prog = match assemble(&src, AsmMode::Multiscalar) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mscheck: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if list {
        println!("{}", prog.listing());
    }
    let report = check_program(&prog);
    // With --list active, stdout is reserved for the listing; findings
    // move to stderr so `mscheck --list prog.s | ...` stays parseable.
    let mut say: Box<dyn FnMut(std::fmt::Arguments)> = if list {
        Box::new(|line| eprintln!("{line}"))
    } else {
        Box::new(|line| println!("{line}"))
    };
    for d in &report.diagnostics {
        say(format_args!("{d}"));
    }
    let errors = report.of_severity(Severity::Error).count();
    let warnings = report.of_severity(Severity::Warning).count();
    say(format_args!(
        "{}: {} tasks, {} errors, {} warnings",
        path,
        report.tasks.len(),
        errors,
        warnings
    ));
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
