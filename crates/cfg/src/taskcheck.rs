//! Task-region discovery and annotation checking.

use crate::summary::{branch_target, summarize_functions, FnSummary};
use ms_isa::{Op, Program, Reg, RegMask, StopCond, TargetKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (e.g. reliance on end-of-task auto-release).
    Info,
    /// Suspicious but not provably wrong (e.g. unverifiable indirect
    /// control).
    Warning,
    /// The annotation is inconsistent with the code; the program will
    /// misbehave or fault at run time.
    Error,
}

/// One finding of the checker.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// The task the finding belongs to, if any.
    pub task: Option<u32>,
    /// The program counter of the offending instruction, if any.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        };
        write!(f, "{sev}")?;
        if let Some(t) = self.task {
            write!(f, " [task {t:#x}]")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " at {pc:#x}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A statically discovered task exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StaticExit {
    /// Exit to a static address.
    Addr(u32),
    /// Exit through `jr $31` (sequencer return-address stack).
    Return,
    /// Program end.
    Halt,
    /// Register-indirect exit that cannot be verified statically.
    Unverifiable(u32),
}

/// Static analysis results for one task.
#[derive(Clone, Debug)]
pub struct TaskAnalysis {
    /// Task entry address.
    pub entry: u32,
    /// Number of statically reachable instructions at task level
    /// (excluding callee bodies).
    pub reachable: usize,
    /// Discovered exits (deduplicated).
    pub exits: Vec<StaticExit>,
    /// Registers forwarded anywhere in the task (including callees).
    pub forwards: RegMask,
    /// Registers released anywhere in the task (including callees).
    pub releases: RegMask,
}

/// The checker's full output.
#[derive(Clone, Debug)]
pub struct Report {
    /// Per-task analyses, in entry order.
    pub tasks: Vec<TaskAnalysis>,
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Diagnostics of a given severity.
    pub fn of_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} tasks analysed", self.tasks.len())?;
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

struct Checker<'a> {
    prog: &'a Program,
    summaries: BTreeMap<u32, FnSummary>,
    diags: Vec<Diagnostic>,
}

impl Checker<'_> {
    fn diag(&mut self, severity: Severity, task: u32, pc: Option<u32>, message: String) {
        self.diags.push(Diagnostic { severity, task: Some(task), pc, message });
    }

    /// Intra-task control successors of `pc`, honouring stop bits the same
    /// way the main task walk does (a firing stop ends the task-level path).
    ///
    /// With `only_unconditional`, successors that depend on a conditional
    /// branch outcome are dropped, so reachability through the remaining
    /// edges means "executes whenever `pc` does".
    fn intra_task_successors(&self, pc: u32, only_unconditional: bool) -> Vec<u32> {
        let Some(instr) = self.prog.instr_at(pc) else {
            return Vec::new();
        };
        if matches!(instr.op, Op::Halt) {
            return Vec::new();
        }
        // `b target` assembles to `beq $0, $0`: an always-taken branch.
        let always_taken = matches!(instr.op, Op::Beq { rs, rt, .. } if rs == rt);
        let is_branch = instr.op.is_branch() && !always_taken;
        match instr.tags.stop {
            StopCond::Always => return Vec::new(),
            StopCond::IfTaken if is_branch => {
                return if only_unconditional { Vec::new() } else { vec![pc + 4] };
            }
            StopCond::IfNotTaken if is_branch => {
                return if only_unconditional {
                    Vec::new()
                } else {
                    branch_target(&instr.op, pc).into_iter().collect()
                };
            }
            StopCond::IfTaken | StopCond::IfNotTaken if always_taken => {
                // An always-taken branch resolves its conditional stop
                // statically: `!st` fires (exit), `!sn` never does.
                return match instr.tags.stop {
                    StopCond::IfTaken => Vec::new(),
                    _ => branch_target(&instr.op, pc).into_iter().collect(),
                };
            }
            _ => {}
        }
        match instr.op {
            Op::J { target } => vec![target],
            // Callee effects are folded in via summaries at the visit site.
            Op::Jal { .. } => vec![pc + 4],
            Op::Jr { .. } | Op::Jalr { .. } => Vec::new(),
            _ if always_taken => branch_target(&instr.op, pc).into_iter().collect(),
            ref op if op.is_branch() => {
                if only_unconditional {
                    Vec::new()
                } else {
                    let mut v = vec![pc + 4];
                    if let Some(t) = branch_target(op, pc) {
                        v.push(t);
                    }
                    v
                }
            }
            _ => vec![pc + 4],
        }
    }

    /// Checks every register in `regs` communicated at `comm_pc` (forward
    /// bit or release) for later writes inside the task. A rewrite reached
    /// through unconditional edges only executes on *every* run that
    /// communicates, so it is a definite staleness error; a rewrite that
    /// needs a conditional branch may sit on a dynamically exclusive path
    /// (the paper's Figure 4 forwards `$4` on two such paths) and is only
    /// a warning.
    fn check_stale_communication(
        &mut self,
        entry: u32,
        comm_pc: u32,
        regs: RegMask,
        what: &'static str,
    ) {
        let mut reported = RegMask::EMPTY;
        for (only_unconditional, severity) in [(true, Severity::Error), (false, Severity::Warning)]
        {
            let mut live = regs.difference(reported);
            if live.is_empty() {
                continue;
            }
            let mut seen: BTreeSet<u32> = BTreeSet::new();
            let mut work: VecDeque<u32> =
                self.intra_task_successors(comm_pc, only_unconditional).into();
            while let Some(pc) = work.pop_front() {
                if live.is_empty() {
                    break;
                }
                if !seen.insert(pc) {
                    continue;
                }
                if pc != entry && self.prog.task_at(pc).is_some() {
                    continue; // fall-through into another task is reported separately
                }
                let Some(instr) = self.prog.instr_at(pc) else {
                    continue;
                };
                let mut written = RegMask::EMPTY;
                if let Some(d) = instr.op.def() {
                    written.insert(d);
                }
                if let Op::Jal { target } = instr.op {
                    if let Some(sum) = self.summaries.get(&target) {
                        written = written.union(sum.writes);
                    }
                }
                for r in live.iter() {
                    if written.contains(r) {
                        let msg = if only_unconditional {
                            format!(
                                "{r} {what} here but is written again at {pc:#x} before the \
                                 task ends; successors receive the stale value"
                            )
                        } else {
                            format!(
                                "{r} {what} here but may be written again at {pc:#x} on a \
                                 conditional path; if both execute, successors receive the \
                                 stale value"
                            )
                        };
                        self.diag(severity, entry, Some(comm_pc), msg);
                        reported.insert(r);
                        live.remove(r);
                    }
                }
                for s in self.intra_task_successors(pc, only_unconditional) {
                    work.push_back(s);
                }
            }
        }
    }

    /// Validates the descriptor *layout* itself: the map key must name a
    /// descriptor that agrees about its entry, and the entry must be a
    /// word-aligned text address. The assembler never produces a layout
    /// that fails these checks, but a directly constructed [`Program`]
    /// (or a future binary loader) can; a malformed layout must surface
    /// as an error diagnostic, never as a checker panic.
    fn check_descriptor_layout(&mut self, key: u32) -> bool {
        let Some(desc) = self.prog.task_at(key) else {
            self.diag(
                Severity::Error,
                key,
                None,
                format!("no task descriptor exists for entry {key:#x}"),
            );
            return false;
        };
        if desc.entry != key {
            let entry = desc.entry;
            self.diag(
                Severity::Error,
                key,
                None,
                format!("descriptor keyed at {key:#x} declares a different entry {entry:#x}"),
            );
            return false;
        }
        if !key.is_multiple_of(4) {
            self.diag(
                Severity::Error,
                key,
                None,
                format!("task entry {key:#x} is not word-aligned"),
            );
            return false;
        }
        if key < self.prog.text_base || key >= self.prog.text_end() {
            self.diag(
                Severity::Error,
                key,
                None,
                format!("task entry {key:#x} lies outside the text segment"),
            );
            return false;
        }
        true
    }

    fn check_task(&mut self, entry: u32) -> TaskAnalysis {
        let Some(desc) = self.prog.task_at(entry) else {
            // Defensive twin of `check_descriptor_layout`: a task walk
            // without a descriptor is a malformed layout, not a panic.
            self.diag(
                Severity::Error,
                entry,
                None,
                format!("no task descriptor exists for entry {entry:#x}"),
            );
            return TaskAnalysis {
                entry,
                reachable: 0,
                exits: Vec::new(),
                forwards: RegMask::EMPTY,
                releases: RegMask::EMPTY,
            };
        };
        let desc = desc.clone();
        let mut exits: BTreeSet<StaticExit> = BTreeSet::new();
        let mut forwards = RegMask::EMPTY;
        let mut releases = RegMask::EMPTY;
        let mut comm_points: Vec<(u32, RegMask, &'static str)> = Vec::new();
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut work = VecDeque::from([entry]);

        while let Some(pc) = work.pop_front() {
            if !seen.insert(pc) {
                continue;
            }
            if pc != entry && self.prog.task_at(pc).is_some() {
                self.diag(
                    Severity::Error,
                    entry,
                    Some(pc),
                    format!("control falls through into the task at {pc:#x} without a stop bit"),
                );
                continue;
            }
            let Some(instr) = self.prog.instr_at(pc) else {
                self.diag(
                    Severity::Error,
                    entry,
                    Some(pc),
                    "control runs off the end of the text segment".into(),
                );
                continue;
            };
            if let Some(d) = instr.op.def() {
                if instr.tags.forward {
                    forwards.insert(d);
                    comm_points.push((pc, RegMask::from_iter([d]), "carries a forward bit"));
                }
            }
            if let Op::Release { regs } = instr.op {
                releases = releases.union(regs.to_mask());
                comm_points.push((pc, regs.to_mask(), "is released"));
            }

            // Halt ends the program regardless of tags.
            if matches!(instr.op, Op::Halt) {
                exits.insert(StaticExit::Halt);
                continue;
            }

            let is_branch = instr.op.is_branch();
            match instr.tags.stop {
                StopCond::Always => {
                    match instr.op {
                        Op::J { target } | Op::Jal { target } => {
                            exits.insert(StaticExit::Addr(target));
                        }
                        Op::Jr { rs } => {
                            if rs == Reg::RA {
                                exits.insert(StaticExit::Return);
                            } else {
                                exits.insert(StaticExit::Unverifiable(pc));
                            }
                        }
                        Op::Jalr { .. } => {
                            exits.insert(StaticExit::Unverifiable(pc));
                        }
                        ref op if op.is_branch() => {
                            if let Some(t) = branch_target(op, pc) {
                                exits.insert(StaticExit::Addr(t));
                            }
                            exits.insert(StaticExit::Addr(pc + 4));
                        }
                        _ => {
                            exits.insert(StaticExit::Addr(pc + 4));
                        }
                    }
                    continue; // the path ends at a stop-always
                }
                StopCond::IfTaken if is_branch => {
                    if let Some(t) = branch_target(&instr.op, pc) {
                        exits.insert(StaticExit::Addr(t));
                    }
                    work.push_back(pc + 4); // not-taken continues the task
                    continue;
                }
                StopCond::IfNotTaken if is_branch => {
                    exits.insert(StaticExit::Addr(pc + 4));
                    if let Some(t) = branch_target(&instr.op, pc) {
                        work.push_back(t); // taken continues the task
                    }
                    continue;
                }
                StopCond::IfTaken | StopCond::IfNotTaken => {
                    self.diag(
                        Severity::Warning,
                        entry,
                        Some(pc),
                        "conditional stop bit on a non-branch instruction".into(),
                    );
                }
                StopCond::None => {}
            }

            match instr.op {
                Op::J { target } => work.push_back(target),
                Op::Jal { target } => {
                    if let Some(sum) = self.summaries.get(&target).cloned() {
                        forwards = forwards.union(sum.forwards);
                        releases = releases.union(sum.releases);
                        for stop in &sum.internal_stops {
                            self.diag(
                                Severity::Warning,
                                entry,
                                Some(*stop),
                                format!("stop bit inside function {target:#x} called by this task"),
                            );
                        }
                        for &ij in &sum.indirect_jumps {
                            self.diag(
                                Severity::Warning,
                                entry,
                                Some(ij),
                                "register-indirect control inside a called function cannot \
                                 be verified statically"
                                    .into(),
                            );
                        }
                        if sum.returns {
                            work.push_back(pc + 4);
                        } else {
                            self.diag(
                                Severity::Warning,
                                entry,
                                Some(pc),
                                format!("call to {target:#x} never returns statically"),
                            );
                        }
                    } else {
                        work.push_back(pc + 4);
                    }
                }
                Op::Jr { .. } | Op::Jalr { .. } => {
                    self.diag(
                        Severity::Error,
                        entry,
                        Some(pc),
                        "register-indirect jump at task level without a stop bit \
                         (control would leave the task unmarked)"
                            .into(),
                    );
                }
                ref op if op.is_branch() => {
                    work.push_back(pc + 4);
                    if let Some(t) = branch_target(op, pc) {
                        work.push_back(t);
                    }
                }
                _ => work.push_back(pc + 4),
            }
        }

        // Stale-communication check: a forward bit (or `release`) sends a
        // register value to successors exactly once per task, so any later
        // write of the same register inside the task is lost to them — the
        // successor computes on the stale value with no squash to save it.
        for (pc, regs, what) in comm_points {
            self.check_stale_communication(entry, pc, regs, what);
        }

        // Exit-vs-descriptor check.
        for exit in &exits {
            let ok = match exit {
                StaticExit::Addr(a) => desc.target_index_for(*a).is_some(),
                StaticExit::Return => desc.targets.iter().any(|t| t.kind == TargetKind::Return),
                StaticExit::Halt => desc.targets.iter().any(|t| t.kind == TargetKind::Halt),
                StaticExit::Unverifiable(pc) => {
                    self.diag(
                        Severity::Warning,
                        entry,
                        Some(*pc),
                        "register-indirect task exit cannot be verified statically".into(),
                    );
                    true
                }
            };
            if !ok {
                self.diag(
                    Severity::Error,
                    entry,
                    None,
                    format!("exit {exit:?} is not among its descriptor targets"),
                );
            }
        }

        // Create-mask checks.
        let communicated = forwards.union(releases);
        for r in communicated.difference(desc.create).iter() {
            self.diag(
                Severity::Error,
                entry,
                None,
                format!("{r} is forwarded or released but missing from the create mask"),
            );
        }
        let auto = desc.create.difference(communicated);
        if !auto.is_empty() {
            self.diag(
                Severity::Info,
                entry,
                None,
                format!(
                    "create-mask registers {auto} have no forward bit or release on any \
                     path; successors wait for end-of-task auto-release"
                ),
            );
        }

        TaskAnalysis {
            entry,
            reachable: seen.len(),
            exits: exits.into_iter().collect(),
            forwards,
            releases,
        }
    }
}

/// Checks every task annotation in `prog` against its code.
///
/// Malformed descriptor layouts (a map key disagreeing with its
/// descriptor's entry, a misaligned entry, an entry outside the text
/// segment) produce error diagnostics and skip the per-task walk — they
/// never panic the checker.
pub fn check_program(prog: &Program) -> Report {
    let mut checker = Checker { prog, summaries: summarize_functions(prog), diags: Vec::new() };
    let mut tasks = Vec::new();
    for &entry in prog.tasks.keys() {
        if checker.check_descriptor_layout(entry) {
            tasks.push(checker.check_task(entry));
        }
    }
    Report { tasks, diagnostics: checker.diags }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_isa::{Instr, Op, TaskDescriptor, TaskTarget};

    /// A minimal two-instruction program with one well-formed task.
    fn tiny_program() -> Program {
        let mut prog = Program::new();
        prog.text = vec![
            Instr::new(Op::Addiu { rt: Reg::int(2), rs: Reg::ZERO, imm: 1 }),
            Instr::new(Op::Halt),
        ];
        let entry = prog.text_base;
        prog.entry = entry;
        prog.tasks.insert(
            entry,
            TaskDescriptor::new(entry, RegMask::from_iter([Reg::int(2)]), vec![TaskTarget::halt()]),
        );
        prog
    }

    #[test]
    fn well_formed_layout_passes() {
        let r = check_program(&tiny_program());
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.tasks.len(), 1);
    }

    #[test]
    fn descriptor_key_entry_mismatch_is_an_error_not_a_panic() {
        // The regression this pins: a descriptor registered under a key
        // that disagrees with its own entry used to reach
        // `task_at(entry).expect("caller verified")` style assumptions.
        let mut prog = tiny_program();
        let desc = prog.tasks.remove(&prog.text_base).unwrap();
        prog.tasks.insert(prog.text_base + 4, desc);
        let r = check_program(&prog);
        assert!(r.has_errors(), "{r}");
        assert!(
            r.diagnostics.iter().any(|d| d.message.contains("declares a different entry")),
            "{r}"
        );
        // The malformed task is skipped, not analysed.
        assert!(r.tasks.is_empty(), "{r}");
    }

    #[test]
    fn entry_outside_text_is_an_error_not_a_panic() {
        let mut prog = tiny_program();
        let far = prog.text_end() + 0x100;
        prog.tasks.insert(far, TaskDescriptor::new(far, RegMask::EMPTY, vec![TaskTarget::halt()]));
        let r = check_program(&prog);
        assert!(r.has_errors(), "{r}");
        assert!(
            r.diagnostics.iter().any(|d| d.message.contains("outside the text segment")),
            "{r}"
        );
    }

    #[test]
    fn misaligned_entry_is_an_error_not_a_panic() {
        let mut prog = tiny_program();
        let odd = prog.text_base + 2;
        prog.tasks.insert(odd, TaskDescriptor::new(odd, RegMask::EMPTY, vec![TaskTarget::halt()]));
        let r = check_program(&prog);
        assert!(r.has_errors(), "{r}");
        assert!(r.diagnostics.iter().any(|d| d.message.contains("not word-aligned")), "{r}");
    }
}
