//! CLI contract tests for `mscheck` and `mspart`.
//!
//! Pins three behaviours that regressed or nearly regressed:
//!
//! * unknown `--` flags are rejected with usage text and exit 2 (a typo
//!   like `--lsit` used to silently run a plain check and exit 0),
//! * `mscheck --list` keeps stdout machine-clean: the listing is the
//!   only stdout output, diagnostics and the summary go to stderr,
//! * malformed-annotation programs exit 1 (distinct from usage errors).

use std::path::PathBuf;
use std::process::{Command, Output};

const CLEAN: &str = "
main:
.task targets=halt create=$2
A:
    li!f $2, 1
    halt
";

/// A program whose task annotation is wrong (missing exit target).
const BROKEN: &str = "
main:
.task targets=halt create=$2
A:
    addiu!f $2, $2, 1
    bne!s $2, $16, A
    halt
";

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ms-cfg-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp program");
    path
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("binary runs")
}

#[test]
fn mscheck_rejects_unknown_flags_with_usage() {
    let path = write_temp("unknown-flag.s", CLEAN);
    let out = run(env!("CARGO_BIN_EXE_mscheck"), &["--lsit", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--lsit"), "stderr names the bad flag: {stderr}");
    assert!(stderr.contains("usage:"), "stderr shows usage: {stderr}");
    assert!(out.stdout.is_empty(), "nothing on stdout for usage errors");
}

#[test]
fn mspart_rejects_unknown_flags_with_usage() {
    let out = run(env!("CARGO_BIN_EXE_mspart"), &["--lsit"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--lsit") && stderr.contains("usage:"), "{stderr}");
}

#[test]
fn mscheck_list_keeps_stdout_machine_clean() {
    // Even with diagnostics (BROKEN has errors), stdout must contain
    // only the listing — parseable by a pipeline.
    let path = write_temp("list-clean.s", BROKEN);
    let out = run(env!("CARGO_BIN_EXE_mscheck"), &["--list", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "annotation errors exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stdout.contains("error"), "diagnostics leaked to stdout: {stdout}");
    assert!(!stdout.contains("tasks,"), "summary leaked to stdout: {stdout}");
    assert!(stderr.contains("not among its descriptor targets"), "{stderr}");
    assert!(stderr.contains("errors"), "summary moved to stderr: {stderr}");
    // The listing itself still lands on stdout.
    assert!(stdout.contains("addiu"), "listing on stdout: {stdout}");
}

#[test]
fn mscheck_exit_codes_separate_errors_from_usage() {
    let clean = write_temp("clean.s", CLEAN);
    let broken = write_temp("broken.s", BROKEN);
    let ok = run(env!("CARGO_BIN_EXE_mscheck"), &[clean.to_str().unwrap()]);
    assert_eq!(ok.status.code(), Some(0), "{}", String::from_utf8_lossy(&ok.stderr));
    let bad = run(env!("CARGO_BIN_EXE_mscheck"), &[broken.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    let none = run(env!("CARGO_BIN_EXE_mscheck"), &[]);
    assert_eq!(none.status.code(), Some(2), "missing positional is a usage error");
}

#[test]
fn mspart_partitions_a_scalar_file_end_to_end() {
    let src = "
main:
    li $16, 3
LOOP:
    addiu $16, $16, -1
    bne $16, $0, LOOP
    halt
";
    let path = write_temp("scalar-loop.s", src);
    let out = run(
        env!("CARGO_BIN_EXE_mspart"),
        &["--policy", "size=2", "--report", "-", path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"multiscalar-part/v1\""), "{stdout}");
    assert!(stdout.contains("\"ok\": true"), "{stdout}");
    assert!(stdout.contains("0 errors"), "{stdout}");
}
