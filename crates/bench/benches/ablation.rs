//! Bench target for the design-space ablation (ring latency, prediction
//! scheme, ARB-overflow policy) of DESIGN.md §4.

use criterion::{criterion_group, criterion_main, Criterion};
use ms_bench::{ablation, render_ablation};
use ms_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    let w = by_name("Wc", Scale::Test).expect("workload");
    println!("{}", render_ablation("Wc", &ablation(&w)));
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("wc_full_sweep", |b| b.iter(|| ablation(&w).len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
