//! Bench target for Table 2: dynamic instruction counts of the scalar
//! vs. multiscalar binaries. Prints the table (test scale) once, then
//! times the dual-binary run for representative workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use ms_bench::{render_table2, table2, verify_counts};
use ms_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    println!("{}", render_table2(&table2(Scale::Test)));
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for name in ["Wc", "Example", "Gcc"] {
        let w = by_name(name, Scale::Test).expect("workload");
        g.bench_function(name, |b| b.iter(|| verify_counts(&w)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
