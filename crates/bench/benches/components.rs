//! Component micro-benchmarks: ARB operations, task prediction, ring
//! stepping, assembly, and raw simulator throughput — the building
//! blocks whose costs determine harness run time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ms_asm::{assemble, AsmMode};
use ms_memsys::{Arb, Memory};
use ms_predictor::TaskPredictor;
use ms_workloads::{by_name, Scale};
use multiscalar::{Processor, SimConfig};

fn arb_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("arb");
    g.throughput(Throughput::Elements(1));
    g.bench_function("store_load_pair", |b| {
        let mut arb = Arb::new(8, 16, 256);
        let mem = Memory::new();
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(8) & 0xffff;
            arb.store(0, addr, 4, 42, 4).unwrap();
            let r = arb.load(1, addr, 4, &mem).unwrap();
            arb.free_stage(0);
            arb.free_stage(1);
            r.value
        })
    });
    g.finish();
}

fn predictor_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(1));
    g.bench_function("predict_update", |b| {
        let mut p = TaskPredictor::new();
        let mut pc = 0x1000u32;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0xfffc;
            let t = p.predict(pc, 4);
            p.update(pc, (t + 1) % 4);
            t
        })
    });
    g.finish();
}

fn assembler(c: &mut Criterion) {
    let w = by_name("Example", Scale::Test).expect("workload");
    let mut g = c.benchmark_group("assembler");
    g.sample_size(20);
    g.bench_function("figure3_source", |b| {
        b.iter(|| assemble(&w.source, AsmMode::Multiscalar).unwrap().text.len())
    });
    g.finish();
}

fn simulator_throughput(c: &mut Criterion) {
    let w = by_name("Wc", Scale::Test).expect("workload");
    let prog = w.assemble(AsmMode::Multiscalar).expect("assemble");
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("wc_8unit_run", |b| {
        b.iter(|| {
            let mut p = Processor::new(prog.clone(), SimConfig::multiscalar(8)).unwrap();
            p.run().unwrap().cycles
        })
    });
    g.finish();
}

criterion_group!(benches, arb_ops, predictor_ops, assembler, simulator_throughput);
criterion_main!(benches);
