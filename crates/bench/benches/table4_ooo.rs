//! Bench target for Table 4: out-of-order units.

use criterion::{criterion_group, criterion_main, Criterion};
use ms_bench::{evaluate_workload, render_table34};
use ms_workloads::{by_name, suite, Scale};

fn bench(c: &mut Criterion) {
    let rows: Vec<_> = suite(Scale::Test)
        .iter()
        .map(|w| evaluate_workload(w, true, &[1], &[4, 8]).expect("design point"))
        .collect();
    println!("{}", render_table34(&rows, true));
    let mut g = c.benchmark_group("table4_ooo");
    g.sample_size(10);
    for name in ["Tomcatv", "Eqntott"] {
        let w = by_name(name, Scale::Test).expect("workload");
        g.bench_function(name, |b| {
            b.iter(|| evaluate_workload(&w, true, &[2], &[8]).expect("design point"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
