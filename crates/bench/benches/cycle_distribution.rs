//! Bench target for the Section-3 cycle-distribution report.

use criterion::{criterion_group, criterion_main, Criterion};
use ms_bench::{cycle_distribution, render_cycles};
use ms_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    println!("{}", render_cycles(Scale::Test, 8));
    let mut g = c.benchmark_group("cycle_distribution");
    g.sample_size(10);
    for name in ["Gcc", "Wc"] {
        let w = by_name(name, Scale::Test).expect("workload");
        g.bench_function(name, |b| b.iter(|| cycle_distribution(&w, 8)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
