//! # ms-bench — the evaluation harness
//!
//! Regenerates the paper's evaluation artifacts:
//!
//! * **Table 2** — dynamic instruction counts, scalar vs. multiscalar
//!   binaries ([`table2`]),
//! * **Table 3** — scalar IPC, 4-/8-unit speedups and task-prediction
//!   accuracy with in-order units, 1-way and 2-way ([`evaluate_suite`]
//!   with `ooo = false`, rendered by [`render_table34`]),
//! * **Table 4** — the same with out-of-order units (`ooo = true`),
//! * the **Section 3 cycle-distribution** report ([`cycle_distribution`]),
//! * **Table 1** — the functional-unit latency configuration
//!   ([`table1`]).
//!
//! Run `cargo run --release -p ms-bench --bin tables -- all` to print
//! everything. Table 3/4 regeneration runs on the `ms-sweep` engine —
//! parallel across design points and memoized in an on-disk cache by
//! default (`--jobs 1` recovers the serial path; see the `mssweep` CLI
//! for arbitrary axis sweeps).
//!
//! The [`perf`] module (and its `msperf` CLI) measures the *simulator's
//! own* throughput — wall seconds, simulated cycles/sec — and emits
//! `BENCH_perf.json`; see `PERFORMANCE.md`.
//!
//! The [`prof`] module (and its `msprof` CLI) profiles the *simulated*
//! machine instead: conservation-checked CPI stacks per workload ×
//! machine, recorded as `multiscalar-prof/v1` JSON and diffable across
//! builds; see the "Profiling" section of the README.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// `JobFailure` deliberately carries the whole failed `Job` (see
// ms-sweep); each `Result` spans an entire table sweep, so the
// Err-variant size does not matter.
#![allow(clippy::result_large_err)]

pub mod perf;
pub mod prof;

use ms_asm::AsmMode;
use ms_sweep::{run_sweep, JobFailure, JobKind, SweepOptions, SweepReport, SweepSpec};
use ms_workloads::{suite, Scale, Workload, WorkloadError};
use multiscalar::{RunStats, SimConfig};
use std::fmt::Write;

/// One multiscalar design point's result against a benchmark.
#[derive(Clone, Copy, Debug)]
pub struct MultiResult {
    /// Number of processing units.
    pub units: usize,
    /// Speedup over the scalar baseline at the same issue width/order.
    pub speedup: f64,
    /// Task-prediction accuracy.
    pub pred: f64,
    /// Total cycles.
    pub cycles: u64,
}

/// Results for one benchmark at one issue width.
#[derive(Clone, Debug)]
pub struct WidthResult {
    /// Issue width (1 or 2).
    pub width: usize,
    /// Scalar-baseline IPC.
    pub scalar_ipc: f64,
    /// Scalar-baseline cycles.
    pub scalar_cycles: u64,
    /// Multiscalar results per unit count.
    pub multi: Vec<MultiResult>,
}

/// One row of Table 3/4.
#[derive(Clone, Debug)]
pub struct EvalRow {
    /// Benchmark name.
    pub name: String,
    /// Per-issue-width results.
    pub per_width: Vec<WidthResult>,
}

/// A design point that failed, identified precisely: the workload, the
/// machine kind, and the configuration axes are all in `job`.
#[derive(Debug)]
pub struct EvalError {
    /// Which design point failed, e.g. `compress ms8 w2 ooo`.
    pub job: String,
    /// The underlying assembly/simulation/validation failure.
    pub source: WorkloadError,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.job, self.source)
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Runs the sweep behind Table 3 (`ooo = false`) or Table 4
/// (`ooo = true`) for one benchmark, serially in the calling thread.
///
/// # Errors
/// Returns the first design point that fails assembly, simulation, or
/// output validation, identified by workload and configuration — the
/// harness never reports numbers from an unvalidated run.
pub fn evaluate_workload(
    w: &Workload,
    ooo: bool,
    widths: &[usize],
    unit_counts: &[usize],
) -> Result<EvalRow, EvalError> {
    let order = if ooo { "ooo" } else { "inorder" };
    let mut per_width = Vec::new();
    for &width in widths {
        let scfg = SimConfig::scalar().issue(width).out_of_order(ooo);
        let s = w.run_scalar(scfg).map_err(|source| EvalError {
            job: format!("{} scalar w{width} {order}", w.name),
            source,
        })?;
        let mut multi = Vec::new();
        for &units in unit_counts {
            let mcfg = SimConfig::multiscalar(units).issue(width).out_of_order(ooo);
            let m = w.run_multiscalar(mcfg).map_err(|source| EvalError {
                job: format!("{} ms{units} w{width} {order}", w.name),
                source,
            })?;
            multi.push(MultiResult {
                units,
                speedup: s.cycles as f64 / m.cycles as f64,
                pred: m.prediction_accuracy(),
                cycles: m.cycles,
            });
        }
        per_width.push(WidthResult { width, scalar_ipc: s.ipc(), scalar_cycles: s.cycles, multi });
    }
    Ok(EvalRow { name: w.name.to_string(), per_width })
}

/// Assembles Table 3/4 rows from a sweep report (the outcomes of a
/// [`SweepSpec`] that included scalar baselines). Rows keep the report's
/// workload order; widths and unit counts keep their order of appearance.
///
/// # Errors
/// Returns the first failed design point whose issue order matches
/// `ooo`, with its full job identity.
pub fn rows_from_sweep(report: &SweepReport, ooo: bool) -> Result<Vec<EvalRow>, JobFailure> {
    if let Some(f) = report.failures().find(|f| f.job.cfg.ooo == ooo) {
        return Err(f.clone());
    }
    // Scalar baselines per (workload, width).
    let scalars: Vec<(&str, usize, &RunStats)> = report
        .successes()
        .filter(|o| o.job.kind == JobKind::Scalar && o.job.cfg.ooo == ooo)
        .map(|o| (o.job.workload.as_str(), o.job.cfg.issue_width, &o.stats))
        .collect();
    let mut rows: Vec<EvalRow> = Vec::new();
    for o in report.successes() {
        if o.job.kind != JobKind::Multiscalar || o.job.cfg.ooo != ooo {
            continue;
        }
        let width = o.job.cfg.issue_width;
        let &(_, _, s) =
            scalars.iter().find(|(w, wd, _)| *w == o.job.workload && *wd == width).unwrap_or_else(
                || panic!("sweep is missing the scalar baseline for {} w{width}", o.job.workload),
            );
        let row = match rows.iter_mut().find(|r| r.name == o.job.workload) {
            Some(r) => r,
            None => {
                rows.push(EvalRow { name: o.job.workload.clone(), per_width: Vec::new() });
                rows.last_mut().expect("just pushed")
            }
        };
        let wres = match row.per_width.iter_mut().find(|wr| wr.width == width) {
            Some(wr) => wr,
            None => {
                row.per_width.push(WidthResult {
                    width,
                    scalar_ipc: s.ipc(),
                    scalar_cycles: s.cycles,
                    multi: Vec::new(),
                });
                row.per_width.last_mut().expect("just pushed")
            }
        };
        wres.multi.push(MultiResult {
            units: o.job.cfg.units,
            speedup: s.cycles as f64 / o.stats.cycles as f64,
            pred: o.stats.prediction_accuracy(),
            cycles: o.stats.cycles,
        });
    }
    Ok(rows)
}

/// Runs the Table 3 (`ooo = false`) or Table 4 (`ooo = true`) sweep for
/// the whole suite on the `ms-sweep` engine — parallel across design
/// points and served from the result cache where possible, with row
/// assembly independent of worker count.
///
/// # Errors
/// Returns the first failed design point with its job identity.
pub fn evaluate_suite(
    ooo: bool,
    scale: Scale,
    opts: &SweepOptions,
) -> Result<Vec<EvalRow>, JobFailure> {
    rows_from_sweep(&run_sweep(&SweepSpec::table34(scale, ooo), opts), ooo)
}

/// Renders Table 3/4 in the paper's layout.
pub fn render_table34(rows: &[EvalRow], ooo: bool) -> String {
    let mut out = String::new();
    let kind = if ooo { "Out-Of-Order" } else { "In-Order" };
    let num = if ooo { 4 } else { 3 };
    let _ = writeln!(out, "Table {num}: {kind} Issue Processing Units");
    let _ =
        writeln!(out, "{:10} | {:-^37} | {:-^37}", "", "1-Way Issue Units", "2-Way Issue Units");
    let _ = writeln!(
        out,
        "{:10} | {:>6} {:>7} {:>6} {:>7} {:>6} | {:>6} {:>7} {:>6} {:>7} {:>6}",
        "Program",
        "Scalar",
        "4-Unit",
        "Pred",
        "8-Unit",
        "Pred",
        "Scalar",
        "4-Unit",
        "Pred",
        "8-Unit",
        "Pred"
    );
    let _ = writeln!(
        out,
        "{:10} | {:>6} {:>7} {:>6} {:>7} {:>6} | {:>6} {:>7} {:>6} {:>7} {:>6}",
        "", "IPC", "Speedup", "", "Speedup", "", "IPC", "Speedup", "", "Speedup", ""
    );
    for r in rows {
        let mut line = format!("{:10} |", r.name);
        for wres in &r.per_width {
            let _ = write!(line, " {:6.2}", wres.scalar_ipc);
            for m in &wres.multi {
                let _ = write!(line, " {:7.2} {:5.1}%", m.speedup, 100.0 * m.pred);
            }
            let _ = write!(line, " |");
        }
        let _ = writeln!(out, "{}", line.trim_end_matches(" |"));
    }
    out
}

fn rows_to_json_array(rows: &[EvalRow]) -> String {
    use ms_trace::json;
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":{},\"widths\":[", json::string(&r.name));
        for (j, wr) in r.per_width.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"width\":{},\"scalar_ipc\":{},\"scalar_cycles\":{},\"multi\":[",
                wr.width,
                json::number(wr.scalar_ipc),
                wr.scalar_cycles
            );
            for (k, m) in wr.multi.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"units\":{},\"speedup\":{},\"pred\":{},\"cycles\":{}}}",
                    m.units,
                    json::number(m.speedup),
                    json::number(m.pred),
                    m.cycles
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Machine-readable Table 3/4 results (the `BENCH_tables.json` format
/// written by `tables --json` and `mssweep`). Either table may be absent
/// when only half the sweep was run. Field order is fixed, so identical
/// results render byte-identically.
pub fn tables_to_json(table3: Option<&[EvalRow]>, table4: Option<&[EvalRow]>) -> String {
    let mut out = String::from("{\"version\":1");
    if let Some(rows) = table3 {
        let _ = write!(out, ",\"table3\":{}", rows_to_json_array(rows));
    }
    if let Some(rows) = table4 {
        let _ = write!(out, ",\"table4\":{}", rows_to_json_array(rows));
    }
    out.push('}');
    out
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct CountRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Scalar-binary dynamic instruction count.
    pub scalar: u64,
    /// Multiscalar-binary dynamic instruction count.
    pub multiscalar: u64,
}

impl CountRow {
    /// Percentage increase of the multiscalar binary's dynamic count.
    pub fn increase(&self) -> f64 {
        if self.scalar == 0 {
            0.0
        } else {
            100.0 * (self.multiscalar as f64 - self.scalar as f64) / self.scalar as f64
        }
    }
}

/// Runs the Table-2 comparison: dynamic instruction counts of the scalar
/// binary vs. the multiscalar binary built from the same source.
///
/// # Panics
/// Panics if a run fails or produces wrong outputs.
pub fn table2(scale: Scale) -> Vec<CountRow> {
    suite(scale)
        .iter()
        .map(|w| {
            let s = w
                .run_scalar(SimConfig::scalar())
                .unwrap_or_else(|e| panic!("{} scalar: {e}", w.name));
            let m = w
                .run_multiscalar(SimConfig::multiscalar(4))
                .unwrap_or_else(|e| panic!("{} ms: {e}", w.name));
            CountRow { name: w.name, scalar: s.instructions, multiscalar: m.instructions }
        })
        .collect()
}

/// Renders Table 2 in the paper's layout.
pub fn render_table2(rows: &[CountRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: Benchmark Instruction Counts");
    let _ = writeln!(
        out,
        "{:10} | {:>12} {:>12} {:>9}",
        "Program", "Scalar", "Multiscalar", "Increase"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:10} | {:>12} {:>12} {:>8.1}%",
            r.name,
            r.scalar,
            r.multiscalar,
            r.increase()
        );
    }
    out
}

/// Runs one benchmark on an 8-unit in-order multiscalar processor and
/// returns the Section-3 cycle-distribution report.
///
/// # Panics
/// Panics if the run fails or produces wrong outputs.
pub fn cycle_distribution(w: &Workload, units: usize) -> RunStats {
    w.run_multiscalar(SimConfig::multiscalar(units)).unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// Renders the cycle-distribution report for the whole suite.
pub fn render_cycles(scale: Scale, units: usize) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "Section 3 cycle distribution ({units}-unit multiscalar, 1-way in-order)\n");
    let _ = writeln!(
        out,
        "{:10} {:>8} {:>9} {:>7} {:>7} {:>7} {:>6} {:>6}",
        "Program", "useful", "nonuseful", "inter", "intra", "retire", "arb", "idle"
    );
    for w in suite(scale) {
        let st = cycle_distribution(&w, units);
        let b = st.breakdown;
        let t = b.total().max(1) as f64;
        let pct = |v: u64| 100.0 * v as f64 / t;
        let _ = writeln!(
            out,
            "{:10} {:>7.1}% {:>8.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>5.1}% {:>5.1}%",
            w.name,
            pct(b.useful),
            pct(b.non_useful),
            pct(b.no_comp_inter_task),
            pct(b.no_comp_intra_task),
            pct(b.no_comp_wait_retire),
            pct(b.no_comp_arb),
            pct(b.idle),
        );
    }
    out
}

/// Renders Table 1 (the functional-unit latency configuration actually
/// used by the simulator).
pub fn table1() -> String {
    let t = ms_pipeline_latency_table();
    format!(
        "Table 1: Functional Unit Latencies\n\
         Integer                     Float\n\
         Add/Sub       {:>2}           SP Add/Sub   {:>2}\n\
         Shift/Logic   {:>2}           SP Multiply  {:>2}\n\
         Multiply      {:>2}           SP Divide    {:>2}\n\
         Divide        {:>2}           DP Add/Sub   {:>2}\n\
         Mem Store     {:>2}           DP Multiply  {:>2}\n\
         Mem Load      {:>2}           DP Divide    {:>2}\n\
         Branch        {:>2}\n",
        t.int_alu,
        t.fp_add_s,
        t.int_alu,
        t.fp_mul_s,
        t.int_mul,
        t.fp_div_s,
        t.int_div,
        t.fp_add_d,
        t.store,
        t.fp_mul_d,
        t.load + 1, // address generation + first cache cycle, as in Table 1
        t.fp_div_d,
        t.branch,
    )
}

fn ms_pipeline_latency_table() -> ms_pipeline::LatencyTable {
    SimConfig::scalar().latencies
}

/// Verifies a run's Table-2 invariant for a single workload (used by the
/// criterion benches to avoid silently timing broken code).
pub fn verify_counts(w: &Workload) -> CountRow {
    let s = w.run_scalar(SimConfig::scalar()).expect("scalar run");
    let m = w.run_multiscalar(SimConfig::multiscalar(4)).expect("multiscalar run");
    assert!(m.instructions >= s.instructions);
    CountRow { name: w.name, scalar: s.instructions, multiscalar: m.instructions }
}

/// Assembles a workload in both modes and asserts the static-size
/// relation (multiscalar text >= scalar text).
pub fn static_sizes(w: &Workload) -> (usize, usize) {
    let s = w.assemble(AsmMode::Scalar).expect("scalar asm");
    let m = w.assemble(AsmMode::Multiscalar).expect("ms asm");
    assert!(m.text.len() >= s.text.len());
    (s.text.len(), m.text.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_have_positive_increase_shape() {
        let rows = table2(Scale::Test);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.multiscalar >= r.scalar, "{}", r.name);
            assert!(r.increase() >= 0.0);
        }
        let rendered = render_table2(&rows);
        assert!(rendered.contains("Example"));
        assert!(rendered.contains("Compress"));
    }

    #[test]
    fn table3_one_row_renders() {
        let w = ms_workloads::by_name("Wc", Scale::Test).unwrap();
        let row = evaluate_workload(&w, false, &[1], &[4]).expect("Wc evaluates");
        assert_eq!(row.per_width.len(), 1);
        assert!(row.per_width[0].scalar_ipc > 0.0);
        assert!(row.per_width[0].multi[0].speedup > 0.5);
        let s = render_table34(&[row], false);
        assert!(s.contains("Table 3"));
        assert!(s.contains("Wc"));
    }

    #[test]
    fn sweep_rows_match_the_direct_serial_path() {
        let spec = SweepSpec {
            workloads: vec!["Wc".into(), "Cmp".into()],
            widths: vec![1],
            unit_counts: vec![4, 8],
            ..SweepSpec::table34(Scale::Test, false)
        };
        let report = run_sweep(&spec, &SweepOptions { jobs: 1, ..SweepOptions::default() });
        let rows = rows_from_sweep(&report, false).expect("sweep succeeds");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let w = ms_workloads::by_name(&row.name, Scale::Test).unwrap();
            let direct = evaluate_workload(&w, false, &[1], &[4, 8]).unwrap();
            assert_eq!(
                render_table34(&[direct], false),
                render_table34(std::slice::from_ref(row), false)
            );
        }
    }

    #[test]
    fn tables_json_is_deterministic_and_shaped() {
        let w = ms_workloads::by_name("Wc", Scale::Test).unwrap();
        let row = evaluate_workload(&w, false, &[1], &[4]).unwrap();
        let j1 = tables_to_json(Some(std::slice::from_ref(&row)), None);
        let j2 = tables_to_json(Some(std::slice::from_ref(&row)), None);
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"version\":1,\"table3\":[{\"name\":\"Wc\""));
        assert!(j1.contains("\"multi\":[{\"units\":4,\"speedup\":"));
        assert!(!j1.contains("table4"));
    }

    #[test]
    fn eval_error_carries_job_identity() {
        // An impossible cycle bound produces a real WorkloadError; the
        // EvalError wrapper must surface the design point identity.
        let w = ms_workloads::by_name("Wc", Scale::Test).unwrap();
        let source =
            w.run_multiscalar(SimConfig::multiscalar(4).max_cycles(1)).expect_err("must fail");
        let e = EvalError { job: "Wc ms4 w1 inorder".into(), source };
        let msg = e.to_string();
        assert!(msg.starts_with("Wc ms4 w1 inorder: "), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn table1_matches_paper_numbers() {
        let t = table1();
        assert!(t.contains("Divide        12"), "{t}");
        assert!(t.contains("DP Divide    18"), "{t}");
        assert!(t.contains("Mem Load       2"), "{t}");
    }

    #[test]
    fn cycles_report_covers_suite() {
        let s = render_cycles(Scale::Test, 4);
        for name in ["Compress", "Xlisp", "Example"] {
            assert!(s.contains(name), "{s}");
        }
    }
}

/// One ablation data point.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Knob description.
    pub config: String,
    /// Speedup over the default-config scalar baseline.
    pub speedup: f64,
    /// Task-prediction accuracy.
    pub pred: f64,
    /// Squashes (control + memory + ARB).
    pub squashes: u64,
}

/// Runs the design-space ablation of DESIGN.md §4 on one workload:
/// ring latency, ring width, prediction scheme, and ARB-overflow policy,
/// each varied against the paper's 8-unit in-order configuration.
///
/// # Panics
/// Panics if any run fails (all runs validate outputs).
pub fn ablation(w: &Workload) -> Vec<AblationRow> {
    use multiscalar::{ArbFullPolicy, PredictorKind};
    let s = w.run_scalar(SimConfig::scalar()).expect("scalar baseline");
    let mut rows = Vec::new();
    let mut point = |name: &str, cfg: SimConfig| {
        let m = w.run_multiscalar(cfg).unwrap_or_else(|e| panic!("{} [{name}]: {e}", w.name));
        rows.push(AblationRow {
            config: name.to_string(),
            speedup: s.cycles as f64 / m.cycles as f64,
            pred: m.prediction_accuracy(),
            squashes: m.control_squashes + m.memory_squashes + m.arb_squashes,
        });
    };
    let base = SimConfig::multiscalar(8);
    point("baseline (8u, ring=1, PAs, stall)", base);
    point("ring latency 2", base.ring_latency(2));
    point("ring latency 4", base.ring_latency(4));
    point("ring width 4", base.ring_width(4));
    point("static prediction", base.predictor(PredictorKind::StaticFirstTarget));
    point("last-outcome prediction", base.predictor(PredictorKind::LastOutcome));
    point("ARB overflow: squash", base.arb_policy(ArbFullPolicy::Squash));
    let mut tiny = base;
    tiny.arb_capacity = 8;
    point("tiny ARB (8 lines/bank), stall", tiny);
    let mut tiny_squash = base.arb_policy(ArbFullPolicy::Squash);
    tiny_squash.arb_capacity = 8;
    point("tiny ARB (8 lines/bank), squash", tiny_squash);
    rows
}

/// Renders an ablation table.
pub fn render_ablation(name: &str, rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablation: {name} (8-unit, 1-way, in-order)");
    let _ =
        writeln!(out, "{:38} {:>8} {:>7} {:>9}", "configuration", "speedup", "pred", "squashes");
    for r in rows {
        let _ = writeln!(
            out,
            "{:38} {:>8.2} {:>6.1}% {:>9}",
            r.config,
            r.speedup,
            100.0 * r.pred,
            r.squashes
        );
    }
    out
}

/// Speedup-vs-units scaling curve (an extension beyond the paper's 4/8
/// design points, using the same machine scaling rule: 2 x units banks).
///
/// # Panics
/// Panics if any run fails (all runs validate outputs).
pub fn scaling(w: &Workload, unit_counts: &[usize]) -> Vec<(usize, f64)> {
    let s = w.run_scalar(SimConfig::scalar()).expect("scalar baseline");
    unit_counts
        .iter()
        .map(|&u| {
            let m = w
                .run_multiscalar(SimConfig::multiscalar(u))
                .unwrap_or_else(|e| panic!("{} @{u}: {e}", w.name));
            (u, s.cycles as f64 / m.cycles as f64)
        })
        .collect()
}

/// Renders the scaling curves for a few representative workloads.
pub fn render_scaling(scale: Scale) -> String {
    let units = [1usize, 2, 4, 6, 8, 12, 16];
    let mut out = String::new();
    let _ = writeln!(out, "Speedup vs. processing units (1-way in-order)\n");
    let _ = write!(out, "{:10}", "Program");
    for u in units {
        let _ = write!(out, " {u:>6}");
    }
    let _ = writeln!(out);
    for name in ["Cmp", "Example", "Eqntott", "Compress", "Xlisp"] {
        let w = suite(scale).into_iter().find(|w| w.name == name).expect("workload");
        let curve = scaling(&w, &units);
        let _ = write!(out, "{:10}", name);
        for (_, sp) in curve {
            let _ = write!(out, " {sp:>6.2}");
        }
        let _ = writeln!(out);
    }
    out
}
