//! CPI-stack profiling (the `msprof` harness).
//!
//! Where [`crate::perf`] times the simulator itself, this module profiles
//! the *simulated machine*: it runs a workload × machine matrix with a
//! live [`multiscalar::CpiAccountant`] and reports where every unit-cycle
//! went — the conservation-checked CPI stack of
//! [`multiscalar::trace::CpiStack`]. All outputs are byte-deterministic
//! for a given build, workload set and machine set (they contain only
//! simulated quantities, never wall times), so two `msprof` runs can be
//! `cmp`'d and profiles recorded before and after a change can be
//! diffed.
//!
//! ## `msprof` JSON schema (`multiscalar-prof/v1`)
//!
//! ```json
//! {
//!   "schema": "multiscalar-prof/v1",
//!   "scale": "test",
//!   "points": [
//!     {"workload":"Wc","machine":"ms4","cpi":{ ...multiscalar-cpi/v1... }}
//!   ]
//! }
//! ```
//!
//! The embedded `"cpi"` object is exactly [`CpiStack::to_json`]
//! (schema `multiscalar-cpi/v1`), including the `conserved` flag, the
//! aggregate buckets, and the per-unit/per-task breakdowns.
//!
//! [`parse_profile`] reads that document back with a small hand-rolled
//! JSON reader (this workspace deliberately has no serde), and
//! [`diff_profiles`] renders the bucket-by-bucket movement between two
//! recorded profiles.

use crate::perf::MachineSpec;
use ms_trace::json;
use ms_trace::jsonv::{self, JsonValue};
use ms_trace::{CpiStack, StallReason};
use ms_workloads::{Workload, WorkloadError};
use multiscalar::CpiAccountant;
use std::fmt::Write as _;

/// Schema identifier stamped into [`profile_to_json`] output.
pub const PROF_SCHEMA: &str = "multiscalar-prof/v1";

/// One profiled (workload, machine) point.
#[derive(Clone, Debug)]
pub struct ProfPoint {
    /// Benchmark name (paper row name).
    pub workload: String,
    /// Machine name (`ms<N>`, possibly with suffixes the caller chose).
    pub machine: String,
    /// The conservation-checked CPI stack of the run.
    pub cpi: CpiStack,
}

/// Profiles one workload on one multiscalar machine.
///
/// The run is validated against the workload's reference outputs (like
/// every other run path) and the returned stack is conservation-checked
/// — a violation is a simulator bug and panics rather than producing a
/// silently wrong profile.
///
/// # Errors
/// Propagates assembly/simulation/validation failures.
///
/// # Panics
/// Panics if `m` is the scalar baseline (it has no unit queue to
/// profile) or if cycle accounting lost a unit-cycle.
pub fn profile(w: &Workload, m: &MachineSpec) -> Result<ProfPoint, WorkloadError> {
    assert!(m.multiscalar, "msprof profiles multiscalar machines; `{}` is scalar", m.name);
    let stats = w.run_multiscalar_with_accountant(m.cfg, CpiAccountant::new())?;
    let cpi = stats.cpi.expect("a live accountant always yields a stack");
    assert!(
        cpi.conservation_holds(),
        "{} on {}: CPI conservation violated — accounted {} of {} unit-cycles",
        w.name,
        m.name,
        cpi.accounted_unit_cycles(),
        cpi.total_unit_cycles()
    );
    Ok(ProfPoint { workload: w.name.to_string(), machine: m.name.clone(), cpi })
}

/// Renders profiled points as the `multiscalar-prof/v1` JSON document.
pub fn profile_to_json(scale: &str, points: &[ProfPoint]) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"schema\":{},", json::string(PROF_SCHEMA));
    let _ = write!(out, "\"scale\":{},", json::string(scale));
    out.push_str("\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"workload\":{},\"machine\":{},\"cpi\":{}}}",
            json::string(&p.workload),
            json::string(&p.machine),
            p.cpi.to_json()
        );
    }
    out.push_str("]}");
    out
}

/// Renders profiled points as a flat CSV matrix: one row per point, one
/// column per bucket (unit-cycles).
pub fn profile_to_csv(points: &[ProfPoint]) -> String {
    let mut out = String::from("workload,machine,units,cycles,instructions,cpi,issued");
    for r in StallReason::ALL {
        out.push(',');
        out.push_str(r.as_str());
    }
    out.push('\n');
    for p in points {
        let cpi = p.cpi.cpi().map(json::number).unwrap_or_default();
        let _ = write!(
            out,
            "{},{},{},{},{},{},{}",
            p.workload,
            p.machine,
            p.cpi.units,
            p.cpi.cycles,
            p.cpi.instructions,
            cpi,
            p.cpi.issued_cycles,
        );
        for r in StallReason::ALL {
            let _ = write!(out, ",{}", p.cpi.stall_cycles[r.index()]);
        }
        out.push('\n');
    }
    out
}

/// Renders profiled points as human-readable per-point tables.
pub fn render_profile(points: &[ProfPoint]) -> String {
    let mut out = String::new();
    for p in points {
        let _ = writeln!(out, "=== {} on {} ===", p.workload, p.machine);
        let _ = write!(out, "{}", p.cpi);
    }
    out
}

// ---------------------------------------------------------------------
// Reading profiles back (for `msprof diff`).
// ---------------------------------------------------------------------

/// One point of a recorded profile, as read back from disk. Only the
/// aggregate stack is retained — diffs compare bucket totals, not
/// per-task rows.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedPoint {
    /// Benchmark name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// Number of processing units.
    pub units: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// `(bucket name, unit-cycles)` in recorded order (`issued` first).
    pub buckets: Vec<(String, u64)>,
}

impl RecordedPoint {
    /// Aggregate CPI (`None` if nothing committed).
    pub fn cpi(&self) -> Option<f64> {
        (self.instructions > 0).then(|| self.cycles as f64 / self.instructions as f64)
    }

    /// A bucket's CPI contribution (see [`CpiStack::cpi_component`]).
    pub fn cpi_component(&self, unit_cycles: u64) -> Option<f64> {
        (self.instructions > 0 && self.units > 0)
            .then(|| unit_cycles as f64 / (self.units as f64 * self.instructions as f64))
    }
}

/// A recorded profile document, as read back from disk.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedProfile {
    /// Workload scale the profile was taken at.
    pub scale: String,
    /// The recorded points, in document order.
    pub points: Vec<RecordedPoint>,
}

/// Parses a `multiscalar-prof/v1` document produced by
/// [`profile_to_json`].
///
/// # Errors
/// Returns a human-readable description of the first structural problem
/// (wrong schema, missing field, malformed JSON).
pub fn parse_profile(text: &str) -> Result<RecordedProfile, String> {
    let doc = jsonv::parse(text)?;
    let schema = doc.get("schema").and_then(JsonValue::as_str).unwrap_or("<missing>");
    if schema != PROF_SCHEMA {
        return Err(format!("not an msprof profile: schema `{schema}`, want `{PROF_SCHEMA}`"));
    }
    let scale =
        doc.get("scale").and_then(JsonValue::as_str).ok_or("profile has no `scale`")?.to_string();
    let JsonValue::Arr(raw_points) = doc.get("points").ok_or("profile has no `points`")? else {
        return Err("`points` is not an array".into());
    };
    let mut points = Vec::with_capacity(raw_points.len());
    for (i, p) in raw_points.iter().enumerate() {
        let field = |k: &str| p.get(k).ok_or_else(|| format!("point {i} has no `{k}`"));
        let workload = field("workload")?.as_str().ok_or("workload not a string")?.to_string();
        let machine = field("machine")?.as_str().ok_or("machine not a string")?.to_string();
        let cpi = field("cpi")?;
        let num = |k: &str| {
            cpi.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("point {i} cpi has no numeric `{k}`"))
        };
        let JsonValue::Obj(raw_buckets) =
            cpi.get("buckets").ok_or_else(|| format!("point {i} cpi has no `buckets`"))?
        else {
            return Err(format!("point {i} `buckets` is not an object"));
        };
        let mut buckets = Vec::with_capacity(raw_buckets.len());
        for (name, v) in raw_buckets {
            let v = v.as_u64().ok_or_else(|| format!("bucket `{name}` is not a count"))?;
            buckets.push((name.clone(), v));
        }
        points.push(RecordedPoint {
            workload,
            machine,
            units: num("units")?,
            cycles: num("cycles")?,
            instructions: num("instructions")?,
            buckets,
        });
    }
    Ok(RecordedProfile { scale, points })
}

fn signed_pct(old: u64, new: u64) -> String {
    if old == 0 {
        if new == 0 {
            return "      -".into();
        }
        return "    new".into();
    }
    let pct = 100.0 * (new as f64 - old as f64) / old as f64;
    format!("{pct:+6.1}%")
}

/// Renders the movement between two recorded profiles: per shared
/// point, the cycle/CPI change and every bucket whose count moved;
/// points present in only one profile are listed as added/removed.
pub fn diff_profiles(old: &RecordedProfile, new: &RecordedProfile) -> String {
    let mut out = String::new();
    let key = |p: &RecordedPoint| (p.workload.clone(), p.machine.clone());
    for np in &new.points {
        let Some(op) = old.points.iter().find(|op| key(op) == key(np)) else {
            let _ = writeln!(out, "{}/{}: only in new profile", np.workload, np.machine);
            continue;
        };
        let mut bucket_lines = String::new();
        for (name, nv) in &np.buckets {
            let ov = op.buckets.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
            if ov == *nv {
                continue;
            }
            let comp = match (op.cpi_component(ov), np.cpi_component(*nv)) {
                (Some(a), Some(b)) => format!("  cpi {a:+.4} -> {b:+.4}"),
                _ => String::new(),
            };
            let _ = writeln!(
                bucket_lines,
                "  {name:<16} {ov:>12} -> {nv:>12}  {}{comp}",
                signed_pct(ov, *nv)
            );
        }
        if op == np && bucket_lines.is_empty() {
            continue;
        }
        let cpi_note = match (op.cpi(), np.cpi()) {
            (Some(a), Some(b)) => format!(", CPI {a:.4} -> {b:.4}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{}/{}: cycles {} -> {} ({}){cpi_note}",
            np.workload,
            np.machine,
            op.cycles,
            np.cycles,
            signed_pct(op.cycles, np.cycles).trim_start(),
        );
        out.push_str(&bucket_lines);
    }
    for op in &old.points {
        if !new.points.iter().any(|np| key(np) == key(op)) {
            let _ = writeln!(out, "{}/{}: only in old profile", op.workload, op.machine);
        }
    }
    if out.is_empty() {
        out.push_str("profiles are identical\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_workloads::Scale;

    fn point() -> ProfPoint {
        let w = ms_workloads::by_name("Wc", Scale::Test).unwrap();
        let m = MachineSpec::parse("ms4").unwrap();
        profile(&w, &m).unwrap()
    }

    #[test]
    fn profile_is_conserved_and_deterministic() {
        let p = point();
        assert!(p.cpi.conservation_holds());
        assert_eq!(p.cpi.units, 4);
        let a = profile_to_json("test", std::slice::from_ref(&p));
        let b = profile_to_json("test", std::slice::from_ref(&point()));
        assert_eq!(a, b, "msprof output must be byte-deterministic");
        assert!(a.starts_with("{\"schema\":\"multiscalar-prof/v1\","));
    }

    #[test]
    fn csv_and_text_render() {
        let p = point();
        let csv = profile_to_csv(std::slice::from_ref(&p));
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("workload,machine,units,cycles,instructions,cpi,issued,"));
        assert!(lines[0].ends_with(",squash_recovery"));
        assert!(lines[1].starts_with("Wc,ms4,4,"));
        let text = render_profile(std::slice::from_ref(&p));
        assert!(text.contains("=== Wc on ms4 ==="));
        assert!(text.contains("aggregate CPI"));
    }

    #[test]
    fn recorded_profile_round_trips() {
        let p = point();
        let doc = profile_to_json("test", std::slice::from_ref(&p));
        let rec = parse_profile(&doc).unwrap();
        assert_eq!(rec.scale, "test");
        assert_eq!(rec.points.len(), 1);
        let rp = &rec.points[0];
        assert_eq!(rp.workload, "Wc");
        assert_eq!(rp.machine, "ms4");
        assert_eq!(rp.cycles, p.cpi.cycles);
        assert_eq!(rp.instructions, p.cpi.instructions);
        assert_eq!(rp.buckets[0], ("issued".to_string(), p.cpi.issued_cycles));
        assert_eq!(rp.buckets.len(), 1 + StallReason::COUNT);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(parse_profile("{}").unwrap_err().contains("schema"));
        assert!(parse_profile("[1,2").is_err());
        assert!(parse_profile("{\"schema\":\"multiscalar-perf/v1\"}")
            .unwrap_err()
            .contains("multiscalar-prof/v1"));
    }

    #[test]
    fn diff_reports_identity_and_movement() {
        let p = point();
        let doc = profile_to_json("test", std::slice::from_ref(&p));
        let a = parse_profile(&doc).unwrap();
        let same = diff_profiles(&a, &a);
        assert!(same.contains("profiles are identical"), "{same}");

        let mut b = a.clone();
        b.points[0].cycles += 100;
        b.points[0].buckets[0].1 += 50;
        let moved = diff_profiles(&a, &b);
        assert!(moved.contains("Wc/ms4: cycles"), "{moved}");
        assert!(moved.contains("issued"), "{moved}");

        let mut c = a.clone();
        c.points[0].machine = "ms8".into();
        let disjoint = diff_profiles(&a, &c);
        assert!(disjoint.contains("only in new profile"), "{disjoint}");
        assert!(disjoint.contains("only in old profile"), "{disjoint}");
    }
}
