//! Host-side throughput measurement (the `msperf` harness).
//!
//! Everything else in this crate measures *simulated* time — cycles,
//! IPC, speedups. This module measures the *simulator itself*: wall
//! seconds per workload, simulated cycles per host second, and retired
//! instructions per host second. Those numbers bound experiment
//! turnaround (a 120-point sweep pays the per-point cost 120 times), so
//! they are tracked as a first-class artifact, `BENCH_perf.json`.
//!
//! ## `BENCH_perf.json` schema
//!
//! One JSON object, fixed field order, stable across runs of the same
//! build (the timing values themselves naturally vary):
//!
//! ```json
//! {
//!   "schema": "multiscalar-perf/v1",
//!   "scale": "full",                // workload scale measured
//!   "reps": 3,                      // timed repetitions per point
//!   "points": [
//!     {
//!       "workload": "Compress",     // paper row name
//!       "machine": "ms8",           // "scalar" or "ms<N>"
//!       "sim_cycles": 201335,       // simulated cycles (one run)
//!       "instructions": 160902,     // retired instructions (one run)
//!       "wall_secs": [0.021, ...],  // every rep, in run order
//!       "best_wall_secs": 0.0201,   // min over reps (least noise)
//!       "mean_wall_secs": 0.0214,   // arithmetic mean over reps
//!       "sim_cycles_per_sec": 1.0e7,  // sim_cycles / best_wall_secs
//!       "instrs_per_sec": 8.0e6       // instructions / best_wall_secs
//!     }
//!   ],
//!   "total_wall_secs": 1.84,        // sum of best_wall_secs
//!   "total_sim_cycles": 5923110,
//!   "total_instructions": 4310992
//! }
//! ```
//!
//! `best_wall_secs` (not the mean) feeds the throughput rates: the
//! minimum over repetitions is the standard estimator for the noise
//! floor of a deterministic computation. Simulated counts are taken
//! from the first repetition and asserted identical across reps — a
//! repetition that disagreed would mean the simulator lost determinism,
//! which this harness treats as an error, not a data point.

use ms_workloads::{Workload, WorkloadError};
use multiscalar::{CpiAccountant, SimConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// A named machine configuration `msperf` can time.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Stable machine name: `scalar` or `ms<N>`.
    pub name: String,
    /// `true` for multiscalar machines, `false` for the scalar baseline.
    pub multiscalar: bool,
    /// The simulator configuration this name denotes.
    pub cfg: SimConfig,
}

impl MachineSpec {
    /// Parses a machine name: `scalar`, or `ms<N>` for an `N`-unit
    /// multiscalar machine (e.g. `ms4`, `ms8`).
    pub fn parse(name: &str) -> Option<MachineSpec> {
        if name == "scalar" {
            return Some(MachineSpec {
                name: name.to_string(),
                multiscalar: false,
                cfg: SimConfig::scalar(),
            });
        }
        let units: usize = name.strip_prefix("ms")?.parse().ok()?;
        if units == 0 {
            return None;
        }
        Some(MachineSpec {
            name: name.to_string(),
            multiscalar: true,
            cfg: SimConfig::multiscalar(units),
        })
    }

    /// The default machine set: the scalar baseline plus the paper's
    /// 4- and 8-unit multiscalar configurations.
    pub fn defaults() -> Vec<MachineSpec> {
        ["scalar", "ms4", "ms8"].iter().map(|n| MachineSpec::parse(n).unwrap()).collect()
    }
}

/// One timed (workload, machine) point.
#[derive(Clone, Debug)]
pub struct PerfPoint {
    /// Benchmark name (paper row name).
    pub workload: String,
    /// Machine name (`scalar` or `ms<N>`).
    pub machine: String,
    /// Simulated cycles for one run.
    pub sim_cycles: u64,
    /// Retired instructions for one run.
    pub instructions: u64,
    /// Wall seconds of every repetition, in run order.
    pub wall_secs: Vec<f64>,
}

impl PerfPoint {
    /// Minimum wall seconds over repetitions — the noise-floor estimate
    /// used for throughput rates.
    pub fn best_wall_secs(&self) -> f64 {
        self.wall_secs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Arithmetic mean of wall seconds over repetitions.
    pub fn mean_wall_secs(&self) -> f64 {
        self.wall_secs.iter().sum::<f64>() / self.wall_secs.len() as f64
    }

    /// Simulated cycles per host second (against the best repetition).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.best_wall_secs()
    }

    /// Retired instructions per host second (against the best repetition).
    pub fn instrs_per_sec(&self) -> f64 {
        self.instructions as f64 / self.best_wall_secs()
    }
}

/// Times one workload on one machine for `reps` repetitions.
///
/// Each repetition assembles and runs the workload end-to-end (assembly
/// is part of the measured pipeline cost a sweep pays per design
/// point) and validates the simulated memory against the reference
/// implementation — `msperf` never times an unvalidated run.
///
/// # Errors
/// Propagates assembly/simulation/validation failures.
///
/// # Panics
/// Panics if repetitions disagree on simulated cycle or instruction
/// counts (the simulator must be deterministic).
pub fn measure(w: &Workload, m: &MachineSpec, reps: usize) -> Result<PerfPoint, WorkloadError> {
    measure_with(w, m, reps, false)
}

/// [`measure`] with live CPI-stack accounting on multiscalar runs.
///
/// Times the *accounting-enabled* simulation path
/// (`run_multiscalar_with_accountant`) instead of the default
/// `NoAccounting` path; the scalar baseline is timed unchanged (it has
/// no accountant). CI compares this against [`measure`] to bound the
/// runtime cost of cycle accounting — the zero-cost claim for the
/// *disabled* path is structural (monomorphization), but the *enabled*
/// path must also stay cheap enough to leave on in sweeps.
///
/// # Errors
/// Propagates assembly/simulation/validation failures.
pub fn measure_accounted(
    w: &Workload,
    m: &MachineSpec,
    reps: usize,
) -> Result<PerfPoint, WorkloadError> {
    measure_with(w, m, reps, true)
}

fn measure_with(
    w: &Workload,
    m: &MachineSpec,
    reps: usize,
    accounted: bool,
) -> Result<PerfPoint, WorkloadError> {
    assert!(reps > 0, "msperf needs at least one repetition");
    let mut wall_secs = Vec::with_capacity(reps);
    let mut counts: Option<(u64, u64)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let stats = match (m.multiscalar, accounted) {
            (true, false) => w.run_multiscalar(m.cfg),
            (true, true) => w.run_multiscalar_with_accountant(m.cfg, CpiAccountant::new()),
            (false, _) => w.run_scalar(m.cfg),
        }?;
        wall_secs.push(t0.elapsed().as_secs_f64());
        let got = (stats.cycles, stats.instructions);
        match counts {
            None => counts = Some(got),
            Some(first) => assert_eq!(
                first, got,
                "{} on {}: repetitions disagree on simulated counts — determinism lost",
                w.name, m.name
            ),
        }
    }
    let (sim_cycles, instructions) = counts.unwrap();
    Ok(PerfPoint {
        workload: w.name.to_string(),
        machine: m.name.clone(),
        sim_cycles,
        instructions,
        wall_secs,
    })
}

/// Renders measured points as the `BENCH_perf.json` document (schema
/// `multiscalar-perf/v1`, documented at module level).
pub fn perf_to_json(scale: &str, reps: usize, points: &[PerfPoint]) -> String {
    use ms_trace::json::{number, string};
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", string("multiscalar-perf/v1"));
    let _ = writeln!(out, "  \"scale\": {},", string(scale));
    let _ = writeln!(out, "  \"reps\": {reps},");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"workload\": {}, ", string(&p.workload));
        let _ = write!(out, "\"machine\": {}, ", string(&p.machine));
        let _ = write!(out, "\"sim_cycles\": {}, ", p.sim_cycles);
        let _ = write!(out, "\"instructions\": {}, ", p.instructions);
        out.push_str("\"wall_secs\": [");
        for (j, s) in p.wall_secs.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&number(*s));
        }
        out.push_str("], ");
        let _ = write!(out, "\"best_wall_secs\": {}, ", number(p.best_wall_secs()));
        let _ = write!(out, "\"mean_wall_secs\": {}, ", number(p.mean_wall_secs()));
        let _ = write!(out, "\"sim_cycles_per_sec\": {}, ", number(p.sim_cycles_per_sec()));
        let _ = write!(out, "\"instrs_per_sec\": {}", number(p.instrs_per_sec()));
        out.push_str(if i + 1 < points.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    let total_wall: f64 = points.iter().map(PerfPoint::best_wall_secs).sum();
    let total_cycles: u64 = points.iter().map(|p| p.sim_cycles).sum();
    let total_instrs: u64 = points.iter().map(|p| p.instructions).sum();
    let _ = writeln!(out, "  \"total_wall_secs\": {},", number(total_wall));
    let _ = writeln!(out, "  \"total_sim_cycles\": {total_cycles},");
    let _ = writeln!(out, "  \"total_instructions\": {total_instrs}");
    out.push_str("}\n");
    out
}

/// Renders a human-readable throughput table for terminal output.
pub fn render_perf(points: &[PerfPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>14} {:>12} {:>14} {:>14}",
        "workload", "machine", "sim cycles", "instructions", "wall (s)", "Mcycles/s", "Minstrs/s"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>14} {:>12.4} {:>14.2} {:>14.2}",
            p.workload,
            p.machine,
            p.sim_cycles,
            p.instructions,
            p.best_wall_secs(),
            p.sim_cycles_per_sec() / 1e6,
            p.instrs_per_sec() / 1e6,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_workloads::Scale;

    #[test]
    fn machine_spec_parses_known_names() {
        let s = MachineSpec::parse("scalar").unwrap();
        assert!(!s.multiscalar);
        let m = MachineSpec::parse("ms4").unwrap();
        assert!(m.multiscalar);
        assert_eq!(m.cfg.units, 4);
        assert!(MachineSpec::parse("ms0").is_none());
        assert!(MachineSpec::parse("vliw").is_none());
        assert!(MachineSpec::parse("ms").is_none());
        assert_eq!(MachineSpec::defaults().len(), 3);
    }

    #[test]
    fn accounted_measurement_is_cycle_identical() {
        let w = ms_workloads::by_name("Wc", Scale::Test).unwrap();
        let m = MachineSpec::parse("ms4").unwrap();
        let plain = measure(&w, &m, 1).unwrap();
        let acct = measure_accounted(&w, &m, 1).unwrap();
        // Accounting is observational: it must not perturb the
        // simulated machine.
        assert_eq!(plain.sim_cycles, acct.sim_cycles);
        assert_eq!(plain.instructions, acct.instructions);
    }

    #[test]
    fn measure_and_emit_round_trip() {
        let w = ms_workloads::by_name("Wc", Scale::Test).unwrap();
        let m = MachineSpec::parse("ms4").unwrap();
        let p = measure(&w, &m, 2).unwrap();
        assert_eq!(p.wall_secs.len(), 2);
        assert!(p.sim_cycles > 0 && p.instructions > 0);
        assert!(p.best_wall_secs() <= p.mean_wall_secs());
        let json = perf_to_json("test", 2, std::slice::from_ref(&p));
        assert!(json.contains("\"schema\": \"multiscalar-perf/v1\""));
        assert!(json.contains("\"machine\": \"ms4\""));
        assert!(json.contains("\"total_sim_cycles\""));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in-tree (CI validates with python3 -m json).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = render_perf(std::slice::from_ref(&p));
        assert!(table.contains("Wc"));
    }
}
