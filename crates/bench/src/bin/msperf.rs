//! `msperf` — host-side simulator throughput harness.
//!
//! ```text
//! cargo run --release -p ms-bench --bin msperf -- \
//!     [--workloads a,b,...] [--scale test|full] \
//!     [--machines scalar,ms4,ms8] [--reps N] [--out PATH] [--cpi]
//! ```
//!
//! Times each (workload, machine) point for `--reps` repetitions
//! (default 3), prints a throughput table (simulated cycles/sec,
//! retired instructions/sec, wall seconds per workload), and writes
//! `BENCH_perf.json` (default `--out BENCH_perf.json`; schema
//! `multiscalar-perf/v1`, documented in `ms_bench::perf`). Defaults
//! measure the full suite at full scale on scalar/ms4/ms8 — the same
//! grid the Table 3 sweep pays for, so these numbers predict sweep
//! turnaround.
//!
//! With `--cpi`, multiscalar points are timed with live CPI-stack
//! accounting (`run_multiscalar_with_accountant`). CI runs msperf with
//! and without this flag and asserts the accounted timings regress by
//! less than 2%, bounding the cost of leaving accounting on in sweeps.
//!
//! With `--no-skip`, every machine runs with the event-driven
//! skip-ahead stepper disabled (`SimConfig::skip_ahead(false)`) — the
//! classic one-cycle-per-step loop. Interleaving runs with and without
//! the flag is the A/B methodology behind PERFORMANCE.md's Pass 2
//! tables and the CI perf-guard job; simulated cycle/instruction
//! counts must match exactly between the two modes.

use ms_bench::perf::{
    measure, measure_accounted, perf_to_json, render_perf, MachineSpec, PerfPoint,
};
use ms_sweep::artifacts;
use ms_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: msperf [--workloads a,b,...] [--scale test|full] \
         [--machines scalar,ms4,ms8] [--reps N] [--out PATH] [--cpi] [--no-skip]"
    );
    std::process::exit(2);
}

fn main() {
    let mut workloads: Option<Vec<String>> = None;
    let mut scale = Scale::Full;
    let mut machines = MachineSpec::defaults();
    let mut reps = 3usize;
    let mut out_path = "BENCH_perf.json".to_string();
    let mut cpi = false;
    let mut no_skip = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workloads" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--workloads needs a comma-separated list");
                    usage()
                });
                workloads = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--scale needs test|full");
                    usage()
                });
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale `{v}` (use test|full)");
                    usage()
                });
            }
            "--machines" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--machines needs a comma-separated list");
                    usage()
                });
                machines = list
                    .split(',')
                    .map(|name| {
                        MachineSpec::parse(name.trim()).unwrap_or_else(|| {
                            eprintln!("unknown machine `{name}` (use scalar or ms<N>)");
                            usage()
                        })
                    })
                    .collect();
            }
            "--reps" => {
                reps = it.next().and_then(|v| v.parse().ok()).filter(|&r| r > 0).unwrap_or_else(
                    || {
                        eprintln!("--reps needs a positive integer");
                        usage()
                    },
                );
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    usage()
                });
            }
            "--cpi" => cpi = true,
            "--no-skip" => no_skip = true,
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    if no_skip {
        for m in &mut machines {
            m.cfg = m.cfg.skip_ahead(false);
        }
    }

    let suite = ms_workloads::suite(scale);
    let selected: Vec<_> = match &workloads {
        None => suite.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                suite.iter().find(|w| w.name.eq_ignore_ascii_case(n)).unwrap_or_else(|| {
                    eprintln!("unknown workload `{n}`");
                    std::process::exit(2);
                })
            })
            .collect(),
    };

    let mut points: Vec<PerfPoint> = Vec::new();
    for w in &selected {
        for m in &machines {
            let point = if cpi { measure_accounted(w, m, reps) } else { measure(w, m, reps) };
            match point {
                Ok(p) => points.push(p),
                Err(e) => {
                    eprintln!("{} on {}: {e}", w.name, m.name);
                    std::process::exit(1);
                }
            }
        }
    }

    print!("{}", render_perf(&points));
    let total: f64 = points.iter().map(PerfPoint::best_wall_secs).sum();
    println!("total best wall time: {total:.3} s over {} points (reps = {reps})", points.len());

    let json = perf_to_json(scale.id(), reps, &points);
    if let Err(e) = artifacts::write_atomic(std::path::Path::new(&out_path), json.as_bytes()) {
        eprintln!("writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
