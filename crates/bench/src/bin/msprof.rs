//! `msprof` — CPI-stack profiler for the simulated machine.
//!
//! ```text
//! cargo run --release -p ms-bench --bin msprof -- \
//!     run [--workloads a,b,...] [--scale test|full] [--machines ms4,ms8] \
//!         [--out PATH] [--csv PATH] [--quiet]
//! cargo run --release -p ms-bench --bin msprof -- diff OLD.json NEW.json
//! ```
//!
//! `msprof run` executes each (workload, machine) point with a live
//! cycle accountant, prints the per-point CPI-stack tables, and records
//! the profile as `multiscalar-prof/v1` JSON (default `BENCH_prof.json`;
//! `--csv` additionally writes the flat bucket matrix). Every number in
//! the profile is a simulated quantity, so the output is byte-identical
//! across runs of the same build — CI `cmp`s two runs to enforce this.
//!
//! `msprof diff` reads two recorded profiles and prints where the
//! unit-cycles moved: per shared point the cycle/CPI change plus every
//! bucket whose count changed, with its CPI contribution. This replaces
//! ad-hoc before/after notes in PERFORMANCE.md — record a profile on
//! `main`, record one on your branch, and diff them.
//!
//! Machines must be multiscalar (`ms<N>`): the scalar baseline has no
//! unit queue and no stall-attribution path to profile.

use ms_bench::perf::MachineSpec;
use ms_bench::prof::{
    diff_profiles, parse_profile, profile, profile_to_csv, profile_to_json, render_profile,
    ProfPoint,
};
use ms_sweep::artifacts;
use ms_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: msprof run [--workloads a,b,...] [--scale test|full] \
         [--machines ms4,ms8] [--out PATH] [--csv PATH] [--quiet]\n       \
         msprof diff OLD.json NEW.json"
    );
    std::process::exit(2);
}

fn cmd_run(args: &[String]) {
    let mut workloads: Option<Vec<String>> = None;
    let mut scale = Scale::Full;
    let mut machines: Vec<MachineSpec> = ["ms4", "ms8"]
        .iter()
        .map(|n| {
            MachineSpec::parse(n).unwrap_or_else(|| {
                eprintln!("msprof: internal error: default machine `{n}` does not parse");
                std::process::exit(1);
            })
        })
        .collect();
    let mut out_path = "BENCH_prof.json".to_string();
    let mut csv_path: Option<String> = None;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--workloads" => {
                workloads =
                    Some(value("--workloads").split(',').map(|s| s.trim().to_string()).collect());
            }
            "--scale" => {
                let v = value("--scale");
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale `{v}` (use test|full)");
                    usage()
                });
            }
            "--machines" => {
                machines = value("--machines")
                    .split(',')
                    .map(|name| {
                        let m = MachineSpec::parse(name.trim()).unwrap_or_else(|| {
                            eprintln!("unknown machine `{name}` (use ms<N>)");
                            usage()
                        });
                        if !m.multiscalar {
                            eprintln!(
                                "msprof profiles multiscalar machines only; \
                                 `{name}` has no CPI stack"
                            );
                            usage();
                        }
                        m
                    })
                    .collect();
            }
            "--out" => out_path = value("--out"),
            "--csv" => csv_path = Some(value("--csv")),
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let suite = ms_workloads::suite(scale);
    let selected: Vec<_> = match &workloads {
        None => suite.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                suite.iter().find(|w| w.name.eq_ignore_ascii_case(n)).unwrap_or_else(|| {
                    eprintln!("unknown workload `{n}`");
                    std::process::exit(2);
                })
            })
            .collect(),
    };

    let mut points: Vec<ProfPoint> = Vec::new();
    for w in &selected {
        for m in &machines {
            match profile(w, m) {
                Ok(p) => points.push(p),
                Err(e) => {
                    eprintln!("{} on {}: {e}", w.name, m.name);
                    std::process::exit(1);
                }
            }
        }
    }

    if !quiet {
        print!("{}", render_profile(&points));
    }

    let json = profile_to_json(scale.id(), &points);
    if let Err(e) = artifacts::write_atomic(std::path::Path::new(&out_path), json.as_bytes()) {
        eprintln!("writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path} ({} points)", points.len());

    if let Some(path) = csv_path {
        if let Err(e) =
            artifacts::write_atomic(std::path::Path::new(&path), profile_to_csv(&points).as_bytes())
        {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}

fn cmd_diff(args: &[String]) {
    let [old_path, new_path] = args else { usage() };
    let load = |path: &String| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            std::process::exit(1);
        });
        parse_profile(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    if old.scale != new.scale {
        eprintln!("note: profiles taken at different scales ({} vs {})", old.scale, new.scale);
    }
    print!("{}", diff_profiles(&old, &new));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => cmd_run(rest),
        Some((cmd, rest)) if cmd == "diff" => cmd_diff(rest),
        _ => usage(),
    }
}
