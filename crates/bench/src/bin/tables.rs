//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! cargo run --release -p ms-bench --bin tables -- [all|table1|table2|table3|table4|cycles] [--test-scale]
//! ```

use ms_bench::{
    ablation, evaluate_suite, render_ablation, render_cycles, render_scaling, render_table2,
    render_table34, table1, table2,
};
use ms_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--test-scale") { Scale::Test } else { Scale::Full };
    let what = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");

    let run = |name: &str| what == "all" || what == name;

    if run("table1") || run("config") {
        println!("{}", table1());
    }
    if run("table2") {
        println!("{}", render_table2(&table2(scale)));
    }
    if run("table3") {
        let rows = evaluate_suite(false, scale);
        println!("{}", render_table34(&rows, false));
    }
    if run("table4") {
        let rows = evaluate_suite(true, scale);
        println!("{}", render_table34(&rows, true));
    }
    if run("cycles") {
        println!("{}", render_cycles(scale, 8));
    }
    if run("scaling") {
        println!("{}", render_scaling(scale));
    }
    if run("ablation") {
        for name in ["Example", "Wc", "Compress"] {
            let w = ms_workloads::by_name(name, scale).expect("workload");
            println!("{}", render_ablation(name, &ablation(&w)));
        }
    }
    if !["all", "table1", "config", "table2", "table3", "table4", "cycles", "ablation", "scaling"]
        .contains(&what)
    {
        eprintln!("unknown selector `{what}`; use all|table1|table2|table3|table4|cycles|ablation|scaling");
        std::process::exit(2);
    }
}
