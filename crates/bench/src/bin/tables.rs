//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! cargo run --release -p ms-bench --bin tables -- \
//!     [all|table1|table2|table3|table4|cycles|ablation|scaling] \
//!     [--test-scale] [--jobs N] [--json PATH] [--cache-dir DIR] [--no-cache]
//! ```
//!
//! Table 3/4 regeneration runs on the `ms-sweep` engine: design points
//! execute in parallel (`--jobs`, default = available cores; `--jobs 1`
//! is the exact serial path) and are memoized in the on-disk result
//! cache (default `.ms-sweep-cache`, overridable with `--cache-dir` or
//! `$MS_SWEEP_CACHE`; `--no-cache` disables). Output is byte-identical
//! across worker counts. `--json PATH` additionally writes the computed
//! tables as machine-readable JSON (the `BENCH_tables.json` format).

use ms_bench::{
    ablation, evaluate_suite, render_ablation, render_cycles, render_scaling, render_table2,
    render_table34, table1, table2, tables_to_json, EvalRow,
};
use ms_sweep::{artifacts, JobFailure, SweepCache, SweepOptions};
use ms_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: tables [all|table1|table2|table3|table4|cycles|ablation|scaling] \
         [--test-scale] [--jobs N] [--json PATH] [--cache-dir DIR] [--no-cache]"
    );
    std::process::exit(2);
}

fn main() {
    let mut what: Option<String> = None;
    let mut scale = Scale::Full;
    let mut jobs = 0usize;
    let mut json_path: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--test-scale" => scale = Scale::Test,
            "--no-cache" => no_cache = true,
            "--jobs" => {
                jobs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a non-negative integer (0 = all cores)");
                    usage()
                });
            }
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    usage()
                }));
            }
            "--cache-dir" => {
                cache_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--cache-dir needs a path");
                    usage()
                }));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => {
                if what.replace(other.to_string()).is_some() {
                    eprintln!("more than one selector named");
                    usage();
                }
            }
        }
    }
    let what = what.unwrap_or_else(|| "all".to_string());
    let run = |name: &str| what == "all" || what == name;

    let cache = if no_cache {
        SweepCache::disabled()
    } else {
        match cache_dir {
            Some(dir) => SweepCache::at(dir),
            None => SweepCache::from_env(),
        }
    };
    let opts = SweepOptions { jobs, cache, ..SweepOptions::default() };
    let sweep_or_die = |ooo: bool| -> Vec<EvalRow> {
        evaluate_suite(ooo, scale, &opts).unwrap_or_else(|f: JobFailure| {
            eprintln!("design point failed: {f}");
            std::process::exit(1);
        })
    };

    if run("table1") || run("config") {
        println!("{}", table1());
    }
    if run("table2") {
        println!("{}", render_table2(&table2(scale)));
    }
    let mut rows3: Option<Vec<EvalRow>> = None;
    let mut rows4: Option<Vec<EvalRow>> = None;
    if run("table3") {
        let rows = sweep_or_die(false);
        println!("{}", render_table34(&rows, false));
        rows3 = Some(rows);
    }
    if run("table4") {
        let rows = sweep_or_die(true);
        println!("{}", render_table34(&rows, true));
        rows4 = Some(rows);
    }
    if run("cycles") {
        println!("{}", render_cycles(scale, 8));
    }
    if run("scaling") {
        println!("{}", render_scaling(scale));
    }
    if run("ablation") {
        for name in ["Example", "Wc", "Compress"] {
            let Some(w) = ms_workloads::by_name(name, scale) else {
                eprintln!("tables: ablation workload `{name}` is missing from the suite");
                std::process::exit(1);
            };
            println!("{}", render_ablation(name, &ablation(&w)));
        }
    }
    if let Some(path) = json_path {
        if rows3.is_none() && rows4.is_none() {
            eprintln!("--json requires table3 and/or table4 (selector `{what}` computes neither)");
            std::process::exit(2);
        }
        let json = tables_to_json(rows3.as_deref(), rows4.as_deref());
        if let Err(e) = artifacts::write_atomic(std::path::Path::new(&path), json.as_bytes()) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if !["all", "table1", "config", "table2", "table3", "table4", "cycles", "ablation", "scaling"]
        .contains(&what.as_str())
    {
        eprintln!(
            "unknown selector `{what}`; use all|table1|table2|table3|table4|cycles|ablation|scaling"
        );
        std::process::exit(2);
    }
}
