//! Experiment-sweep runner over the `ms-sweep` engine.
//!
//! Expands workload × configuration axes into independent simulation
//! jobs, executes them on a worker pool with an on-disk result cache,
//! and writes deterministic artifacts:
//!
//! ```text
//! cargo run --release -p ms-bench --bin mssweep -- \
//!     [--workloads wc,cmp,...] [--scale test|full] [--widths 1,2] \
//!     [--units 4,8] [--order inorder|ooo|both] [--partition AXES]... \
//!     [--jobs N] [--out-dir DIR] [--cache-dir DIR] [--no-cache] \
//!     [--metrics] [--cpi] [--quiet] [--list]
//! ```
//!
//! `--partition` adds an automatic-partitioning point to the multiscalar
//! axis: `AXES` is a `ms_cfg::PartitionPolicy` override list such as
//! `size=8,loops=0` (or `none` for the hand-annotated source), and the
//! flag repeats to sweep several policies side by side — task-partition
//! heuristics become an experiment knob like any `SimConfig` axis.
//! Without the flag, every job runs the hand-annotated sources exactly
//! as before.
//!
//! Defaults reproduce the paper's full Table 3 + Table 4 design space.
//! Under `--out-dir` (default `mssweep-out`) it writes:
//!
//! * `results.json` — every design point with its full `RunStats`,
//! * `results.csv`  — the flat sweep matrix,
//! * `BENCH_tables.json` — Table 3/4 rows (speedups, prediction
//!   accuracy) in the same format as `tables --json`,
//! * `metrics/` (with `--metrics`) — one `ms_trace::MetricsReport` JSON
//!   per executed multiscalar job.
//!
//! With `--cpi`, every multiscalar design point runs with a live cycle
//! accountant and its `results.json` entry gains a `"cpi"` object (the
//! conservation-checked CPI stack). Cache keys and cached bytes are
//! unaffected; multiscalar points simply bypass the cache probe, as with
//! `--metrics`.
//!
//! All artifacts are byte-identical regardless of `--jobs` and of
//! whether points came from the cache. The cache lives in
//! `.ms-sweep-cache` unless `--cache-dir` or `$MS_SWEEP_CACHE` says
//! otherwise; a warm re-run of an identical sweep executes zero
//! simulation jobs. Exits non-zero if any design point fails (the
//! failure is reported with its job identity; other points still
//! complete and appear in the artifacts).

use ms_bench::{render_table34, rows_from_sweep, tables_to_json};
use ms_sweep::{artifacts, run_sweep, SweepCache, SweepOptions, SweepSpec};
use ms_workloads::Scale;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    spec: SweepSpec,
    opts: SweepOptions,
    out_dir: PathBuf,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mssweep [--workloads a,b,c] [--scale test|full] [--widths 1,2] \
         [--units 4,8] [--order inorder|ooo|both] [--partition AXES|none]... \
         [--jobs N] [--out-dir DIR] [--cache-dir DIR] [--no-cache] [--metrics] \
         [--cpi] [--quiet]\n       mssweep --list"
    );
    std::process::exit(2);
}

fn parse_list<T: std::str::FromStr>(flag: &str, v: &str) -> Vec<T> {
    let parsed: Vec<T> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    if parsed.is_empty() || parsed.len() != v.split(',').count() {
        eprintln!("{flag}: cannot parse `{v}` as a comma-separated list");
        usage();
    }
    parsed
}

fn parse_args() -> Args {
    let mut spec = SweepSpec::tables34(Scale::Full);
    let mut jobs = 0usize;
    let mut out_dir = PathBuf::from("mssweep-out");
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut metrics = false;
    let mut cpi = false;
    let mut quiet = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--list" => {
                for w in ms_workloads::suite(Scale::Test) {
                    println!("{:<12} {}", w.name, w.description);
                }
                std::process::exit(0);
            }
            "--workloads" => {
                spec.workloads =
                    value("--workloads").split(',').map(|s| s.trim().to_string()).collect();
            }
            "--scale" => {
                spec.scale = Scale::parse(&value("--scale")).unwrap_or_else(|| {
                    eprintln!("--scale must be `test` or `full`");
                    usage()
                });
            }
            "--widths" => spec.widths = parse_list("--widths", &value("--widths")),
            "--partition" => {
                // Normalize to the policy's stable key so equivalent
                // spellings (`size=8` vs `loops=1,size=8`) share one
                // design point and one cache entry.
                let axes = value("--partition");
                spec.partitions.push(if axes == "none" {
                    None
                } else {
                    match ms_cfg::PartitionPolicy::parse(&axes) {
                        Ok(p) => Some(p.stable_key()),
                        Err(e) => {
                            eprintln!("--partition: {e}");
                            usage();
                        }
                    }
                });
            }
            "--units" => spec.unit_counts = parse_list("--units", &value("--units")),
            "--order" => {
                spec.orders = match value("--order").as_str() {
                    "inorder" => vec![false],
                    "ooo" => vec![true],
                    "both" => vec![false, true],
                    other => {
                        eprintln!("--order must be inorder|ooo|both, got `{other}`");
                        usage();
                    }
                };
            }
            "--jobs" => {
                jobs = value("--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a non-negative integer (0 = all cores)");
                    usage()
                });
            }
            "--out-dir" => out_dir = PathBuf::from(value("--out-dir")),
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            "--no-cache" => no_cache = true,
            "--metrics" => metrics = true,
            "--cpi" => cpi = true,
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let cache = if no_cache {
        SweepCache::disabled()
    } else {
        match cache_dir {
            Some(dir) => SweepCache::at(dir),
            None => SweepCache::from_env(),
        }
    };
    let opts = SweepOptions {
        jobs,
        cache,
        progress: !quiet,
        metrics_dir: metrics.then(|| out_dir.join("metrics")),
        cpi,
    };
    Args { spec, opts, out_dir, quiet }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }
    // Validate the cache directory up front (creating it if missing):
    // a bad --cache-dir is one structured startup error naming the
    // path, not a warning repeated on every job. msserve does the same.
    if let Err(e) = args.opts.cache.ensure_ready() {
        eprintln!("mssweep: {e}");
        return ExitCode::FAILURE;
    }

    let njobs = args.spec.expand().len();
    if !args.quiet {
        let workers = args.opts.worker_count(njobs);
        let cache_note = match args.opts.cache.dir() {
            Some(d) => format!("cache {}", d.display()),
            None => "cache disabled".to_string(),
        };
        eprintln!("mssweep: {njobs} jobs on {workers} workers ({cache_note})");
    }

    let started = Instant::now();
    let report = run_sweep(&args.spec, &args.opts);
    let elapsed = started.elapsed();

    let mut artifacts_written = Vec::new();
    let mut write = |name: &str, contents: String| -> bool {
        let path = args.out_dir.join(name);
        match artifacts::write_atomic(&path, contents.as_bytes()) {
            Ok(()) => {
                artifacts_written.push(path.display().to_string());
                true
            }
            Err(e) => {
                eprintln!("writing {}: {e}", path.display());
                false
            }
        }
    };

    let mut io_ok = write("results.json", artifacts::results_json(&report));
    io_ok &= write("results.csv", artifacts::results_csv(&report));

    // Assemble Table 3/4 rows for whichever orders the sweep covered and
    // whose points all succeeded; a partial sweep still yields the rest.
    let mut table_rows = Vec::new();
    if report.failures().next().is_none() && args.spec.include_scalar {
        for &ooo in &args.spec.orders {
            if let Ok(rows) = rows_from_sweep(&report, ooo) {
                table_rows.push((ooo, rows));
            }
        }
    }
    if !table_rows.is_empty() {
        let find =
            |ooo: bool| table_rows.iter().find(|(o, _)| *o == ooo).map(|(_, rows)| rows.as_slice());
        io_ok &= write("BENCH_tables.json", tables_to_json(find(false), find(true)));
        for (ooo, rows) in &table_rows {
            println!("{}", render_table34(rows, *ooo));
        }
    }

    let failed = report.failures().count();
    println!(
        "sweep: {} jobs, {} executed, {} cached, {failed} failed in {:.2}s",
        report.total(),
        report.executed,
        report.cache_hits,
        elapsed.as_secs_f64(),
    );
    for f in report.failures() {
        eprintln!("FAILED {f}");
    }
    for path in &artifacts_written {
        println!("wrote {path}");
    }

    if failed > 0 || !io_ok {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
