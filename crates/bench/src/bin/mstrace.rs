//! Traced workload runner: executes one named workload on the multiscalar
//! processor with the full trace layer attached and writes machine-readable
//! artifacts.
//!
//! ```text
//! cargo run --release -p ms-bench --bin mstrace -- <workload> \
//!     [--units N] [--scale test|full] [--out-dir DIR] [--jsonl] [--list]
//! ```
//!
//! Outputs, under `--out-dir` (default `mstrace-out`):
//! * `trace.json`  — Chrome `trace_event` JSON: per-unit task timelines,
//!   squash-wave instants, ARB occupancy counter. Load in Perfetto or
//!   `chrome://tracing`.
//! * `report.json` — the [`ms_trace::MetricsReport`] (event-derived
//!   counters and histograms) next to the simulator's own `RunStats`
//!   and the run's CPI stack, after cross-checking that all three agree.
//! * `trace.jsonl` (with `--jsonl`) — one JSON object per trace event.
//!
//! The run always carries a live cycle accountant, and reconciliation
//! checks the resulting `CpiStack` three ways: the conservation
//! invariant (every unit-cycle in exactly one bucket), bucket-for-bucket
//! agreement with the event-derived `MetricsReport` stall counters for
//! every event-backed reason, and zero event counts for the
//! accountant-only buckets (`no_task`, `squash_recovery` — idle units
//! emit no `UnitStall` events). Exits non-zero with the exact
//! disagreements if any counter fails to reconcile — the trace layer,
//! the aggregate statistics, and the cycle-accounting layer are three
//! independent observers of one simulation and must never silently
//! diverge.

use ms_trace::{
    ChromeTraceSink, CpiStack, JsonLinesSink, MetricsReport, MetricsSink, StallReason, TeeSink,
};
use ms_workloads::Scale;
use multiscalar::{CpiAccountant, RunStats, SimConfig};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    workload: String,
    units: usize,
    scale: Scale,
    out_dir: PathBuf,
    jsonl: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mstrace <workload> [--units N] [--scale test|full] \
         [--out-dir DIR] [--jsonl]\n       mstrace --list"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut workload = None;
    let mut units = 8usize;
    let mut scale = Scale::Test;
    let mut out_dir = PathBuf::from("mstrace-out");
    let mut jsonl = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for w in ms_workloads::suite(Scale::Test) {
                    println!("{:<12} {}", w.name, w.description);
                }
                std::process::exit(0);
            }
            "--units" => {
                units = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or_else(
                    || {
                        eprintln!("--units needs a positive integer");
                        usage()
                    },
                );
            }
            "--scale" => {
                scale = match it.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!(
                            "--scale must be `test` or `full`, got `{}`",
                            other.unwrap_or("nothing")
                        );
                        usage();
                    }
                };
            }
            "--out-dir" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out-dir needs a path");
                    usage()
                }));
            }
            "--jsonl" => jsonl = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
            other => {
                if workload.replace(other.to_string()).is_some() {
                    eprintln!("more than one workload named");
                    usage();
                }
            }
        }
    }
    let Some(workload) = workload else { usage() };
    Args { workload, units, scale, out_dir, jsonl }
}

use ms_sweep::statsio::stats_to_json;

/// Cross-checks event-derived counters against the simulator's own
/// aggregates. Any disagreement means an instrumentation call-site is
/// missing or double-counting.
fn reconcile(m: &MetricsReport, s: &RunStats) -> Vec<String> {
    let icache_misses = m.icache_fetches - m.icache_hits;
    let desc_misses = m.descriptor_fetches - m.descriptor_hits;
    let pairs: &[(&str, u64, u64)] = &[
        ("tasks_retired", m.tasks_retired, s.tasks_retired),
        ("tasks_squashed", m.tasks_squashed, s.tasks_squashed),
        ("control_squash_waves", m.control_squash_waves, s.control_squashes),
        ("memory_squash_waves", m.memory_squash_waves, s.memory_squashes),
        ("arb_full_squash_waves", m.arb_full_squash_waves, s.arb_squashes),
        ("arb_loads", m.arb_loads, s.arb.loads),
        ("arb_stores", m.arb_stores, s.arb.stores),
        ("arb_forwarded_loads", m.arb_forwarded_loads, s.arb.load_forwards),
        ("arb_violations", m.arb_violations, s.arb.violations),
        ("arb_full_stalls", m.arb_full_stalls, s.arb.full_events),
        ("icache_fetches", m.icache_fetches, s.icache.accesses),
        ("icache_misses", icache_misses, s.icache.misses),
        ("descriptor_fetches", m.descriptor_fetches, s.descriptor_cache.0),
        ("descriptor_misses", desc_misses, s.descriptor_cache.1),
        ("task_len_instrs.sum", m.task_len_instrs.sum(), s.instructions),
    ];
    let mut mismatches: Vec<String> = pairs
        .iter()
        .filter(|(_, ev, st)| ev != st)
        .map(|(name, ev, st)| format!("{name}: events say {ev}, RunStats says {st}"))
        .collect();

    match &s.cpi {
        None => mismatches.push("cpi: accountant produced no CpiStack".to_string()),
        Some(cpi) => mismatches.extend(reconcile_cpi(m, cpi)),
    }
    mismatches
}

/// Cross-checks the cycle-accounting stack against the event-derived
/// stall counters. Every stall reason a unit can report while holding a
/// task is event-backed — the accountant and the `UnitStall` stream
/// observe the same per-cycle classification, so their per-reason totals
/// must be identical. `no_task` and `squash_recovery` are charged only
/// by the accountant (an unoccupied unit emits no events), so their
/// event counts must be zero.
fn reconcile_cpi(m: &MetricsReport, cpi: &CpiStack) -> Vec<String> {
    let mut out = Vec::new();
    if !cpi.conservation_holds() {
        out.push(format!(
            "cpi conservation: accounted {} of {} unit-cycles",
            cpi.accounted_unit_cycles(),
            cpi.total_unit_cycles()
        ));
    }
    for r in StallReason::ALL {
        let acct = cpi.stall_cycles[r.index()];
        let ev = m.stall_cycles[r.index()];
        let accountant_only = matches!(r, StallReason::NoTask | StallReason::SquashRecovery);
        let expected_ev = if accountant_only { 0 } else { acct };
        if ev != expected_ev {
            out.push(format!(
                "cpi.{}: events say {ev}, accountant says {acct}{}",
                r.as_str(),
                if accountant_only { " (accountant-only bucket; events must be 0)" } else { "" }
            ));
        }
    }
    out
}

fn write_report(
    path: &Path,
    args: &Args,
    stats: &RunStats,
    metrics: &MetricsReport,
    mismatches: &[String],
) -> io::Result<()> {
    let mut f = BufWriter::new(File::create(path)?);
    let scale = match args.scale {
        Scale::Test => "test",
        Scale::Full => "full",
    };
    write!(
        f,
        "{{\"workload\":\"{}\",\"units\":{},\"scale\":\"{scale}\",\"reconciled\":{},",
        args.workload.to_ascii_lowercase(),
        args.units,
        mismatches.is_empty(),
    )?;
    write!(f, "\"stats\":{},", stats_to_json(stats))?;
    if let Some(cpi) = &stats.cpi {
        write!(f, "\"cpi\":{},", cpi.to_json())?;
    }
    write!(f, "\"metrics\":{}}}", metrics.to_json())?;
    f.flush()
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(w) = ms_workloads::by_name(&args.workload, args.scale) else {
        eprintln!("unknown workload `{}`; try --list", args.workload);
        return ExitCode::from(2);
    };

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }
    let trace_path = args.out_dir.join("trace.json");
    let report_path = args.out_dir.join("report.json");
    let jsonl_path = args.out_dir.join("trace.jsonl");

    let chrome_writer = match File::create(&trace_path) {
        Ok(f) => BufWriter::new(f),
        Err(e) => {
            eprintln!("cannot create {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
    };
    let jsonl_writer: Box<dyn Write> = if args.jsonl {
        match File::create(&jsonl_path) {
            Ok(f) => Box::new(BufWriter::new(f)),
            Err(e) => {
                eprintln!("cannot create {}: {e}", jsonl_path.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        Box::new(io::sink())
    };

    let sink = TeeSink(
        MetricsSink::new(),
        TeeSink(ChromeTraceSink::new(chrome_writer), JsonLinesSink::new(jsonl_writer)),
    );

    let cfg = SimConfig::multiscalar(args.units);
    let (stats, sink) = match w.run_multiscalar_instrumented(cfg, sink, CpiAccountant::new()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: {e}", w.name);
            return ExitCode::FAILURE;
        }
    };
    let TeeSink(metrics_sink, TeeSink(chrome, jsonl)) = sink;
    let metrics = metrics_sink.into_report();

    let (_, chrome_err) = chrome.into_inner();
    if let Some(e) = chrome_err {
        eprintln!("writing {}: {e}", trace_path.display());
        return ExitCode::FAILURE;
    }
    let (_, jsonl_err) = jsonl.into_inner();
    if let Some(e) = jsonl_err {
        eprintln!("writing {}: {e}", jsonl_path.display());
        return ExitCode::FAILURE;
    }

    let mismatches = reconcile(&metrics, &stats);
    if let Err(e) = write_report(&report_path, &args, &stats, &metrics, &mismatches) {
        eprintln!("writing {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }

    println!(
        "{}: {} cycles, {} instructions (IPC {:.3}), {} tasks retired, {} squashed",
        w.name,
        stats.cycles,
        stats.instructions,
        stats.ipc(),
        stats.tasks_retired,
        stats.tasks_squashed
    );
    println!("wrote {}", trace_path.display());
    if args.jsonl {
        println!("wrote {}", jsonl_path.display());
    }
    println!("wrote {}", report_path.display());

    if mismatches.is_empty() {
        println!("reconciliation: event counters match RunStats and the CPI stack conserves");
        ExitCode::SUCCESS
    } else {
        eprintln!("reconciliation FAILED:");
        for m in &mismatches {
            eprintln!("  {m}");
        }
        ExitCode::FAILURE
    }
}
