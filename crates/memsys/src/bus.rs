//! The split-transaction memory bus.
//!
//! Paper Section 5.1: "All memory requests are handled by a single 4-word
//! split transaction memory bus. Each memory access requires a 10 cycle
//! access latency for the first 4 words and 1 cycle for each additional 4
//! words."
//!
//! The bus is modelled analytically: a request made at cycle `now` for `n`
//! words is serialized behind earlier transactions and returns its absolute
//! completion cycle. This captures contention exactly for a single
//! in-order bus without per-cycle simulation.

/// Configuration of the memory bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BusConfig {
    /// Cycles for the first 4-word beat.
    pub first_beat: u64,
    /// Cycles for each additional 4-word beat.
    pub extra_beat: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig { first_beat: 10, extra_beat: 1 }
    }
}

/// Statistics for the bus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transactions issued.
    pub transactions: u64,
    /// Cycles the bus was occupied.
    pub busy_cycles: u64,
    /// Total cycles transactions waited behind earlier ones.
    pub contention_cycles: u64,
}

/// The single shared memory bus.
#[derive(Clone, Debug, Default)]
pub struct MemBus {
    cfg: BusConfig,
    free_at: u64,
    stats: BusStats,
}

impl MemBus {
    /// A bus with the paper's timing.
    pub fn new(cfg: BusConfig) -> MemBus {
        MemBus { cfg, free_at: 0, stats: BusStats::default() }
    }

    /// Issues a transfer of `words` 32-bit words at cycle `now`; returns
    /// the absolute cycle at which the transfer completes.
    pub fn request(&mut self, now: u64, words: u32) -> u64 {
        let beats = (words.max(1)).div_ceil(4) as u64;
        let duration = self.cfg.first_beat + (beats - 1) * self.cfg.extra_beat;
        let start = self.free_at.max(now);
        self.stats.transactions += 1;
        self.stats.contention_cycles += start - now;
        self.stats.busy_cycles += duration;
        self.free_at = start + duration;
        self.free_at
    }

    /// [`MemBus::request`] with trace instrumentation: emits a
    /// [`TraceEvent::BusRequest`](ms_trace::TraceEvent::BusRequest) recording queueing delay and completion.
    pub fn request_traced<S: ms_trace::TraceSink>(
        &mut self,
        now: u64,
        words: u32,
        sink: &mut S,
    ) -> u64 {
        let waited = self.free_at.saturating_sub(now);
        let done = self.request(now, words);
        if S::ENABLED {
            sink.event(&ms_trace::TraceEvent::BusRequest { cycle: now, words, waited, done });
        }
        done
    }

    /// The first cycle at which the bus is idle.
    ///
    /// Read on the skip-ahead probe path (DESIGN.md §13) as one of the
    /// bounds on a quiet span, so it must stay a trivial accessor.
    #[inline]
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_timing_matches_paper() {
        let mut bus = MemBus::new(BusConfig::default());
        // 4 words: 10 cycles.
        assert_eq!(bus.request(0, 4), 10);
        // 16 words (a 64-byte block): 10 + 3.
        assert_eq!(bus.request(100, 16), 113);
    }

    #[test]
    fn back_to_back_requests_serialize() {
        let mut bus = MemBus::new(BusConfig::default());
        assert_eq!(bus.request(0, 16), 13);
        // Issued while the first is in flight: waits.
        assert_eq!(bus.request(1, 16), 26);
        assert_eq!(bus.stats().contention_cycles, 12);
        assert_eq!(bus.stats().transactions, 2);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut bus = MemBus::new(BusConfig::default());
        bus.request(0, 4);
        assert_eq!(bus.request(50, 4), 60);
        assert_eq!(bus.stats().contention_cycles, 0);
    }

    #[test]
    fn zero_word_request_counts_one_beat() {
        let mut bus = MemBus::new(BusConfig::default());
        assert_eq!(bus.request(0, 0), 10);
    }
}
