//! The Address Resolution Buffer (ARB).
//!
//! Franklin & Sohi's ARB (paper Section 2.3) holds the speculative memory
//! operations of all active tasks: "the values corresponding to these
//! operations reside in the ARB and update the data cache as their status
//! changes from speculative to non-speculative. In addition to providing
//! storage for speculative operations, the ARB tracks the units which
//! performed the operations with load and store bits. A memory dependence
//! violation is detected by checking these bits (if a load from a
//! successor unit occurred before a store from a predecessor unit, a
//! memory dependence was violated)."
//!
//! This implementation tracks state at byte granularity within 8-byte
//! lines, one *stage* per processing unit:
//!
//! * a **load** gathers each byte from the nearest predecessor stage (in
//!   task order) holding a speculative store to it, else from memory, and
//!   sets the stage's load bit for bytes not satisfied by the task's own
//!   stores;
//! * a **store** records its bytes and reports every successor stage whose
//!   recorded loads overlap the stored bytes without an intervening store
//!   — those tasks consumed stale values and must be squashed;
//! * **retiring** a task drains its stores to memory; **squashing** a task
//!   discards its stage wholesale.
//!
//! Lines are interleaved across banks of bounded capacity; allocations
//! beyond capacity fail for speculative stages (the caller stalls the
//! unit), while the head stage may always allocate — "the head which does
//! not require ARB storage is not squashed" and must always make progress.

use crate::mem::Memory;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic multiplicative hasher for the 4-byte line keys.
///
/// SipHash (the `HashMap` default) costs more than the rest of an ARB
/// probe for keys this small. Line numbers are dense and sequential-ish;
/// a Fibonacci multiply plus a fold of the high bits spreads them well,
/// and the simulator never depends on map iteration order (drains sort,
/// dependence checks walk stages by rank).
#[derive(Clone, Copy, Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        let h = (self.0 ^ v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type Bank = HashMap<u32, Entry, BuildHasherDefault<LineHasher>>;

/// Error returned when a speculative access cannot allocate ARB space.
///
/// The caller should stall the issuing (non-head) unit and retry; this is
/// the paper's "less drastic alternative" to squashing on ARB overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbFull {
    /// The bank that was full.
    pub bank: usize,
}

impl fmt::Display for ArbFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ARB bank {} is full", self.bank)
    }
}

impl std::error::Error for ArbFull {}

/// Statistics accumulated by the ARB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbStats {
    /// Loads processed.
    pub loads: u64,
    /// Stores processed.
    pub stores: u64,
    /// Loads that obtained at least one byte from a predecessor's
    /// speculative store (memory renaming / forwarding).
    pub load_forwards: u64,
    /// Memory-order violations detected.
    pub violations: u64,
    /// Allocation failures (bank full).
    pub full_events: u64,
    /// Peak entries resident in any single bank.
    pub peak_bank_occupancy: usize,
}

#[derive(Clone, Default)]
struct StageState {
    load_mask: u8,
    store_mask: u8,
    bytes: [u8; 8],
}

impl StageState {
    fn is_empty(&self) -> bool {
        self.load_mask == 0 && self.store_mask == 0
    }
}

struct Entry {
    stages: Box<[StageState]>,
}

/// The Address Resolution Buffer.
pub struct Arb {
    nstages: usize,
    capacity_per_bank: usize,
    /// Temporary capacity-pressure cap (chaos injection); `None` in
    /// normal operation.
    pressure_cap: Option<usize>,
    head: usize,
    banks: Vec<Bank>,
    stats: ArbStats,
}

/// The result of an ARB load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadResult {
    /// The loaded value (zero-extended little-endian bytes).
    pub value: u64,
    /// Whether any byte was forwarded from a speculative store.
    pub forwarded: bool,
}

impl Arb {
    /// Builds an ARB with one stage per processing unit, `nbanks` banks of
    /// `capacity_per_bank` 8-byte lines each (the paper uses 256 per
    /// bank).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nstages: usize, nbanks: usize, capacity_per_bank: usize) -> Arb {
        assert!(nstages > 0 && nbanks > 0 && capacity_per_bank > 0);
        Arb {
            nstages,
            capacity_per_bank,
            pressure_cap: None,
            head: 0,
            banks: (0..nbanks).map(|_| Bank::default()).collect(),
            stats: ArbStats::default(),
        }
    }

    /// Applies (or with `None` lifts) a temporary capacity-pressure cap
    /// on entries per bank (chaos injection). The effective capacity
    /// never drops below 1, and the head stage may always allocate, so
    /// the Stall overflow policy cannot deadlock under pressure.
    pub fn set_capacity_pressure(&mut self, cap: Option<usize>) {
        self.pressure_cap = cap;
    }

    /// The bank capacity currently in force.
    fn effective_capacity(&self) -> usize {
        match self.pressure_cap {
            Some(cap) => self.capacity_per_bank.min(cap).max(1),
            None => self.capacity_per_bank,
        }
    }

    /// Number of stages (processing units).
    pub fn stages(&self) -> usize {
        self.nstages
    }

    /// Sets which stage is the current head task.
    pub fn set_head(&mut self, head: usize) {
        assert!(head < self.nstages);
        self.head = head;
    }

    /// Task-order rank of `stage` (0 = head).
    fn rank(&self, stage: usize) -> usize {
        (stage + self.nstages - self.head) % self.nstages
    }

    fn bank_of(&self, line: u32) -> usize {
        // Lines are 8 bytes; banks are interleaved at 64-byte cache-block
        // granularity, matching `DataBanks::bank_of`.
        ((line >> 3) as usize) % self.banks.len()
    }

    /// Bytes a size-`n` access at `addr` touches within each 8-byte line.
    ///
    /// Yields `(line, byte_mask, first_byte_offset_within_access)`. An
    /// access of at most 8 bytes covers at most two lines, so this is a
    /// fixed-size, allocation-free iterator — it sits on the path of
    /// every simulated load and store.
    fn split(addr: u32, size: u32) -> impl Iterator<Item = (u32, u8, u32)> {
        let mut pieces = [(0u32, 0u8, 0u32); 2];
        let mut n = 0;
        let mut a = addr;
        let end = addr + size;
        while a < end {
            let line = a >> 3;
            let line_end = (line + 1) << 3;
            let chunk_end = end.min(line_end);
            let mut mask = 0u8;
            for b in a..chunk_end {
                mask |= 1 << (b & 7);
            }
            pieces[n] = (line, mask, a - addr);
            n += 1;
            a = chunk_end;
        }
        pieces.into_iter().take(n)
    }

    /// Ensures an entry exists for `line`, respecting bank capacity.
    /// The head stage may always allocate. One hash probe on the common
    /// (not-at-capacity) path.
    fn entry_mut(&mut self, line: u32, stage: usize) -> Result<&mut Entry, ArbFull> {
        let bank = self.bank_of(line);
        let at_head = self.rank(stage) == 0;
        let nstages = self.nstages;
        let capacity = self.effective_capacity();
        let stats = &mut self.stats;
        let map = &mut self.banks[bank];
        if !at_head && map.len() >= capacity && !map.contains_key(&line) {
            stats.full_events += 1;
            return Err(ArbFull { bank });
        }
        let len_before = map.len();
        let mut inserted = false;
        let entry = map.entry(line).or_insert_with(|| {
            inserted = true;
            Entry { stages: vec![StageState::default(); nstages].into_boxed_slice() }
        });
        let occ = len_before + inserted as usize;
        if occ > stats.peak_bank_occupancy {
            stats.peak_bank_occupancy = occ;
        }
        Ok(entry)
    }

    /// Performs a speculative load of `size` bytes at `addr` by `stage`.
    ///
    /// # Errors
    /// Returns [`ArbFull`] when the load must record a load bit but its
    /// bank is full (never for the head stage).
    ///
    /// # Panics
    /// Panics if `size` is 0 or greater than 8, or `stage` out of range.
    pub fn load(
        &mut self,
        stage: usize,
        addr: u32,
        size: u32,
        mem: &Memory,
    ) -> Result<LoadResult, ArbFull> {
        assert!(stage < self.nstages, "stage {stage} out of range");
        assert!((1..=8).contains(&size), "load size {size}");
        let my_rank = self.rank(stage);
        let mut value = 0u64;
        let mut forwarded = false;

        // First pass: make sure all needed entries can be allocated before
        // mutating any state (avoids partial effects on ArbFull).
        if my_rank != 0 {
            let capacity = self.effective_capacity();
            for (line, _, _) in Self::split(addr, size) {
                let bank = self.bank_of(line);
                if !self.banks[bank].contains_key(&line) && self.banks[bank].len() >= capacity {
                    self.stats.full_events += 1;
                    return Err(ArbFull { bank });
                }
            }
        } else if Self::split(addr, size)
            .all(|(line, _, _)| !self.banks[self.bank_of(line)].contains_key(&line))
        {
            // Head fast path: the head records no load bits, so with no
            // ARB entry on any touched line the whole access is a plain
            // memory read — the common case for non-speculative traffic.
            self.stats.loads += 1;
            return Ok(LoadResult { value: mem.read_le(addr, size), forwarded: false });
        }

        for (line, mask, _chunk_off) in Self::split(addr, size) {
            let bank = self.bank_of(line);
            let entry = self.banks[bank].get(&line);

            // No ARB entry covers this line: every byte comes straight
            // from memory, in one contiguous chunk (split masks are
            // contiguous), so a single table walk serves it.
            if entry.is_none() && my_rank == 0 {
                let base = (line << 3) | mask.trailing_zeros();
                value |= mem.read_le(base, mask.count_ones()) << (8 * (base - addr));
                continue;
            }

            // Resolve bytes by scanning ranks nearest-first as bit masks:
            // each stage claims whatever still-unresolved bytes its store
            // mask covers, exactly reproducing the per-byte
            // "nearest store at or before our rank" rule.
            let mut remaining = mask;
            let mut from_own = 0u8;
            if let Some(e) = entry {
                for back in 0..=my_rank {
                    if remaining == 0 {
                        break;
                    }
                    let r = my_rank - back;
                    let s = (self.head + r) % self.nstages;
                    let st = &e.stages[s];
                    let hit = st.store_mask & remaining;
                    if hit != 0 {
                        if back == 0 {
                            from_own = hit;
                        } else {
                            forwarded = true;
                        }
                        let mut h = hit;
                        while h != 0 {
                            let bit = h.trailing_zeros();
                            h &= h - 1;
                            let global_addr = (line << 3) | bit;
                            value |= (st.bytes[bit as usize] as u64) << (8 * (global_addr - addr));
                        }
                        remaining &= !hit;
                    }
                }
            }
            let mut h = remaining;
            while h != 0 {
                let bit = h.trailing_zeros();
                h &= h - 1;
                let global_addr = (line << 3) | bit;
                value |= (mem.read_u8(global_addr) as u64) << (8 * (global_addr - addr));
            }
            // Every byte not supplied by our own store records a load bit
            // (the violation-detection footprint); the head never does.
            if my_rank != 0 {
                let need_load_bits = mask & !from_own;
                if need_load_bits != 0 {
                    let e = self.entry_mut(line, stage)?;
                    e.stages[stage].load_mask |= need_load_bits;
                }
            }
        }
        self.stats.loads += 1;
        if forwarded {
            self.stats.load_forwards += 1;
        }
        Ok(LoadResult { value, forwarded })
    }

    /// Performs a speculative store of the low `size` bytes of `value` at
    /// `addr` by `stage`. Returns the stages (unit indices) whose earlier
    /// loads are violated by this store, in task order from earliest.
    ///
    /// # Errors
    /// Returns [`ArbFull`] when a line cannot be allocated (never for the
    /// head stage).
    ///
    /// # Panics
    /// Panics if `size` is 0 or greater than 8, or `stage` out of range.
    pub fn store(
        &mut self,
        stage: usize,
        addr: u32,
        size: u32,
        value: u64,
        active_ranks: usize,
    ) -> Result<Vec<usize>, ArbFull> {
        assert!(stage < self.nstages, "stage {stage} out of range");
        assert!((1..=8).contains(&size), "store size {size}");
        let my_rank = self.rank(stage);

        // Pre-check allocations.
        let capacity = self.effective_capacity();
        for (line, _, _) in Self::split(addr, size) {
            let bank = self.bank_of(line);
            if !self.banks[bank].contains_key(&line)
                && self.banks[bank].len() >= capacity
                && my_rank != 0
            {
                self.stats.full_events += 1;
                return Err(ArbFull { bank });
            }
        }

        let mut violated: Vec<usize> = Vec::new();
        for (line, mask, _) in Self::split(addr, size) {
            let head = self.head;
            let nstages = self.nstages;
            let e = self.entry_mut(line, stage)?;
            // Record the store bytes.
            for bit in 0..8u8 {
                if mask & (1 << bit) == 0 {
                    continue;
                }
                let global_addr = (line << 3) | bit as u32;
                let byte_index = global_addr - addr;
                e.stages[stage].bytes[bit as usize] = (value >> (8 * byte_index)) as u8;
                e.stages[stage].store_mask |= 1 << bit;
            }
            // Check successor loads: a successor's load bit on a byte we
            // just stored means it read a stale value, unless a store by a
            // strictly intervening task supplied that byte.
            for succ_rank in my_rank + 1..active_ranks {
                let s = (head + succ_rank) % nstages;
                let overlap = e.stages[s].load_mask & mask;
                if overlap == 0 {
                    continue;
                }
                let mut covered = 0u8;
                for mid_rank in my_rank + 1..succ_rank {
                    let m = (head + mid_rank) % nstages;
                    covered |= e.stages[m].store_mask;
                }
                if overlap & !covered != 0 && !violated.contains(&s) {
                    violated.push(s);
                }
            }
        }
        self.stats.stores += 1;
        if !violated.is_empty() {
            self.stats.violations += 1;
            let head = self.head;
            let n = self.nstages;
            violated.sort_by_key(|&s| (s + n - head) % n);
        }
        Ok(violated)
    }

    /// [`Arb::load`] with trace instrumentation: emits an `ArbLoad` on
    /// success (noting forwarding) or an `ArbFullStall` on allocation
    /// failure, timestamped `now`.
    pub fn load_traced<S: ms_trace::TraceSink>(
        &mut self,
        now: u64,
        stage: usize,
        addr: u32,
        size: u32,
        mem: &Memory,
        sink: &mut S,
    ) -> Result<LoadResult, ArbFull> {
        let result = self.load(stage, addr, size, mem);
        if S::ENABLED {
            match &result {
                Ok(r) => sink.event(&ms_trace::TraceEvent::ArbLoad {
                    cycle: now,
                    unit: stage,
                    addr,
                    size,
                    forwarded: r.forwarded,
                }),
                Err(_) => sink.event(&ms_trace::TraceEvent::ArbFullStall {
                    cycle: now,
                    unit: stage,
                    addr,
                    is_store: false,
                }),
            }
        }
        result
    }

    /// [`Arb::store`] with trace instrumentation: emits an `ArbStore` on
    /// success plus one `ArbViolation` per squash-worthy stage, or an
    /// `ArbFullStall` on allocation failure, timestamped `now`.
    #[allow(clippy::too_many_arguments)] // mirrors `store` plus (now, sink)
    pub fn store_traced<S: ms_trace::TraceSink>(
        &mut self,
        now: u64,
        stage: usize,
        addr: u32,
        size: u32,
        value: u64,
        active_ranks: usize,
        sink: &mut S,
    ) -> Result<Vec<usize>, ArbFull> {
        let result = self.store(stage, addr, size, value, active_ranks);
        if S::ENABLED {
            match &result {
                Ok(violated) => {
                    sink.event(&ms_trace::TraceEvent::ArbStore {
                        cycle: now,
                        unit: stage,
                        addr,
                        size,
                        violated: !violated.is_empty(),
                    });
                    for &v in violated {
                        sink.event(&ms_trace::TraceEvent::ArbViolation {
                            cycle: now,
                            store_unit: stage,
                            violated_unit: v,
                            addr,
                        });
                    }
                }
                Err(_) => sink.event(&ms_trace::TraceEvent::ArbFullStall {
                    cycle: now,
                    unit: stage,
                    addr,
                    is_store: true,
                }),
            }
        }
        result
    }

    /// Clears all ARB state for `stage` (task squashed). Entries that
    /// become empty are reclaimed.
    pub fn free_stage(&mut self, stage: usize) {
        assert!(stage < self.nstages);
        for bank in &mut self.banks {
            bank.retain(|_, e| {
                e.stages[stage] = StageState::default();
                e.stages.iter().any(|s| !s.is_empty())
            });
        }
    }

    /// Drains `stage`'s speculative stores to memory (task retired) and
    /// clears the stage. Returns the 8-byte-line addresses written, for
    /// the caller's cache/bandwidth modelling.
    pub fn drain_stage(&mut self, stage: usize, mem: &mut Memory) -> Vec<u32> {
        assert!(stage < self.nstages);
        let mut lines = Vec::new();
        for bank in &mut self.banks {
            bank.retain(|&line, e| {
                let st = &mut e.stages[stage];
                if st.store_mask != 0 {
                    for bit in 0..8u8 {
                        if st.store_mask & (1 << bit) != 0 {
                            mem.write_u8((line << 3) | bit as u32, st.bytes[bit as usize]);
                        }
                    }
                    lines.push(line << 3);
                }
                *st = StageState::default();
                e.stages.iter().any(|s| !s.is_empty())
            });
        }
        // Deterministic drain order regardless of hash-map iteration.
        lines.sort_unstable();
        lines
    }

    /// Entries currently resident in `bank`.
    pub fn occupancy(&self, bank: usize) -> usize {
        self.banks[bank].len()
    }

    /// Total entries across banks.
    pub fn total_occupancy(&self) -> usize {
        self.banks.iter().map(HashMap::len).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ArbStats {
        self.stats
    }
}

impl fmt::Debug for Arb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arb")
            .field("stages", &self.nstages)
            .field("banks", &self.banks.len())
            .field("head", &self.head)
            .field("occupancy", &self.total_occupancy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb4() -> (Arb, Memory) {
        (Arb::new(4, 2, 256), Memory::new())
    }

    #[test]
    fn load_reads_memory_when_no_stores() {
        let (mut arb, mut mem) = arb4();
        mem.write_le(0x100, 4, 0xdead_beef);
        let r = arb.load(1, 0x100, 4, &mem).unwrap();
        assert_eq!(r.value, 0xdead_beef);
        assert!(!r.forwarded);
    }

    #[test]
    fn store_forwards_to_successor_load() {
        let (mut arb, mem) = arb4();
        // Task order: unit0 (head) stores, unit1 loads.
        arb.store(0, 0x100, 4, 0x1234_5678, 2).unwrap();
        let r = arb.load(1, 0x100, 4, &mem).unwrap();
        assert_eq!(r.value, 0x1234_5678);
        assert!(r.forwarded);
        assert_eq!(arb.stats().load_forwards, 1);
    }

    #[test]
    fn own_store_beats_predecessor_store() {
        let (mut arb, mem) = arb4();
        arb.store(0, 0x100, 4, 0xaaaa_aaaa, 2).unwrap();
        arb.store(1, 0x100, 4, 0xbbbb_bbbb, 2).unwrap();
        let r = arb.load(1, 0x100, 4, &mem).unwrap();
        assert_eq!(r.value, 0xbbbb_bbbb);
    }

    #[test]
    fn late_store_detects_violation() {
        let (mut arb, mem) = arb4();
        // Successor (unit 2) loads first...
        let r = arb.load(2, 0x200, 4, &mem).unwrap();
        assert_eq!(r.value, 0);
        // ...then predecessor (unit 0 = head) stores: violation of unit 2.
        let v = arb.store(0, 0x200, 4, 7, 3).unwrap();
        assert_eq!(v, vec![2]);
        assert_eq!(arb.stats().violations, 1);
    }

    #[test]
    fn proper_order_is_not_a_violation() {
        let (mut arb, mem) = arb4();
        arb.store(0, 0x200, 4, 7, 3).unwrap();
        let r = arb.load(2, 0x200, 4, &mem).unwrap();
        assert_eq!(r.value, 7);
        // A later store by the head to a *different* address is fine.
        let v = arb.store(0, 0x300, 4, 9, 3).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn intervening_store_masks_violation() {
        let (mut arb, mem) = arb4();
        // Unit 1 stores, unit 2 loads (reads unit 1's value).
        arb.store(1, 0x80, 4, 42, 3).unwrap();
        let r = arb.load(2, 0x80, 4, &mem).unwrap();
        assert_eq!(r.value, 42);
        // Head (unit 0) now stores the same address: unit 2's load got its
        // value from unit 1, which intervenes — no violation.
        let v = arb.store(0, 0x80, 4, 7, 3).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // But unit 1's own read state: unit 1 never loaded, so nothing.
    }

    #[test]
    fn partial_byte_overlap_violates() {
        let (mut arb, mem) = arb4();
        let _ = arb.load(1, 0x102, 1, &mem).unwrap();
        // A 4-byte store covering 0x100..0x104 overlaps the loaded byte.
        let v = arb.store(0, 0x100, 4, 0xffff_ffff, 2).unwrap();
        assert_eq!(v, vec![1]);
    }

    #[test]
    fn own_load_after_own_store_sets_no_load_bit() {
        let (mut arb, mem) = arb4();
        arb.store(1, 0x100, 4, 5, 2).unwrap();
        let _ = arb.load(1, 0x100, 4, &mem).unwrap();
        // Head store should NOT violate unit 1: its load was satisfied by
        // its own store.
        let v = arb.store(0, 0x100, 4, 9, 2).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn head_loads_never_allocate() {
        let (mut arb, mem) = arb4();
        let _ = arb.load(0, 0x100, 4, &mem).unwrap();
        assert_eq!(arb.total_occupancy(), 0);
    }

    #[test]
    fn unaligned_access_spans_lines() {
        let (mut arb, mut mem) = arb4();
        mem.write_le(0x104, 8, 0x1122_3344_5566_7788);
        let r = arb.load(1, 0x104, 8, &mem).unwrap();
        assert_eq!(r.value, 0x1122_3344_5566_7788);
        // Store spanning two lines, then read back.
        arb.store(1, 0x104, 8, 0xaabb_ccdd_eeff_0011, 2).unwrap();
        let r = arb.load(2, 0x104, 8, &mem).unwrap();
        assert_eq!(r.value, 0xaabb_ccdd_eeff_0011);
    }

    #[test]
    fn drain_writes_memory_and_clears() {
        let (mut arb, mut mem) = arb4();
        arb.store(0, 0x100, 4, 0xcafe_f00d, 1).unwrap();
        let lines = arb.drain_stage(0, &mut mem);
        assert_eq!(lines, vec![0x100]);
        assert_eq!(mem.read_le(0x100, 4), 0xcafe_f00d);
        assert_eq!(arb.total_occupancy(), 0);
    }

    #[test]
    fn squash_discards_stores() {
        let (mut arb, mut mem) = arb4();
        arb.store(1, 0x100, 4, 0xbad, 2).unwrap();
        arb.free_stage(1);
        assert_eq!(arb.total_occupancy(), 0);
        let r = arb.load(2, 0x100, 4, &mem).unwrap();
        assert_eq!(r.value, 0);
        let _ = arb.drain_stage(1, &mut mem);
        assert_eq!(mem.read_le(0x100, 4), 0);
    }

    #[test]
    fn capacity_limits_speculative_stages_only() {
        let mut arb = Arb::new(2, 1, 2);
        // Fill the single bank (capacity 2 lines) from the speculative
        // stage 1.
        arb.store(1, 0x0, 4, 1, 2).unwrap();
        arb.store(1, 0x8, 4, 1, 2).unwrap();
        let e = arb.store(1, 0x10, 4, 1, 2).unwrap_err();
        assert_eq!(e.bank, 0);
        assert!(arb.stats().full_events >= 1);
        // The head may exceed capacity.
        arb.store(0, 0x10, 4, 1, 2).unwrap();
    }

    #[test]
    fn capacity_pressure_tightens_and_lifts() {
        let mut arb = Arb::new(2, 1, 4);
        arb.set_capacity_pressure(Some(1));
        arb.store(1, 0x0, 4, 1, 2).unwrap();
        // Second line exceeds the pressured capacity for a speculative
        // stage...
        assert!(arb.store(1, 0x8, 4, 1, 2).is_err());
        // ...but the head may always allocate.
        arb.store(0, 0x8, 4, 1, 2).unwrap();
        // Lifting the pressure restores the real capacity.
        arb.set_capacity_pressure(None);
        arb.store(1, 0x10, 4, 1, 2).unwrap();
        // A zero cap clamps to 1: existing lines remain usable.
        arb.set_capacity_pressure(Some(0));
        arb.store(1, 0x0, 4, 2, 2).unwrap();
    }

    #[test]
    fn rank_respects_head_rotation() {
        let (mut arb, mem) = arb4();
        arb.set_head(2); // task order: 2, 3, 0, 1
        let _ = arb.load(0, 0x40, 4, &mem).unwrap(); // rank 2
        let v = arb.store(3, 0x40, 4, 5, 4).unwrap(); // rank 1 < 2: violation
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn violations_sorted_in_task_order() {
        let (mut arb, mem) = arb4();
        let _ = arb.load(2, 0x40, 4, &mem).unwrap();
        let _ = arb.load(1, 0x40, 4, &mem).unwrap();
        let _ = arb.load(3, 0x40, 4, &mem).unwrap();
        let v = arb.store(0, 0x40, 4, 5, 4).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}

#[cfg(test)]
mod matrix_tests {
    //! Systematic load/store interleaving matrices across stages.
    use super::*;

    #[test]
    fn forwarding_prefers_nearest_predecessor() {
        let mut arb = Arb::new(4, 2, 256);
        let mem = Memory::new();
        arb.store(0, 0x40, 4, 0xaaaa, 4).unwrap();
        arb.store(1, 0x40, 4, 0xbbbb, 4).unwrap();
        arb.store(2, 0x40, 4, 0xcccc, 4).unwrap();
        // Stage 3 sees stage 2's value; stage 1 sees its own.
        assert_eq!(arb.load(3, 0x40, 4, &mem).unwrap().value, 0xcccc);
        assert_eq!(arb.load(1, 0x40, 4, &mem).unwrap().value, 0xbbbb);
        assert_eq!(arb.load(0, 0x40, 4, &mem).unwrap().value, 0xaaaa);
    }

    #[test]
    fn byte_merge_across_predecessors_and_memory() {
        let mut arb = Arb::new(4, 2, 256);
        let mut mem = Memory::new();
        mem.write_le(0x80, 8, 0x8877_6655_4433_2211);
        arb.store(0, 0x80, 2, 0xaabb, 3).unwrap(); // bytes 0-1 from head
        arb.store(1, 0x83, 1, 0xcc, 3).unwrap(); // byte 3 from stage 1
        let got = arb.load(2, 0x80, 8, &mem).unwrap();
        // bytes: [bb aa 33 cc 55 66 77 88]
        assert_eq!(got.value, 0x8877_6655_cc33_aabb);
        assert!(got.forwarded);
    }

    #[test]
    fn violation_matrix_over_all_loader_storer_pairs() {
        // For every (storer s, loader l) with s earlier than l: a load
        // before the store is a violation of l; a load after is not.
        for s in 0..3usize {
            for l in (s + 1)..4usize {
                // Load-before-store: violation.
                let mut arb = Arb::new(4, 2, 256);
                let mem = Memory::new();
                let _ = arb.load(l, 0x100, 4, &mem).unwrap();
                let v = arb.store(s, 0x100, 4, 1, 4).unwrap();
                assert_eq!(v, vec![l], "store@{s} load@{l}");

                // Store-before-load: clean.
                let mut arb = Arb::new(4, 2, 256);
                arb.store(s, 0x100, 4, 1, 4).unwrap();
                let r = arb.load(l, 0x100, 4, &mem).unwrap();
                assert_eq!(r.value, 1);
                let v = arb.store(s, 0x104, 4, 2, 4).unwrap();
                assert!(v.is_empty(), "store@{s} load@{l}");
            }
        }
    }

    #[test]
    fn retire_then_reuse_stage_is_clean() {
        let mut arb = Arb::new(2, 2, 256);
        let mut mem = Memory::new();
        arb.store(0, 0x20, 4, 111, 2).unwrap();
        arb.drain_stage(0, &mut mem);
        arb.set_head(1);
        // Unit 0 is reused by a later task (rank 1 now).
        arb.store(0, 0x20, 4, 222, 2).unwrap();
        let got = arb.load(0, 0x20, 4, &mem).unwrap();
        assert_eq!(got.value, 222);
        // Memory still holds the drained value.
        assert_eq!(mem.read_le(0x20, 4), 111);
    }

    #[test]
    fn disjoint_bytes_in_one_line_do_not_conflict() {
        let mut arb = Arb::new(4, 2, 256);
        let mem = Memory::new();
        let _ = arb.load(2, 0x104, 2, &mem).unwrap(); // bytes 4-5
        let v = arb.store(0, 0x100, 4, 0xffff_ffff, 3).unwrap(); // bytes 0-3
        assert!(v.is_empty(), "non-overlapping bytes must not violate");
    }

    #[test]
    fn drain_is_sorted_and_deterministic() {
        let mut arb = Arb::new(2, 4, 256);
        let mut mem = Memory::new();
        for &addr in &[0x300u32, 0x100, 0x200, 0x80] {
            arb.store(0, addr, 4, addr as u64, 1).unwrap();
        }
        let lines = arb.drain_stage(0, &mut mem);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn stats_track_forwards_and_violations() {
        let mut arb = Arb::new(4, 2, 256);
        let mem = Memory::new();
        arb.store(0, 0x10, 4, 9, 2).unwrap();
        let _ = arb.load(1, 0x10, 4, &mem).unwrap();
        let _ = arb.load(2, 0x500, 4, &mem).unwrap();
        let _ = arb.store(0, 0x500, 4, 3, 3).unwrap();
        let st = arb.stats();
        assert_eq!(st.loads, 2);
        assert_eq!(st.stores, 2);
        assert_eq!(st.load_forwards, 1);
        assert_eq!(st.violations, 1);
        assert!(st.peak_bank_occupancy >= 1);
    }
}
