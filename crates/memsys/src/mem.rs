//! Sparse byte-addressable backing memory.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A sparse, little-endian, byte-addressable memory.
///
/// Pages are allocated on first touch; unwritten bytes read as zero. This
/// holds only *architectural* (committed) state — speculative stores live
/// in the [`crate::Arb`] until their task retires.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = v;
    }

    /// Reads `n <= 8` bytes little-endian into a `u64` (zero-extended).
    ///
    /// # Panics
    /// Panics if `n > 8`.
    pub fn read_le(&self, addr: u32, n: u32) -> u64 {
        assert!(n <= 8, "read_le size {n} > 8");
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `v` little-endian.
    ///
    /// # Panics
    /// Panics if `n > 8`.
    pub fn write_le(&mut self, addr: u32, n: u32, v: u64) {
        assert!(n <= 8, "write_le size {n} > 8");
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_slice(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_vec(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i as u32))).collect()
    }

    /// Number of resident pages (for diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_le(0xdead_0000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = Memory::new();
        m.write_le(100, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_le(100, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(100), 0xef);
        assert_eq!(m.read_u8(107), 0x01);
        assert_eq!(m.read_le(100, 4), 0x89ab_cdef);
        m.write_le(100, 2, 0xffff);
        assert_eq!(m.read_le(100, 4), 0x89ab_ffff);
    }

    #[test]
    fn writes_span_page_boundaries() {
        let mut m = Memory::new();
        let addr = (1 << 12) - 3;
        m.write_le(addr, 8, u64::MAX);
        assert_eq!(m.read_le(addr, 8), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn slices_round_trip() {
        let mut m = Memory::new();
        m.write_slice(42, b"hello");
        assert_eq!(m.read_vec(42, 5), b"hello");
    }

    #[test]
    #[should_panic(expected = "read_le size")]
    fn oversized_read_panics() {
        Memory::new().read_le(0, 9);
    }
}
