//! Sparse byte-addressable backing memory.
//!
//! Layout: a two-level page table over the 32-bit address space — a
//! 1024-entry root indexed by `addr[31:22]`, pointing at 1024-entry
//! second-level tables indexed by `addr[21:12]`, pointing at 4 KiB
//! pages. Every access is two array indexes and a bounds check; no
//! hashing. This replaced a `HashMap<page_number, page>` design whose
//! per-byte hash lookups dominated the simulator's memory path (each
//! simulated load hashed up to 8 times).

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const L2_BITS: u32 = 10;
const L2_FANOUT: usize = 1 << L2_BITS;
const ROOT_FANOUT: usize = 1 << (32 - PAGE_BITS - L2_BITS);

type Page = Box<[u8; PAGE_SIZE]>;

/// A second-level table: 1024 lazily allocated 4 KiB pages (4 MiB of
/// address space).
#[derive(Clone, Debug)]
struct L2 {
    pages: [Option<Page>; L2_FANOUT],
}

impl L2 {
    fn new() -> Box<L2> {
        Box::new(L2 { pages: std::array::from_fn(|_| None) })
    }
}

#[inline]
fn root_idx(addr: u32) -> usize {
    (addr >> (PAGE_BITS + L2_BITS)) as usize
}

#[inline]
fn l2_idx(addr: u32) -> usize {
    ((addr >> PAGE_BITS) as usize) & (L2_FANOUT - 1)
}

#[inline]
fn page_off(addr: u32) -> usize {
    (addr as usize) & (PAGE_SIZE - 1)
}

/// A sparse, little-endian, byte-addressable memory.
///
/// Pages are allocated on first touch; unwritten bytes read as zero. This
/// holds only *architectural* (committed) state — speculative stores live
/// in the [`crate::Arb`] until their task retires.
#[derive(Clone, Debug)]
pub struct Memory {
    root: Vec<Option<Box<L2>>>,
    resident: usize,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory { root: (0..ROOT_FANOUT).map(|_| None).collect(), resident: 0 }
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.root[root_idx(addr)].as_ref()?.pages[l2_idx(addr)].as_deref()
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let l2 = self.root[root_idx(addr)].get_or_insert_with(L2::new);
        let slot = &mut l2.pages[l2_idx(addr)];
        if slot.is_none() {
            *slot = Some(Box::new([0u8; PAGE_SIZE]));
            self.resident += 1;
        }
        slot.as_mut().expect("just ensured")
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p[page_off(addr)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        let off = page_off(addr);
        self.page_mut(addr)[off] = v;
    }

    /// Reads `n <= 8` bytes little-endian into a `u64` (zero-extended).
    ///
    /// # Panics
    /// Panics if `n > 8`.
    #[inline]
    pub fn read_le(&self, addr: u32, n: u32) -> u64 {
        assert!(n <= 8, "read_le size {n} > 8");
        let off = page_off(addr);
        let n = n as usize;
        if off + n <= PAGE_SIZE {
            // Within one page: a single table walk.
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..n].copy_from_slice(&p[off..off + n]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..n as u32 {
                v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `n <= 8` bytes of `v` little-endian.
    ///
    /// # Panics
    /// Panics if `n > 8`.
    #[inline]
    pub fn write_le(&mut self, addr: u32, n: u32, v: u64) {
        assert!(n <= 8, "write_le size {n} > 8");
        let off = page_off(addr);
        let n = n as usize;
        if off + n <= PAGE_SIZE {
            self.page_mut(addr)[off..off + n].copy_from_slice(&v.to_le_bytes()[..n]);
        } else {
            for i in 0..n as u32 {
                self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
            }
        }
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_slice(&mut self, addr: u32, bytes: &[u8]) {
        let mut a = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = page_off(a);
            let take = (PAGE_SIZE - off).min(rest.len());
            self.page_mut(a)[off..off + take].copy_from_slice(&rest[..take]);
            rest = &rest[take..];
            a = a.wrapping_add(take as u32);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_vec(&self, addr: u32, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut a = addr;
        let mut remaining = len;
        while remaining > 0 {
            let off = page_off(a);
            let take = (PAGE_SIZE - off).min(remaining);
            match self.page(a) {
                Some(p) => out.extend_from_slice(&p[off..off + take]),
                None => out.resize(out.len() + take, 0),
            }
            remaining -= take;
            a = a.wrapping_add(take as u32);
        }
        out
    }

    /// Number of resident pages (for diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_le(0xdead_0000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = Memory::new();
        m.write_le(100, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_le(100, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(100), 0xef);
        assert_eq!(m.read_u8(107), 0x01);
        assert_eq!(m.read_le(100, 4), 0x89ab_cdef);
        m.write_le(100, 2, 0xffff);
        assert_eq!(m.read_le(100, 4), 0x89ab_ffff);
    }

    #[test]
    fn writes_span_page_boundaries() {
        let mut m = Memory::new();
        let addr = (1 << 12) - 3;
        m.write_le(addr, 8, u64::MAX);
        assert_eq!(m.read_le(addr, 8), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn accesses_span_l2_table_boundaries() {
        let mut m = Memory::new();
        // Last bytes of one 4 MiB region, first of the next: two pages
        // in *different* second-level tables.
        let addr = (1u32 << 22) - 4;
        m.write_le(addr, 8, 0xfedc_ba98_7654_3210);
        assert_eq!(m.read_le(addr, 8), 0xfedc_ba98_7654_3210);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn high_addresses_work() {
        let mut m = Memory::new();
        m.write_le(u32::MAX - 8, 8, 42);
        assert_eq!(m.read_le(u32::MAX - 8, 8), 42);
    }

    #[test]
    fn slices_round_trip() {
        let mut m = Memory::new();
        m.write_slice(42, b"hello");
        assert_eq!(m.read_vec(42, 5), b"hello");
    }

    #[test]
    fn slices_round_trip_across_pages() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u32 * 3 - 5;
        let data: Vec<u8> = (0..64).collect();
        m.write_slice(addr, &data);
        assert_eq!(m.read_vec(addr, 64), data);
        // Sparse read: a hole between two written pages reads as zero.
        assert_eq!(m.read_vec(addr - 10, 10), vec![0; 10]);
    }

    #[test]
    #[should_panic(expected = "read_le size")]
    fn oversized_read_panics() {
        Memory::new().read_le(0, 9);
    }
}
