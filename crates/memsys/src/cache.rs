//! Direct-mapped timing caches.
//!
//! Caches in this simulator are *timing-only*: data always lives in
//! [`crate::Memory`] (plus the speculative [`crate::Arb`]), and the cache
//! tracks tags to decide hit/miss latency. This is the standard structure
//! for an execution-driven timing simulator and matches the paper's use of
//! caches purely as latency/bandwidth models.

use std::fmt;

/// Hit/miss counters for a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 when there were no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses,
            100.0 * self.miss_rate()
        )
    }
}

/// A direct-mapped cache tag array.
#[derive(Clone, Debug)]
pub struct DirectMappedCache {
    block_bits: u32,
    set_bits: u32,
    tags: Vec<Option<u32>>,
    stats: CacheStats,
}

impl DirectMappedCache {
    /// Builds a cache of `size_bytes` with `block_bytes` blocks.
    ///
    /// # Panics
    /// Panics unless both sizes are powers of two and
    /// `size_bytes >= block_bytes`.
    pub fn new(size_bytes: u32, block_bytes: u32) -> DirectMappedCache {
        assert!(size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        assert!(size_bytes >= block_bytes, "cache smaller than one block");
        let sets = size_bytes / block_bytes;
        DirectMappedCache {
            block_bits: block_bytes.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
            tags: vec![None; sets as usize],
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, addr: u32) -> usize {
        ((addr >> self.block_bits) & ((1 << self.set_bits) - 1)) as usize
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr >> (self.block_bits + self.set_bits)
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u32 {
        1 << self.block_bits
    }

    /// Accesses `addr`, filling the block on a miss. Returns whether it hit.
    pub fn access(&mut self, addr: u32) -> bool {
        self.stats.accesses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        if self.tags[set] == Some(tag) {
            true
        } else {
            self.stats.misses += 1;
            self.tags[set] = Some(tag);
            false
        }
    }

    /// Whether `addr` is resident, without updating state or stats.
    pub fn probe(&self, addr: u32) -> bool {
        self.tags[self.set_of(addr)] == Some(self.tag_of(addr))
    }

    /// Installs the block containing `addr` without counting an access.
    pub fn fill(&mut self, addr: u32) {
        let set = self.set_of(addr);
        self.tags[set] = Some(self.tag_of(addr));
    }

    /// Empties the cache (tags only; stats are kept).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(None);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = DirectMappedCache::new(1024, 64);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64-byte block
        assert!(!c.access(0x140)); // next block
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn conflicting_tags_evict() {
        let mut c = DirectMappedCache::new(1024, 64); // 16 sets
        assert!(!c.access(0x0));
        assert!(!c.access(1024)); // same set, different tag
        assert!(!c.access(0x0)); // evicted
    }

    #[test]
    fn probe_and_fill_do_not_count() {
        let mut c = DirectMappedCache::new(256, 64);
        assert!(!c.probe(0x80));
        c.fill(0x80);
        assert!(c.probe(0x80));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn invalidate_clears_tags() {
        let mut c = DirectMappedCache::new(256, 64);
        c.fill(0);
        c.invalidate_all();
        assert!(!c.probe(0));
    }

    #[test]
    fn paper_configs_construct() {
        // 32 KB I-cache, 8 KB D-cache banks, 64-byte blocks.
        let i = DirectMappedCache::new(32 * 1024, 64);
        let d = DirectMappedCache::new(8 * 1024, 64);
        assert_eq!(i.block_bytes(), 64);
        assert_eq!(d.block_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        DirectMappedCache::new(1000, 64);
    }
}
