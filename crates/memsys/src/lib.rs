//! # ms-memsys — the multiscalar memory system
//!
//! All the storage-side hardware of the paper's Figure 1, built from
//! scratch:
//!
//! * [`Memory`] — sparse architectural memory (committed state only),
//! * [`DirectMappedCache`] — timing-only tag arrays,
//! * [`MemBus`] — the single 4-word split-transaction memory bus
//!   (10 cycles first beat, +1 per extra beat, with exact contention),
//! * [`DataBanks`] — interleaved 8 KB direct-mapped data-cache banks
//!   behind a crossbar, one request per bank per cycle,
//! * [`ICache`] — per-unit 32 KB instruction caches,
//! * [`Arb`] — the Address Resolution Buffer: speculative store storage,
//!   load/store bits per processing unit, store-to-load forwarding,
//!   memory-order violation detection, squash cleanup and retire drain.
//!
//! Timing is analytic (each access returns its absolute completion cycle)
//! while correctness state (memory bytes, speculative store values) is
//! exact. See `DESIGN.md` §3 for the parameters and deviations.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arb;
mod banks;
mod bus;
mod cache;
mod icache;
mod mem;

pub use arb::{Arb, ArbFull, ArbStats, LoadResult};
pub use banks::{DataBanks, DataBanksConfig};
pub use bus::{BusConfig, BusStats, MemBus};
pub use cache::{CacheStats, DirectMappedCache};
pub use icache::{ICache, ICacheConfig};
pub use mem::Memory;
