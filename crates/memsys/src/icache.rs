//! Per-unit instruction cache.
//!
//! Paper Section 5.1: "each processing unit is configured with 32 kbytes
//! of direct mapped instruction cache in 64 byte blocks. (An instruction
//! cache access returns 4 words in a hit time of 1 cycle with an
//! additional penalty of 10+3 cycles, plus any bus contention, on a
//! miss.)"

use crate::bus::MemBus;
use crate::cache::{CacheStats, DirectMappedCache};

/// Configuration of one instruction cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ICacheConfig {
    /// Total bytes (paper: 32 KB).
    pub size_bytes: u32,
    /// Block size (paper: 64 B).
    pub block_bytes: u32,
    /// Hit time in cycles (paper: 1).
    pub hit_time: u64,
    /// Extra cycles beyond the bus transfer on a miss (paper: the "+3").
    pub miss_extra: u64,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig { size_bytes: 32 * 1024, block_bytes: 64, hit_time: 1, miss_extra: 3 }
    }
}

/// One processing unit's instruction cache.
pub struct ICache {
    cache: DirectMappedCache,
    cfg: ICacheConfig,
    /// Whether the most recent fetch missed (the fill is in flight until
    /// the cycle [`ICache::fetch`] returned). Lets the owning unit
    /// attribute the resulting fetch bubble to the memory system
    /// (`cache_miss`) instead of a generic `fetch_empty` stall.
    last_fetch_missed: bool,
}

impl ICache {
    /// Builds an instruction cache.
    pub fn new(cfg: ICacheConfig) -> ICache {
        ICache {
            cache: DirectMappedCache::new(cfg.size_bytes, cfg.block_bytes),
            cfg,
            last_fetch_missed: false,
        }
    }

    /// Fetches the block containing `pc` at cycle `now`; returns the cycle
    /// the instructions are available.
    pub fn fetch(&mut self, now: u64, pc: u32, bus: &mut MemBus) -> u64 {
        self.fetch_traced(now, pc, bus, usize::MAX, &mut ms_trace::NullSink)
    }

    /// [`ICache::fetch`] with trace instrumentation: emits an
    /// `ICacheFetch` tagged with the owning `unit` and routes miss fills
    /// through the traced bus path.
    pub fn fetch_traced<S: ms_trace::TraceSink>(
        &mut self,
        now: u64,
        pc: u32,
        bus: &mut MemBus,
        unit: usize,
        sink: &mut S,
    ) -> u64 {
        let hit = self.cache.access(pc);
        self.last_fetch_missed = !hit;
        if S::ENABLED {
            sink.event(&ms_trace::TraceEvent::ICacheFetch { cycle: now, unit, pc, hit });
        }
        if hit {
            now + self.cfg.hit_time
        } else {
            let done = bus.request_traced(now + self.cfg.hit_time, self.cfg.block_bytes / 4, sink);
            done + self.cfg.miss_extra
        }
    }

    /// Whether the most recent fetch was a miss (its fill occupies the
    /// bus until the cycle the fetch call returned).
    ///
    /// The skip-ahead probe (DESIGN.md §13) uses this to decide whether
    /// a pre-`fetch_ready_at` span classifies as `CacheMiss` (a fill in
    /// flight) or `FetchEmpty`; hot path, keep it a trivial accessor.
    #[inline]
    pub fn last_fetch_missed(&self) -> bool {
        self.last_fetch_missed
    }

    /// Whether a fetch group starting at `pc` of `words` instructions can
    /// be delivered in one access (it must not cross a block boundary —
    /// the cache returns 4 words per access within a block).
    pub fn same_fetch_group(&self, pc: u32, words: u32) -> bool {
        let group = 16; // 4 words * 4 bytes
        let start = pc / group;
        let end = (pc + words * 4 - 1) / group;
        start == end
    }

    /// Statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;

    #[test]
    fn miss_then_hit_timing() {
        let mut ic = ICache::new(ICacheConfig::default());
        let mut bus = MemBus::new(BusConfig::default());
        // Cold miss: 1 (hit time) + 13 (bus, 16 words) + 3.
        assert_eq!(ic.fetch(0, 0x1000, &mut bus), 17);
        // Hit within the same 64-byte block.
        assert_eq!(ic.fetch(20, 0x1004, &mut bus), 21);
        assert_eq!(ic.stats().misses, 1);
    }

    #[test]
    fn fetch_groups_are_16_bytes() {
        let ic = ICache::new(ICacheConfig::default());
        assert!(ic.same_fetch_group(0x1000, 2));
        assert!(ic.same_fetch_group(0x1008, 2));
        assert!(!ic.same_fetch_group(0x100c, 2));
        assert!(ic.same_fetch_group(0x100c, 1));
    }

    #[test]
    fn bus_contention_delays_fill() {
        let mut ic = ICache::new(ICacheConfig::default());
        let mut bus = MemBus::new(BusConfig::default());
        bus.request(0, 16); // someone else owns the bus until 13
                            // Fill issues at cycle 1, waits until 13, transfers 13, +3 extra.
        assert_eq!(ic.fetch(0, 0x1000, &mut bus), 13 + 13 + 3);
    }
}
