//! Interleaved data-cache banks behind a crossbar.
//!
//! Paper Section 5.1: "A crossbar interconnects the units to twice as many
//! interleaved data banks. Each data bank is configured as 8 kbytes of
//! direct mapped data cache in 64 byte blocks … A data cache access
//! returns 1 word in a hit time of 2 cycles and 1 cycle for multiscalar
//! and scalar processors, respectively, with an additional penalty of 10+3
//! cycles, plus any bus contention, on a miss."
//!
//! Each bank services one request per cycle (the crossbar delivers at most
//! one request per bank per cycle); requests arriving at a busy bank queue
//! behind it. Timing is analytic: an access at cycle `now` returns its
//! absolute completion cycle.

use crate::bus::MemBus;
use crate::cache::{CacheStats, DirectMappedCache};

/// Configuration for the banked data cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DataBanksConfig {
    /// Number of banks (paper: 2 × processing units).
    pub nbanks: usize,
    /// Bytes per bank (paper: 8 KB).
    pub bank_bytes: u32,
    /// Block size (paper: 64 B).
    pub block_bytes: u32,
    /// Load-to-use hit time (paper: 2 multiscalar, 1 scalar).
    pub hit_time: u64,
    /// Extra cycles beyond the bus transfer on a miss (paper: the "+3").
    pub miss_extra: u64,
}

impl DataBanksConfig {
    /// The paper's multiscalar configuration for `units` processing units.
    pub fn multiscalar(units: usize) -> DataBanksConfig {
        DataBanksConfig {
            nbanks: 2 * units,
            bank_bytes: 8 * 1024,
            block_bytes: 64,
            hit_time: 2,
            miss_extra: 3,
        }
    }

    /// The paper's scalar configuration: 1-cycle hits, with total
    /// capacity matching the 8-unit multiscalar's 128 KB of banked
    /// storage (a conservative choice that favours the baseline).
    pub fn scalar() -> DataBanksConfig {
        DataBanksConfig {
            nbanks: 16,
            bank_bytes: 8 * 1024,
            block_bytes: 64,
            hit_time: 1,
            miss_extra: 3,
        }
    }
}

struct Bank {
    cache: DirectMappedCache,
    free_at: u64,
}

/// The interleaved data-cache banks.
pub struct DataBanks {
    banks: Vec<Bank>,
    cfg: DataBanksConfig,
}

impl DataBanks {
    /// Builds the banks from a configuration.
    ///
    /// # Panics
    /// Panics if `nbanks` is zero or cache dimensions are invalid.
    pub fn new(cfg: DataBanksConfig) -> DataBanks {
        assert!(cfg.nbanks > 0, "need at least one bank");
        DataBanks {
            banks: (0..cfg.nbanks)
                .map(|_| Bank {
                    cache: DirectMappedCache::new(cfg.bank_bytes, cfg.block_bytes),
                    free_at: 0,
                })
                .collect(),
            cfg,
        }
    }

    /// The bank index serving `addr`. Banks are interleaved at block
    /// granularity so each cache block (and each ARB line within it) lives
    /// in exactly one bank.
    pub fn bank_of(&self, addr: u32) -> usize {
        ((addr / self.cfg.block_bytes) as usize) % self.banks.len()
    }

    fn start_service(&mut self, now: u64, addr: u32) -> (usize, u64) {
        let b = self.bank_of(addr);
        let start = self.banks[b].free_at.max(now);
        self.banks[b].free_at = start + 1;
        (b, start)
    }

    /// A load issued at `now`; returns the cycle its value is available.
    /// `forwarded_from_arb` loads still occupy the bank (the ARB sits with
    /// the banks) but cannot miss.
    pub fn access_load(
        &mut self,
        now: u64,
        addr: u32,
        forwarded_from_arb: bool,
        bus: &mut MemBus,
    ) -> u64 {
        self.access_load_traced(now, addr, forwarded_from_arb, bus, &mut ms_trace::NullSink)
    }

    /// [`DataBanks::access_load`] with trace instrumentation: emits a
    /// `DCacheAccess` per bank access (ARB-forwarded loads count as hits)
    /// and routes miss fills through the traced bus path.
    pub fn access_load_traced<S: ms_trace::TraceSink>(
        &mut self,
        now: u64,
        addr: u32,
        forwarded_from_arb: bool,
        bus: &mut MemBus,
        sink: &mut S,
    ) -> u64 {
        let (b, start) = self.start_service(now, addr);
        if forwarded_from_arb {
            if S::ENABLED {
                sink.event(&ms_trace::TraceEvent::DCacheAccess {
                    cycle: start,
                    bank: b,
                    addr,
                    hit: true,
                });
            }
            return start + self.cfg.hit_time;
        }
        let hit = self.banks[b].cache.access(addr);
        if S::ENABLED {
            sink.event(&ms_trace::TraceEvent::DCacheAccess { cycle: start, bank: b, addr, hit });
        }
        if hit {
            start + self.cfg.hit_time
        } else {
            let done =
                bus.request_traced(start + self.cfg.hit_time, self.cfg.block_bytes / 4, sink);
            done + self.cfg.miss_extra
        }
    }

    /// A store issued at `now`; returns its completion cycle. Speculative
    /// stores go to the ARB, so no cache fill or bus traffic occurs here.
    pub fn access_store(&mut self, now: u64, addr: u32) -> u64 {
        let (_, start) = self.start_service(now, addr);
        start + 1
    }

    /// A store in *scalar* mode (no ARB): writes allocate in the cache and
    /// consume bus bandwidth on a miss, but complete in one cycle (write
    /// buffered, non-blocking).
    pub fn access_store_allocate(&mut self, now: u64, addr: u32, bus: &mut MemBus) -> u64 {
        let (b, start) = self.start_service(now, addr);
        let hit = self.banks[b].cache.access(addr);
        if !hit {
            let _ = bus.request(start, self.cfg.block_bytes / 4);
        }
        start + 1
    }

    /// A retire-time ARB drain write of the line at `addr`, issued at
    /// `now`. Write misses allocate and consume bus bandwidth but do not
    /// stall the caller (retirement is never blocked on the drain).
    pub fn drain_store(&mut self, now: u64, addr: u32, bus: &mut MemBus) {
        let b = self.bank_of(addr);
        let hit = self.banks[b].cache.access(addr);
        if !hit {
            let _ = bus.request(now, self.cfg.block_bytes / 4);
        }
    }

    /// Aggregate cache statistics over all banks.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for b in &self.banks {
            s.accesses += b.cache.stats().accesses;
            s.misses += b.cache.stats().misses;
        }
        s
    }

    /// The configuration in use.
    pub fn config(&self) -> DataBanksConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;

    fn setup() -> (DataBanks, MemBus) {
        (DataBanks::new(DataBanksConfig::multiscalar(4)), MemBus::new(BusConfig::default()))
    }

    #[test]
    fn hit_takes_hit_time() {
        let (mut d, mut bus) = setup();
        let t1 = d.access_load(0, 0x100, false, &mut bus); // cold miss
        assert_eq!(t1, 2 + 13 + 3); // hit_time + bus(16w) + extra
        let t2 = d.access_load(20, 0x104, false, &mut bus); // now a hit
        assert_eq!(t2, 22);
    }

    #[test]
    fn bank_conflict_serializes() {
        let (mut d, mut bus) = setup();
        d.access_load(0, 0x100, false, &mut bus);
        // Same bank (same 64-byte block), same cycle: second waits 1.
        let t = d.access_load(0, 0x108, true, &mut bus);
        assert_eq!(t, 1 + 2);
        // Different bank (next block): no conflict.
        let t = d.access_load(0, 0x140, true, &mut bus);
        assert_eq!(t, 2);
    }

    #[test]
    fn stores_complete_in_one_cycle() {
        let (mut d, bus) = setup();
        assert_eq!(d.access_store(5, 0x40), 6);
        assert_eq!(bus.stats().transactions, 0);
    }

    #[test]
    fn forwarded_loads_never_miss() {
        let (mut d, mut bus) = setup();
        let t = d.access_load(0, 0x2000, true, &mut bus);
        assert_eq!(t, 2);
        assert_eq!(d.stats().misses, 0);
    }

    #[test]
    fn drain_misses_use_bus_but_do_not_block() {
        let (mut d, mut bus) = setup();
        d.drain_store(0, 0x500, &mut bus);
        assert_eq!(bus.stats().transactions, 1);
        // Second drain to same block hits: no more bus traffic.
        d.drain_store(1, 0x508, &mut bus);
        assert_eq!(bus.stats().transactions, 1);
    }

    #[test]
    fn scalar_config_has_one_cycle_hits() {
        let mut d = DataBanks::new(DataBanksConfig::scalar());
        let mut bus = MemBus::new(BusConfig::default());
        d.access_load(0, 0x100, false, &mut bus);
        let t = d.access_load(20, 0x104, false, &mut bus);
        assert_eq!(t, 21);
    }
}
