//! Functional (architectural) semantics of every operation.
//!
//! [`execute`] is a pure function from an instruction, its PC and a
//! register-read closure to an [`Outcome`]; the pipeline decides *when*
//! the outcome takes effect. Keeping semantics separate from timing makes
//! them independently testable.

use ms_isa::{FpArithKind, FpCmpCond, Instr, MemWidth, Op, Prec, Reg, RegList};

/// A memory access requested by an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Whether this is a store.
    pub is_store: bool,
    /// Byte address.
    pub addr: u32,
    /// Access size in bytes.
    pub size: u32,
    /// Store data (low `size` bytes), zero for loads.
    pub value: u64,
    /// Sign-extend the loaded value.
    pub signed: bool,
    /// Destination register for loads.
    pub dest: Option<Reg>,
}

/// A resolved control transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControlOutcome {
    /// Whether the branch was taken (always true for jumps).
    pub taken: bool,
    /// The next PC (target if taken, fall-through otherwise).
    pub next_pc: u32,
    /// Whether this is a conditional branch (vs. an unconditional jump).
    pub conditional: bool,
}

/// The architectural effect of one instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Outcome {
    /// Register write (not used for loads; see [`Outcome::mem`]).
    pub writeback: Option<(Reg, u64)>,
    /// Memory access to perform.
    pub mem: Option<MemRequest>,
    /// Control-flow resolution.
    pub control: Option<ControlOutcome>,
    /// Registers named by a `release` instruction.
    pub release: Option<RegList>,
    /// The program halts after this instruction.
    pub halt: bool,
}

fn f64_of(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn f32_of(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}

/// Sign- or zero-extends a raw little-endian load of `width`.
pub fn extend_load(width: MemWidth, signed: bool, raw: u64) -> u64 {
    let bits = 8 * width.bytes();
    if bits == 64 {
        return raw;
    }
    let masked = raw & ((1u64 << bits) - 1);
    if signed && masked >> (bits - 1) != 0 {
        masked | !((1u64 << bits) - 1)
    } else {
        masked
    }
}

/// Executes `instr` at `pc`, reading sources through `read`.
///
/// Loads are returned as a [`MemRequest`]; the caller performs the access
/// and applies [`extend_load`]. Integer division by zero yields zero (the
/// simulator defines this rather than trapping).
pub fn execute(instr: &Instr, pc: u32, read: impl Fn(Reg) -> u64) -> Outcome {
    use Op::*;
    let mut out = Outcome::default();
    let branch = |taken: bool, off: i32| ControlOutcome {
        taken,
        next_pc: if taken { (pc as i64 + 4 + (off as i64) * 4) as u32 } else { pc + 4 },
        conditional: true,
    };
    match instr.op {
        Nop => {}
        Halt => out.halt = true,
        Addu { rd, rs, rt } => out.writeback = Some((rd, read(rs).wrapping_add(read(rt)))),
        Subu { rd, rs, rt } => out.writeback = Some((rd, read(rs).wrapping_sub(read(rt)))),
        And { rd, rs, rt } => out.writeback = Some((rd, read(rs) & read(rt))),
        Or { rd, rs, rt } => out.writeback = Some((rd, read(rs) | read(rt))),
        Xor { rd, rs, rt } => out.writeback = Some((rd, read(rs) ^ read(rt))),
        Nor { rd, rs, rt } => out.writeback = Some((rd, !(read(rs) | read(rt)))),
        Sllv { rd, rt, rs } => out.writeback = Some((rd, read(rt) << (read(rs) & 63))),
        Srlv { rd, rt, rs } => out.writeback = Some((rd, read(rt) >> (read(rs) & 63))),
        Srav { rd, rt, rs } => {
            out.writeback = Some((rd, ((read(rt) as i64) >> (read(rs) & 63)) as u64))
        }
        Slt { rd, rs, rt } => {
            out.writeback = Some((rd, ((read(rs) as i64) < (read(rt) as i64)) as u64))
        }
        Sltu { rd, rs, rt } => out.writeback = Some((rd, (read(rs) < read(rt)) as u64)),
        Mul { rd, rs, rt } => out.writeback = Some((rd, read(rs).wrapping_mul(read(rt)))),
        Div { rd, rs, rt } => {
            let d = read(rt) as i64;
            let v = if d == 0 { 0 } else { (read(rs) as i64).wrapping_div(d) };
            out.writeback = Some((rd, v as u64));
        }
        Rem { rd, rs, rt } => {
            let d = read(rt) as i64;
            let v = if d == 0 { 0 } else { (read(rs) as i64).wrapping_rem(d) };
            out.writeback = Some((rd, v as u64));
        }
        Addiu { rt, rs, imm } => {
            out.writeback = Some((rt, read(rs).wrapping_add(imm as i64 as u64)))
        }
        Andi { rt, rs, imm } => out.writeback = Some((rt, read(rs) & (imm as u32 as u64))),
        Ori { rt, rs, imm } => out.writeback = Some((rt, read(rs) | (imm as u32 as u64))),
        Xori { rt, rs, imm } => out.writeback = Some((rt, read(rs) ^ (imm as u32 as u64))),
        Slti { rt, rs, imm } => {
            out.writeback = Some((rt, ((read(rs) as i64) < (imm as i64)) as u64))
        }
        Sltiu { rt, rs, imm } => {
            out.writeback = Some((rt, (read(rs) < (imm as i64 as u64)) as u64))
        }
        Sll { rd, rt, sh } => out.writeback = Some((rd, read(rt) << (sh & 63))),
        Srl { rd, rt, sh } => out.writeback = Some((rd, read(rt) >> (sh & 63))),
        Sra { rd, rt, sh } => out.writeback = Some((rd, ((read(rt) as i64) >> (sh & 63)) as u64)),
        Lui { rt, imm } => out.writeback = Some((rt, ((imm as i64) << 12) as u64)),
        Load { width, signed, rt, base, off } => {
            out.mem = Some(MemRequest {
                is_store: false,
                addr: (read(base) as i64).wrapping_add(off as i64) as u32,
                size: width.bytes(),
                value: 0,
                signed,
                dest: Some(rt),
            })
        }
        Store { width, rt, base, off } => {
            out.mem = Some(MemRequest {
                is_store: true,
                addr: (read(base) as i64).wrapping_add(off as i64) as u32,
                size: width.bytes(),
                value: read(rt),
                signed: false,
                dest: None,
            })
        }
        Beq { rs, rt, off } => out.control = Some(branch(read(rs) == read(rt), off)),
        Bne { rs, rt, off } => out.control = Some(branch(read(rs) != read(rt), off)),
        Blez { rs, off } => out.control = Some(branch(read(rs) as i64 <= 0, off)),
        Bgtz { rs, off } => out.control = Some(branch(read(rs) as i64 > 0, off)),
        Bltz { rs, off } => out.control = Some(branch((read(rs) as i64) < 0, off)),
        Bgez { rs, off } => out.control = Some(branch(read(rs) as i64 >= 0, off)),
        J { target } => {
            out.control = Some(ControlOutcome { taken: true, next_pc: target, conditional: false })
        }
        Jal { target } => {
            out.writeback = Some((Reg::RA, (pc + 4) as u64));
            out.control = Some(ControlOutcome { taken: true, next_pc: target, conditional: false });
        }
        Jr { rs } => {
            out.control =
                Some(ControlOutcome { taken: true, next_pc: read(rs) as u32, conditional: false })
        }
        Jalr { rd, rs } => {
            let target = read(rs) as u32;
            out.writeback = Some((rd, (pc + 4) as u64));
            out.control = Some(ControlOutcome { taken: true, next_pc: target, conditional: false });
        }
        FpArith { kind, prec, fd, fs, ft } => {
            let v = match prec {
                Prec::D => {
                    let (a, b) = (f64_of(read(fs)), f64_of(read(ft)));
                    let r = match kind {
                        FpArithKind::Add => a + b,
                        FpArithKind::Sub => a - b,
                        FpArithKind::Mul => a * b,
                        FpArithKind::Div => a / b,
                    };
                    r.to_bits()
                }
                Prec::S => {
                    let (a, b) = (f32_of(read(fs)), f32_of(read(ft)));
                    let r = match kind {
                        FpArithKind::Add => a + b,
                        FpArithKind::Sub => a - b,
                        FpArithKind::Mul => a * b,
                        FpArithKind::Div => a / b,
                    };
                    r.to_bits() as u64
                }
            };
            out.writeback = Some((fd, v));
        }
        FpCmp { cond, prec, rd, fs, ft } => {
            let res = match prec {
                Prec::D => {
                    let (a, b) = (f64_of(read(fs)), f64_of(read(ft)));
                    match cond {
                        FpCmpCond::Eq => a == b,
                        FpCmpCond::Lt => a < b,
                        FpCmpCond::Le => a <= b,
                    }
                }
                Prec::S => {
                    let (a, b) = (f32_of(read(fs)), f32_of(read(ft)));
                    match cond {
                        FpCmpCond::Eq => a == b,
                        FpCmpCond::Lt => a < b,
                        FpCmpCond::Le => a <= b,
                    }
                }
            };
            out.writeback = Some((rd, res as u64));
        }
        FpNeg { prec, fd, fs } => {
            let v = match prec {
                Prec::D => (-f64_of(read(fs))).to_bits(),
                Prec::S => (-f32_of(read(fs))).to_bits() as u64,
            };
            out.writeback = Some((fd, v));
        }
        FpAbs { prec, fd, fs } => {
            let v = match prec {
                Prec::D => f64_of(read(fs)).abs().to_bits(),
                Prec::S => f32_of(read(fs)).abs().to_bits() as u64,
            };
            out.writeback = Some((fd, v));
        }
        FpMov { fd, fs } => out.writeback = Some((fd, read(fs))),
        CvtDW { fd, rs } => out.writeback = Some((fd, ((read(rs) as i64) as f64).to_bits())),
        CvtWD { rd, fs } => out.writeback = Some((rd, (f64_of(read(fs)) as i64) as u64)),
        Dmtc1 { fs, rt } => out.writeback = Some((fs, read(rt))),
        Dmfc1 { rt, fs } => out.writeback = Some((rt, read(fs))),
        Release { regs } => out.release = Some(regs),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_isa::StopCond;

    fn run(op: Op, regs: &[(Reg, u64)]) -> Outcome {
        let read = |r: Reg| regs.iter().find(|(x, _)| *x == r).map(|(_, v)| *v).unwrap_or(0);
        execute(&Instr::new(op), 0x1000, read)
    }

    #[test]
    fn integer_arithmetic() {
        let r = |n| Reg::int(n);
        let out = run(Op::Addu { rd: r(3), rs: r(1), rt: r(2) }, &[(r(1), 5), (r(2), 7)]);
        assert_eq!(out.writeback, Some((r(3), 12)));
        let out = run(Op::Subu { rd: r(3), rs: r(1), rt: r(2) }, &[(r(1), 5), (r(2), 7)]);
        assert_eq!(out.writeback, Some((r(3), (-2i64) as u64)));
        let out = run(Op::Slt { rd: r(3), rs: r(1), rt: r(2) }, &[(r(1), u64::MAX), (r(2), 1)]);
        assert_eq!(out.writeback, Some((r(3), 1))); // -1 < 1 signed
        let out = run(Op::Sltu { rd: r(3), rs: r(1), rt: r(2) }, &[(r(1), u64::MAX), (r(2), 1)]);
        assert_eq!(out.writeback, Some((r(3), 0))); // max > 1 unsigned
    }

    #[test]
    fn division_by_zero_is_zero() {
        let r = |n| Reg::int(n);
        let out = run(Op::Div { rd: r(3), rs: r(1), rt: r(2) }, &[(r(1), 10)]);
        assert_eq!(out.writeback, Some((r(3), 0)));
        let out = run(Op::Rem { rd: r(3), rs: r(1), rt: r(2) }, &[(r(1), 10), (r(2), 3)]);
        assert_eq!(out.writeback, Some((r(3), 1)));
    }

    #[test]
    fn lui_shifts_by_12() {
        let out = run(Op::Lui { rt: Reg::int(2), imm: -1 }, &[]);
        assert_eq!(out.writeback, Some((Reg::int(2), (-4096i64) as u64)));
        let out = run(Op::Lui { rt: Reg::int(2), imm: 5 }, &[]);
        assert_eq!(out.writeback, Some((Reg::int(2), 5 << 12)));
    }

    #[test]
    fn branch_targets_are_word_relative() {
        let i = Instr::new(Op::Bne { rs: Reg::int(1), rt: Reg::int(2), off: -4 })
            .with_stop(StopCond::Always);
        let out = execute(&i, 0x1010, |r| if r == Reg::int(1) { 1 } else { 0 });
        let c = out.control.unwrap();
        assert!(c.taken && c.conditional);
        assert_eq!(c.next_pc, 0x1010 + 4 - 16);
        // Not taken falls through.
        let out = execute(&i, 0x1010, |_| 0);
        assert_eq!(out.control.unwrap().next_pc, 0x1014);
        assert!(!out.control.unwrap().taken);
    }

    #[test]
    fn calls_write_return_address() {
        let out = run(Op::Jal { target: 0x2000 }, &[]);
        assert_eq!(out.writeback, Some((Reg::RA, 0x1004)));
        assert_eq!(out.control.unwrap().next_pc, 0x2000);
        let out = run(Op::Jr { rs: Reg::RA }, &[(Reg::RA, 0x1440)]);
        assert_eq!(out.control.unwrap().next_pc, 0x1440);
    }

    #[test]
    fn memory_requests_carry_addressing() {
        let out = run(
            Op::Load {
                width: MemWidth::H,
                signed: true,
                rt: Reg::int(2),
                base: Reg::int(3),
                off: -2,
            },
            &[(Reg::int(3), 0x100)],
        );
        let m = out.mem.unwrap();
        assert!(!m.is_store);
        assert_eq!(m.addr, 0xfe);
        assert_eq!(m.size, 2);
        assert_eq!(m.dest, Some(Reg::int(2)));

        let out = run(
            Op::Store { width: MemWidth::D, rt: Reg::int(2), base: Reg::int(3), off: 8 },
            &[(Reg::int(2), 99), (Reg::int(3), 0x100)],
        );
        let m = out.mem.unwrap();
        assert!(m.is_store);
        assert_eq!(m.addr, 0x108);
        assert_eq!(m.value, 99);
    }

    #[test]
    fn load_extension() {
        assert_eq!(extend_load(MemWidth::B, true, 0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(extend_load(MemWidth::B, false, 0x80), 0x80);
        assert_eq!(extend_load(MemWidth::W, true, 0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(extend_load(MemWidth::W, false, 0x8000_0000), 0x8000_0000);
        assert_eq!(extend_load(MemWidth::D, true, u64::MAX), u64::MAX);
    }

    #[test]
    fn fp_double_arithmetic() {
        let f = |n| Reg::fp(n);
        let out = run(
            Op::FpArith { kind: FpArithKind::Mul, prec: Prec::D, fd: f(0), fs: f(1), ft: f(2) },
            &[(f(1), 2.5f64.to_bits()), (f(2), 4.0f64.to_bits())],
        );
        let (rd, bits) = out.writeback.unwrap();
        assert_eq!(rd, f(0));
        assert_eq!(f64::from_bits(bits), 10.0);
    }

    #[test]
    fn fp_compare_writes_int_reg() {
        let f = |n| Reg::fp(n);
        let out = run(
            Op::FpCmp { cond: FpCmpCond::Lt, prec: Prec::D, rd: Reg::int(5), fs: f(1), ft: f(2) },
            &[(f(1), 1.0f64.to_bits()), (f(2), 2.0f64.to_bits())],
        );
        assert_eq!(out.writeback, Some((Reg::int(5), 1)));
    }

    #[test]
    fn conversions_round_trip() {
        let out =
            run(Op::CvtDW { fd: Reg::fp(0), rs: Reg::int(1) }, &[(Reg::int(1), (-7i64) as u64)]);
        assert_eq!(f64::from_bits(out.writeback.unwrap().1), -7.0);
        let out =
            run(Op::CvtWD { rd: Reg::int(1), fs: Reg::fp(0) }, &[(Reg::fp(0), 3.9f64.to_bits())]);
        assert_eq!(out.writeback.unwrap().1 as i64, 3); // truncation
    }

    #[test]
    fn halt_and_release() {
        assert!(run(Op::Halt, &[]).halt);
        let out = run(Op::Release { regs: RegList::from_slice(&[Reg::int(4)]) }, &[]);
        assert_eq!(out.release.unwrap().len(), 1);
    }
}
