//! The per-unit register file.
//!
//! Every processing unit holds "the appearance of a single logical
//! register file … with a copy in each parallel processing unit"
//! (paper abstract). Each copy tracks, per register:
//!
//! * its current **value**,
//! * whether the value is still **awaiting** arrival from a predecessor
//!   task (the reservations set up from the accum mask, Section 2.1), and
//! * the **cycle at which the latest local writer's result is available**
//!   (the intra-unit scoreboard; full bypass is assumed, so a dependent
//!   may issue in the cycle the producer's result is ready).

use ms_isa::{Reg, RegMask, NUM_REGS};

/// Why a register cannot be read right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadStatus {
    /// Readable this cycle.
    Ready,
    /// An in-flight instruction in this unit produces it later.
    WaitLocal,
    /// A predecessor task has not yet forwarded it (inter-task wait).
    WaitRemote,
}

/// One processing unit's copy of the register file.
#[derive(Clone, Debug)]
pub struct RegFile {
    vals: [u64; NUM_REGS],
    awaiting: RegMask,
    ready_at: [u64; NUM_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// A register file with all registers zero and ready.
    pub fn new() -> RegFile {
        RegFile { vals: [0; NUM_REGS], awaiting: RegMask::EMPTY, ready_at: [0; NUM_REGS] }
    }

    /// Installs the task-entry state: `vals` copied from the predecessor's
    /// forwarded view, with `awaiting` registers reserved until the ring
    /// delivers them.
    pub fn install(&mut self, vals: &[u64; NUM_REGS], awaiting: RegMask) {
        self.vals = *vals;
        self.vals[0] = 0;
        self.awaiting = awaiting;
        self.awaiting.remove(Reg::ZERO);
        self.ready_at = [0; NUM_REGS];
    }

    /// Read status of `r` at cycle `now`.
    pub fn status(&self, r: Reg, now: u64) -> ReadStatus {
        if r.is_zero() {
            return ReadStatus::Ready;
        }
        if self.awaiting.contains(r) {
            ReadStatus::WaitRemote
        } else if self.ready_at[r.index()] > now {
            ReadStatus::WaitLocal
        } else {
            ReadStatus::Ready
        }
    }

    /// The current value of `r`.
    ///
    /// Callers must have checked [`RegFile::status`]; reading an awaiting
    /// register returns the stale snapshot value.
    pub fn read(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.vals[r.index()]
        }
    }

    /// Writes `v` to `r` from a local instruction whose result is
    /// available (bypass included) at `ready_at`. Clears any inter-task
    /// reservation — the local write supersedes the awaited value.
    pub fn write(&mut self, r: Reg, v: u64, ready_at: u64) {
        if r.is_zero() {
            return;
        }
        self.vals[r.index()] = v;
        self.awaiting.remove(r);
        let slot = &mut self.ready_at[r.index()];
        *slot = (*slot).max(ready_at);
    }

    /// Delivers an inter-task value from the ring at cycle `now`. Ignored
    /// if the register is not awaiting (e.g. the task already overwrote
    /// it, or a duplicate delivery).
    pub fn deliver(&mut self, r: Reg, v: u64, now: u64) {
        if r.is_zero() || !self.awaiting.contains(r) {
            return;
        }
        self.vals[r.index()] = v;
        self.awaiting.remove(r);
        self.ready_at[r.index()] = self.ready_at[r.index()].max(now);
    }

    /// The cycle at which the latest local writer's result becomes
    /// readable (0 if never locally written). The skip-ahead probe uses
    /// this to bound how long a `WaitLocal` operand stays blocked.
    #[inline]
    pub fn ready_at(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.ready_at[r.index()]
        }
    }

    /// Registers still awaiting inter-task delivery.
    pub fn awaiting(&self) -> RegMask {
        self.awaiting
    }

    /// A copy of all current values.
    pub fn values(&self) -> [u64; NUM_REGS] {
        self.vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut rf = RegFile::new();
        rf.write(Reg::ZERO, 99, 5);
        assert_eq!(rf.read(Reg::ZERO), 0);
        assert_eq!(rf.status(Reg::ZERO, 0), ReadStatus::Ready);
    }

    #[test]
    fn local_scoreboard_times_reads() {
        let mut rf = RegFile::new();
        let r = Reg::int(4);
        rf.write(r, 42, 10);
        assert_eq!(rf.status(r, 9), ReadStatus::WaitLocal);
        assert_eq!(rf.status(r, 10), ReadStatus::Ready);
        assert_eq!(rf.read(r), 42);
    }

    #[test]
    fn awaiting_blocks_until_delivery() {
        let mut rf = RegFile::new();
        let r = Reg::int(8);
        let mut vals = [0u64; NUM_REGS];
        vals[r.index()] = 7; // stale snapshot
        rf.install(&vals, [r].into_iter().collect());
        assert_eq!(rf.status(r, 100), ReadStatus::WaitRemote);
        rf.deliver(r, 55, 30);
        assert_eq!(rf.status(r, 30), ReadStatus::Ready);
        assert_eq!(rf.read(r), 55);
        // Duplicate delivery is ignored.
        rf.deliver(r, 99, 31);
        assert_eq!(rf.read(r), 55);
    }

    #[test]
    fn local_write_supersedes_reservation() {
        let mut rf = RegFile::new();
        let r = Reg::int(8);
        rf.install(&[0; NUM_REGS], [r].into_iter().collect());
        rf.write(r, 11, 3);
        assert_eq!(rf.status(r, 3), ReadStatus::Ready);
        // A late delivery must not clobber the local value.
        rf.deliver(r, 22, 4);
        assert_eq!(rf.read(r), 11);
    }

    #[test]
    fn install_resets_scoreboard() {
        let mut rf = RegFile::new();
        rf.write(Reg::int(4), 1, 1000);
        rf.install(&[0; NUM_REGS], RegMask::EMPTY);
        assert_eq!(rf.status(Reg::int(4), 0), ReadStatus::Ready);
    }
}
