//! The processing unit.
//!
//! "Each of these units fetches and executes instructions belonging to its
//! assigned task" (paper abstract). The pipeline is the paper's
//! "traditional 5 stage pipeline (IF/ID/EX/MEM/WB) which can be configured
//! with in-order/out-of-order and 1-way/2-way issue characteristics.
//! Instructions complete out-of-order and are serviced by a collection of
//! pipelined functional units."
//!
//! The model is functional-first: an instruction's architectural effect is
//! computed when it *issues* (in program order for in-order units; under
//! conservative scoreboard constraints for out-of-order units), and its
//! timing is tracked through per-register ready cycles and memory-system
//! completion cycles with full bypassing. Fetch follows fall-through
//! (static not-taken); taken branches resolve at issue and pay a 2-cycle
//! redirect, statically-targeted jumps redirect at fetch with a 1-cycle
//! bubble, and register-indirect jumps stall fetch until they issue. No
//! instruction issues past an unresolved (un-issued) control instruction,
//! so intra-task execution is never control-speculative — task-level
//! speculation is the multiscalar mechanism, and intra-unit speculation is
//! not part of the paper's unit model.

use crate::exec::{execute, extend_load, MemRequest};
use crate::fu::{FuPool, LatencyTable};
use crate::regfile::{ReadStatus, RegFile};
use ms_isa::{Instr, InstrMeta, Op, PredecodedProgram, Reg, RegMask, StopCond, NUM_REGS};
use ms_memsys::{Arb, DataBanks, ICache, ICacheConfig, MemBus, Memory};
use ms_trace::{NullSink, StallReason, TraceEvent, TraceSink};
use std::collections::VecDeque;

/// Static configuration of one processing unit.
#[derive(Clone, Copy, Debug)]
pub struct UnitConfig {
    /// Instructions issued per cycle (paper: 1 or 2).
    pub issue_width: usize,
    /// Out-of-order issue within the window (paper: in-order or OoO).
    pub ooo: bool,
    /// How many decoded instructions the OoO issue logic considers.
    pub window: usize,
    /// Capacity of the decoded-instruction buffer.
    pub fetch_buffer: usize,
    /// Operation latencies.
    pub latencies: LatencyTable,
    /// Instruction-cache configuration.
    pub icache: ICacheConfig,
}

impl Default for UnitConfig {
    fn default() -> Self {
        UnitConfig {
            issue_width: 1,
            ooo: false,
            window: 16,
            fetch_buffer: 16,
            latencies: LatencyTable::default(),
            icache: ICacheConfig::default(),
        }
    }
}

/// Ports into the shared memory system, passed to [`ProcessingUnit::tick`].
pub struct MemPorts<'a> {
    /// Architectural memory.
    pub mem: &'a mut Memory,
    /// The shared memory bus.
    pub bus: &'a mut MemBus,
    /// The banked data cache.
    pub banks: &'a mut DataBanks,
    /// The ARB; `None` in scalar mode (direct, non-speculative memory).
    pub arb: Option<&'a mut Arb>,
    /// This unit's ARB stage index.
    pub stage: usize,
    /// Number of currently active tasks (ARB rank horizon).
    pub active_ranks: usize,
}

/// How a completed task exited (determines the actual successor task).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitKind {
    /// Fell through the stop instruction to `pc`.
    Fall(u32),
    /// Jumped or branched to `pc`.
    Jump(u32),
    /// Called a function: the successor task is the callee.
    Call {
        /// Callee entry.
        target: u32,
        /// Return address (pushed on the sequencer RAS).
        ret: u32,
    },
    /// Returned through `$ra` to `pc`.
    Return(u32),
    /// The program halts.
    Halt,
}

impl ExitKind {
    /// The successor PC, if the program continues.
    pub fn next_pc(&self) -> Option<u32> {
        match *self {
            ExitKind::Fall(pc) | ExitKind::Jump(pc) | ExitKind::Return(pc) => Some(pc),
            ExitKind::Call { target, .. } => Some(target),
            ExitKind::Halt => None,
        }
    }
}

/// Why a unit made no progress this cycle (paper Section 3 taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallClass {
    /// Issued at least one instruction.
    Busy,
    /// Oldest ready-to-issue instruction waits on an inter-task register.
    InterTask,
    /// Waiting on an intra-task dependence, cache, FU or fetch.
    IntraTask,
    /// Task complete; waiting to be retired at the head.
    WaitRetire,
    /// Blocked allocating ARB space.
    ArbFull,
    /// No task assigned.
    Idle,
}

/// Per-task cycle/instruction counters, classified per Section 3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskCounters {
    /// Cycles with at least one issue.
    pub busy_cycles: u64,
    /// Cycles stalled on inter-task register communication.
    pub inter_task_cycles: u64,
    /// Cycles stalled on intra-task dependences/fetch/FUs/cache.
    pub intra_task_cycles: u64,
    /// Cycles complete but not yet retired.
    pub wait_retire_cycles: u64,
    /// Cycles stalled on ARB capacity.
    pub arb_stall_cycles: u64,
    /// Instructions issued (architectural path within the task).
    pub instructions: u64,
}

impl TaskCounters {
    /// Total accounted cycles.
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles
            + self.inter_task_cycles
            + self.intra_task_cycles
            + self.wait_retire_cycles
            + self.arb_stall_cycles
    }
}

/// The result of one cycle of execution.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Instructions issued this cycle.
    pub issued: u32,
    /// Stall classification ([`StallClass::Busy`] when `issued > 0`).
    pub stall: Option<StallClass>,
    /// The task's exit, reported exactly once when its stop resolves.
    pub exit: Option<ExitKind>,
    /// ARB stages whose tasks must be squashed (memory-order violations
    /// caused by stores issued this cycle), earliest first.
    pub violations: Vec<usize>,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    seq: u64,
    pc: u32,
    instr: Instr,
    /// Predecoded classification of `instr` (carried from fetch so the
    /// issue and hazard logic never re-match on the `Op`).
    meta: InstrMeta,
    ready_from: u64,
    /// Where fetch continued after this instruction (`None`: fetch
    /// stalled awaiting this instruction's resolution).
    next_fetched: Option<u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FetchMode {
    Run,
    WaitControl,
    Stopped,
}

#[derive(Debug)]
enum Blocked {
    NotDecoded,
    WaitLocal,
    WaitRemote,
    Fu,
    Hazard,
    ArbFull,
}

/// One multiscalar processing unit (also used standalone as the scalar
/// baseline processor).
pub struct ProcessingUnit {
    id: usize,
    cfg: UnitConfig,
    regs: RegFile,
    icache: ICache,
    fu: FuPool,

    active: bool,
    create: RegMask,
    sent: RegMask,
    release_on_arrival: RegMask,

    fetch_pc: u32,
    fetch_ready_at: u64,
    fetch_mode: FetchMode,
    buf: VecDeque<Slot>,
    next_seq: u64,

    outstanding_max: u64,
    stop_resolved: bool,
    exit_kind: Option<ExitKind>,
    exit_reported: bool,
    completion_handled: bool,

    fwd_vals: [u64; NUM_REGS],
    fwd_known: RegMask,
    pending_sends: Vec<(u64, Reg, u64)>,

    counters: TaskCounters,
    fault: Option<String>,
    /// Fine-grained reason for the most recent zero-issue cycle (`None`
    /// while issuing); surfaced in diagnostic snapshots.
    last_stall: Option<StallReason>,
    /// Cumulative stalled cycles per reason over the unit's lifetime,
    /// indexed by [`StallReason::index`]. Deliberately *not* reset on
    /// task assignment: diagnostic snapshots want the whole history,
    /// and per-task slices come from the cycle accountant instead.
    stall_hist: [u64; StallReason::COUNT],
    /// Event-driven parking (DESIGN.md §13): while `now < parked_until`,
    /// [`ProcessingUnit::tick`] takes a fast path that replays the
    /// cached quiet classification instead of re-deriving it — the
    /// [`ProcessingUnit::quiet_until`] certificate proved every such
    /// cycle is a no-op with a constant stall reason. Any external
    /// input (ring delivery, assignment, squash) clears the park.
    parked_until: u64,
    /// The stall reason every parked cycle replays.
    parked_reason: StallReason,
    /// Whether ticks may park (off under fault injection, or when the
    /// caller wants the classic fully re-derived per-cycle loop).
    park_enabled: bool,
    /// Host-side telemetry: (probe attempts, successful parks, parked
    /// cycles replayed). Never part of simulated results.
    park_stats: (u64, u64, u64),
    /// A park was established and has not been assessed yet.
    park_open: bool,
    /// `park_stats.2` at the moment the open park was established —
    /// assessment measures the park's realized yield against it.
    park_snap: u64,
    /// Probe cooldown: decremented instead of probing. Set when a park
    /// dies young (an external input kills it after < 2 cheap cycles —
    /// the churn pattern where e.g. a remote value arrives one cycle
    /// after the park). Purely a host-time heuristic: parking is
    /// observationally neutral, so backing off cannot change results.
    park_debt: u8,
}

impl ProcessingUnit {
    /// Builds unit `id` with the given configuration.
    pub fn new(id: usize, cfg: UnitConfig) -> ProcessingUnit {
        ProcessingUnit {
            id,
            cfg,
            regs: RegFile::new(),
            icache: ICache::new(cfg.icache),
            fu: FuPool::new(cfg.issue_width),
            active: false,
            create: RegMask::EMPTY,
            sent: RegMask::EMPTY,
            release_on_arrival: RegMask::EMPTY,
            fetch_pc: 0,
            fetch_ready_at: 0,
            fetch_mode: FetchMode::Stopped,
            buf: VecDeque::new(),
            next_seq: 0,
            outstanding_max: 0,
            stop_resolved: false,
            exit_kind: None,
            exit_reported: false,
            completion_handled: false,
            fwd_vals: [0; NUM_REGS],
            fwd_known: RegMask::EMPTY,
            pending_sends: Vec::new(),
            counters: TaskCounters::default(),
            fault: None,
            last_stall: None,
            stall_hist: [0; StallReason::COUNT],
            parked_until: 0,
            parked_reason: StallReason::FetchEmpty,
            park_enabled: true,
            park_stats: (0, 0, 0),
            park_open: false,
            park_snap: 0,
            park_debt: 0,
        }
    }

    /// Host-side parking telemetry: `(probes, parks, cycles replayed)`.
    pub fn park_stats(&self) -> (u64, u64, u64) {
        self.park_stats
    }

    /// The live park certificate covering cycle `from`, if any: the
    /// cached `(wake, reason)` of an earlier [`ProcessingUnit::quiet_until`]
    /// probe. Still sound because every external input (ring delivery,
    /// assignment, squash, retirement) clears the park, so the quiet
    /// span it proved continues to hold. Lets the whole-machine skip
    /// reuse the unit's own conclusion instead of re-deriving it.
    pub fn parked_claim(&self, from: u64) -> Option<(u64, StallReason)> {
        if from < self.parked_until {
            Some((self.parked_until, self.parked_reason))
        } else {
            None
        }
    }

    /// Enables or disables event-driven parking. Parking is
    /// observationally neutral — ticks produce identical outputs,
    /// counters, and stall classifications either way — so this only
    /// trades host time; it must be off under fault injection, whose
    /// perturbations are cycle-indexed.
    pub fn set_parking(&mut self, on: bool) {
        self.park_enabled = on;
        self.parked_until = 0;
    }

    /// This unit's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether a task is currently assigned.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// A simulation fault raised by this unit (e.g. fetch outside text).
    pub fn fault(&self) -> Option<&str> {
        self.fault.as_deref()
    }

    /// Assigns a task: entry PC, create mask, the predecessor's forwarded
    /// register view, and the set of registers still awaiting delivery.
    ///
    /// # Panics
    /// Panics if the unit is already active.
    pub fn assign_task(
        &mut self,
        entry: u32,
        create: RegMask,
        vals: &[u64; NUM_REGS],
        awaiting: RegMask,
        now: u64,
    ) {
        assert!(!self.active, "unit {} already has a task", self.id);
        self.active = true;
        self.create = create;
        self.sent = RegMask::EMPTY;
        self.release_on_arrival = RegMask::EMPTY;
        self.regs.install(vals, awaiting);
        self.fetch_pc = entry;
        self.fetch_ready_at = now;
        self.fetch_mode = FetchMode::Run;
        self.buf.clear();
        self.outstanding_max = now;
        self.stop_resolved = false;
        self.exit_kind = None;
        self.exit_reported = false;
        self.completion_handled = false;
        self.fwd_vals = *vals;
        // Pass-through values: everything known that this task does not
        // itself create is immediately visible to successors.
        self.fwd_known = RegMask::from_bits(!0).difference(awaiting).difference(create);
        self.pending_sends.clear();
        self.counters = TaskCounters::default();
        self.fault = None;
        self.last_stall = None;
        // Kill any live park; `park_open`/`park_debt` deliberately
        // survive task boundaries — probe churn (e.g. wait-retire parks
        // killed at every retirement) repeats across consecutive tasks
        // on the same unit, so the backoff must too.
        self.parked_until = 0;
    }

    /// Squash: discard the task and all pipeline state. The forwarded view
    /// becomes meaningless until the next [`ProcessingUnit::assign_task`].
    pub fn clear(&mut self) {
        self.active = false;
        self.buf.clear();
        self.pending_sends.clear();
        self.fetch_mode = FetchMode::Stopped;
        self.release_on_arrival = RegMask::EMPTY;
        self.parked_until = 0;
    }

    /// Retire: free the unit, keeping the forwarded view for successor
    /// task assignment.
    ///
    /// # Panics
    /// Panics if the task is not complete.
    pub fn retire(&mut self, now: u64) {
        assert!(self.is_complete(now), "retiring incomplete task on unit {}", self.id);
        self.active = false;
        self.fetch_mode = FetchMode::Stopped;
        self.parked_until = 0;
    }

    /// Whether the assigned task has fully completed: its stop resolved,
    /// all issued instructions are done, every value has been forwarded,
    /// and all awaited inter-task values have arrived (so the forwarded
    /// view is total — required for in-order retirement).
    pub fn is_complete(&self, now: u64) -> bool {
        self.active
            && self.stop_resolved
            && self.buf.is_empty()
            && now >= self.outstanding_max
            && self.pending_sends.is_empty()
            && self.release_on_arrival.is_empty()
            && self.regs.awaiting().is_empty()
    }

    /// The exit of the completed task.
    pub fn exit_kind(&self) -> Option<ExitKind> {
        self.exit_kind
    }

    /// The per-task counters (typically read at retire/squash).
    pub fn counters(&self) -> TaskCounters {
        self.counters
    }

    /// The forwarded register view exposed to the successor task:
    /// `(values, known)`.
    pub fn fwd_view(&self) -> (&[u64; NUM_REGS], RegMask) {
        (&self.fwd_vals, self.fwd_known)
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> ms_memsys::CacheStats {
        self.icache.stats()
    }

    /// Reads the current architectural value of `r` in this unit's
    /// register file (diagnostics and end-of-run inspection).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs.read(r)
    }

    /// Registers still awaiting inter-task delivery (diagnostics).
    pub fn awaiting_regs(&self) -> RegMask {
        self.regs.awaiting()
    }

    /// Why the unit issued nothing on its most recent zero-issue cycle
    /// (`None` while issuing, or before the first stall). Diagnostics.
    pub fn stall_reason(&self) -> Option<StallReason> {
        self.last_stall
    }

    /// Cumulative stalled cycles per reason over the unit's lifetime
    /// (across task assignments), indexed by [`StallReason::index`].
    pub fn stall_histogram(&self) -> &[u64; StallReason::COUNT] {
        &self.stall_hist
    }

    /// Ring delivery of register `r` with value `v` at cycle `now`.
    /// Returns whether the message should propagate to the successor unit.
    pub fn receive(&mut self, r: Reg, v: u64, now: u64) -> bool {
        if !self.active {
            return false;
        }
        // An external input: whatever quiet span was proven no longer
        // holds (the delivered value may unblock issue next cycle).
        self.parked_until = 0;
        self.regs.deliver(r, v, now);
        if self.create.contains(r) {
            if self.release_on_arrival.remove(r) {
                // A release (or end-of-task auto-release) was waiting for
                // this value: pass it on now. `sent` was already marked
                // when the release deferred, so emit directly.
                self.emit_send(now + 1, r, v);
            }
            false
        } else {
            self.fwd_vals[r.index()] = v;
            self.fwd_known.insert(r);
            true
        }
    }

    /// Drains ring sends due at or before `now`.
    pub fn take_sends(&mut self, now: u64) -> Vec<(Reg, u64)> {
        let mut due = Vec::new();
        self.drain_sends_into(now, &mut due);
        due
    }

    /// Like [`ProcessingUnit::take_sends`], but appends into a
    /// caller-owned buffer — the allocation-free form the per-cycle
    /// processor step uses.
    pub fn drain_sends_into(&mut self, now: u64, due: &mut Vec<(Reg, u64)>) {
        self.pending_sends.retain(|&(cycle, r, v)| {
            if cycle <= now {
                due.push((r, v));
                false
            } else {
                true
            }
        });
    }

    fn schedule_send(&mut self, cycle: u64, r: Reg, v: u64) {
        // "A value bound to a register is only sent once per task."
        if !self.sent.insert(r) {
            return;
        }
        self.emit_send(cycle, r, v);
    }

    /// Unconditionally queues a ring send of `r` (dedup handled by the
    /// caller) and exposes the value in the forwarded view.
    fn emit_send(&mut self, cycle: u64, r: Reg, v: u64) {
        debug_assert!(
            self.create.contains(r),
            "unit {} forwards {r} outside its create mask",
            self.id
        );
        self.fwd_vals[r.index()] = v;
        self.fwd_known.insert(r);
        self.pending_sends.push((cycle, r, v));
    }

    /// Runs one cycle. `prog` supplies (predecoded) instruction fetch;
    /// `ports` supplies the shared memory system.
    pub fn tick(
        &mut self,
        now: u64,
        prog: &PredecodedProgram,
        ports: &mut MemPorts<'_>,
    ) -> TickOutput {
        self.tick_traced(now, prog, ports, &mut NullSink)
    }

    /// [`ProcessingUnit::tick`] with trace instrumentation: emits
    /// fine-grained `UnitStall` reasons, fetch redirects, and the memory
    /// events of every access made this cycle. With [`NullSink`] this is
    /// exactly `tick` — the instrumentation compiles away.
    pub fn tick_traced<S: TraceSink>(
        &mut self,
        now: u64,
        prog: &PredecodedProgram,
        ports: &mut MemPorts<'_>,
        sink: &mut S,
    ) -> TickOutput {
        let mut out = TickOutput::default();
        if !self.active || self.fault.is_some() {
            out.stall = Some(StallClass::Idle);
            return out;
        }
        if now < self.parked_until {
            // Parked fast path: a quiet_until certificate proved this
            // cycle is a no-op with this exact classification, so replay
            // the bookkeeping the slow path would have produced.
            let reason = self.parked_reason;
            self.park_stats.2 += 1;
            self.last_stall = Some(reason);
            self.stall_hist[reason.index()] += 1;
            if S::ENABLED {
                sink.event(&TraceEvent::UnitStall { cycle: now, unit: self.id, reason });
            }
            let stall = match reason {
                StallReason::RemoteDep => StallClass::InterTask,
                StallReason::WaitRetire => StallClass::WaitRetire,
                _ => StallClass::IntraTask,
            };
            match stall {
                StallClass::InterTask => self.counters.inter_task_cycles += 1,
                StallClass::WaitRetire => self.counters.wait_retire_cycles += 1,
                _ => self.counters.intra_task_cycles += 1,
            }
            out.stall = Some(stall);
            return out;
        }
        self.fu.begin_cycle();

        let mut first_block: Option<Blocked> = None;
        let mut issued = 0u32;
        if self.cfg.ooo {
            let mut idx = 0usize;
            while issued < self.cfg.issue_width as u32 && idx < self.cfg.window.min(self.buf.len())
            {
                match self.try_issue(idx, now, prog, ports, &mut out, sink) {
                    Ok(()) => issued += 1,
                    Err(b) => {
                        if first_block.is_none() {
                            first_block = Some(b);
                        }
                        idx += 1;
                    }
                }
            }
        } else {
            while issued < self.cfg.issue_width as u32 && !self.buf.is_empty() {
                match self.try_issue(0, now, prog, ports, &mut out, sink) {
                    Ok(()) => issued += 1,
                    Err(b) => {
                        first_block = Some(b);
                        break;
                    }
                }
            }
        }
        out.issued = issued;
        self.counters.instructions += issued as u64;

        self.fetch_phase(now, prog, ports, sink);
        self.completion_phase(now);

        // Classify the cycle.
        let stall = if issued > 0 {
            StallClass::Busy
        } else if self.stop_resolved && self.buf.is_empty() {
            if now >= self.outstanding_max {
                StallClass::WaitRetire
            } else {
                StallClass::IntraTask
            }
        } else {
            match first_block {
                Some(Blocked::WaitRemote) => StallClass::InterTask,
                Some(Blocked::ArbFull) => StallClass::ArbFull,
                _ => StallClass::IntraTask,
            }
        };
        if issued == 0 {
            // Refine the Section-3 class into a per-cycle reason. Kept
            // up to date even untraced: diagnostic snapshots report it.
            let reason = if self.stop_resolved && self.buf.is_empty() {
                if now >= self.outstanding_max {
                    StallReason::WaitRetire
                } else {
                    StallReason::Drain
                }
            } else {
                match first_block {
                    None | Some(Blocked::NotDecoded) => {
                        // A fetch bubble with a miss fill in flight is a
                        // memory-system penalty, not a decode artifact.
                        if now < self.fetch_ready_at && self.icache.last_fetch_missed() {
                            StallReason::CacheMiss
                        } else {
                            StallReason::FetchEmpty
                        }
                    }
                    Some(Blocked::WaitLocal) => StallReason::LocalDep,
                    Some(Blocked::WaitRemote) => StallReason::RemoteDep,
                    Some(Blocked::Fu) => StallReason::FuBusy,
                    Some(Blocked::Hazard) => StallReason::Hazard,
                    Some(Blocked::ArbFull) => StallReason::ArbFull,
                }
            };
            self.last_stall = Some(reason);
            self.stall_hist[reason.index()] += 1;
            if S::ENABLED {
                sink.event(&TraceEvent::UnitStall { cycle: now, unit: self.id, reason });
            }
            // Try to park for the rest of this stall. Only reasons that
            // produce multi-cycle waits are worth the probe: FetchEmpty
            // resolves next cycle (the fetch pipeline refills every
            // cycle), and FuBusy/Hazard/ArbFull sit next to an issuable
            // slot, where the probe would refuse anyway.
            if self.park_enabled
                && matches!(
                    reason,
                    StallReason::LocalDep
                        | StallReason::RemoteDep
                        | StallReason::CacheMiss
                        | StallReason::Drain
                        | StallReason::WaitRetire
                )
            {
                // Assess the previous park first: one killed *externally*
                // (`parked_until` zeroed by an input) after < 2 realized
                // cycles (counting cycles the whole-machine skip consumed
                // on its behalf) means probes here churn — e.g. a
                // remote-dep park whose value arrives one cycle later —
                // so hold off for a few stall cycles before paying again.
                // A park that ran out naturally proved an exact span and
                // is never punished, however short.
                if self.park_open {
                    self.park_open = false;
                    if self.parked_until == 0 && self.park_stats.2.wrapping_sub(self.park_snap) < 2
                    {
                        self.park_debt = 8;
                    }
                }
                if self.park_debt > 0 {
                    self.park_debt -= 1;
                } else {
                    self.park_stats.0 += 1;
                    let mut parked = false;
                    if let Some((wake, span_reason)) = self.quiet_until(now + 1) {
                        if wake > now + 1 {
                            self.park_stats.1 += 1;
                            self.parked_until = wake;
                            self.parked_reason = span_reason;
                            self.park_open = true;
                            self.park_snap = self.park_stats.2;
                            parked = true;
                        }
                    }
                    // A failed probe (no certificate, or a 1-cycle span not
                    // worth parking) predicts another failure next cycle,
                    // so sit out one cycle before probing again. This
                    // halves probe waste on workloads that stall one cycle
                    // at a time, while a real quiet span loses at most one
                    // cycle of coverage — longer backoffs measurably eat
                    // into short parks (Compress averages ~13-cycle spans).
                    if !parked {
                        self.park_debt = 1;
                    }
                }
            }
        } else {
            self.last_stall = None;
        }
        match stall {
            StallClass::Busy => self.counters.busy_cycles += 1,
            StallClass::InterTask => self.counters.inter_task_cycles += 1,
            StallClass::IntraTask => self.counters.intra_task_cycles += 1,
            StallClass::WaitRetire => self.counters.wait_retire_cycles += 1,
            StallClass::ArbFull => self.counters.arb_stall_cycles += 1,
            StallClass::Idle => {}
        }
        out.stall = Some(stall);

        if self.stop_resolved && !self.exit_reported {
            self.exit_reported = true;
            out.exit = self.exit_kind;
        }
        out
    }

    /// Attempts to issue the instruction at buffer index `idx`.
    fn try_issue<S: TraceSink>(
        &mut self,
        idx: usize,
        now: u64,
        _prog: &PredecodedProgram,
        ports: &mut MemPorts<'_>,
        out: &mut TickOutput,
        sink: &mut S,
    ) -> Result<(), Blocked> {
        // Reject via a borrow first: the blocked checks below run every
        // stall cycle, and copying the whole `Slot` out just to read a
        // few fields showed up in profiles.
        let slot_ref = &self.buf[idx];
        if slot_ref.ready_from > now {
            return Err(Blocked::NotDecoded);
        }
        // Operand readiness. A release is exempt: a register that has
        // not arrived yet is passed through on arrival (see the
        // `release_on_arrival` handling at execute) rather than stalling
        // issue — its sources still participate in the out-of-order
        // hazard checks below so it cannot slip past an older writer.
        let is_release = matches!(slot_ref.instr.op, Op::Release { .. });
        if !is_release {
            let mut remote = false;
            let mut local = false;
            for r in slot_ref.meta.uses.iter() {
                match self.regs.status(r, now) {
                    ReadStatus::Ready => {}
                    ReadStatus::WaitLocal => local = true,
                    ReadStatus::WaitRemote => remote = true,
                }
            }
            if remote {
                return Err(Blocked::WaitRemote);
            }
            if local {
                return Err(Blocked::WaitLocal);
            }
        }
        // Out-of-order hazards against older, unissued instructions.
        if self.cfg.ooo && idx > 0 {
            let me = &self.buf[idx].meta;
            let my_def = me.def;
            let my_is_mem = me.is_load || me.is_store;
            for j in 0..idx {
                let older = &self.buf[j].meta;
                if older.is_control {
                    return Err(Blocked::Hazard);
                }
                if my_is_mem && (older.is_load || older.is_store) {
                    return Err(Blocked::Hazard);
                }
                // RAW: older defines one of my sources.
                if let Some(d) = older.def {
                    if me.uses_mask.contains(d) {
                        return Err(Blocked::Hazard);
                    }
                    // WAW.
                    if my_def == Some(d) && !d.is_zero() {
                        return Err(Blocked::Hazard);
                    }
                }
                // WAR: older reads my destination.
                if let Some(d) = my_def {
                    if !d.is_zero() && older.uses_mask.contains(d) {
                        return Err(Blocked::Hazard);
                    }
                }
            }
        }
        let fu_class = self.buf[idx].meta.fu_class;
        if !self.fu.available(fu_class) {
            return Err(Blocked::Fu);
        }
        // Every reject path is behind us (`issue_mem` can still fail, but
        // needs the copy anyway): take the slot by value.
        let slot = self.buf[idx];

        // Execute (functional) and derive timing.
        let regs = &self.regs;
        let outcome = execute(&slot.instr, slot.pc, |r| regs.read(r));
        let lat = self.cfg.latencies.latency(slot.meta.exec_class);
        let mut done = now + lat;

        if let Some(mem) = outcome.mem {
            done = self.issue_mem(&slot, mem, now + lat, ports, out, sink)?;
        }
        // Commit the FU now that nothing can fail.
        let ok = self.fu.try_acquire(fu_class);
        debug_assert!(ok, "FU availability checked above");

        if let Some((rd, v)) = outcome.writeback {
            self.regs.write(rd, v, done);
            if slot.instr.tags.forward {
                self.schedule_send(done, rd, v);
            }
        }
        if let Some(regs) = outcome.release {
            for r in regs.iter() {
                if self.sent.contains(r) {
                    continue; // already forwarded/released: ignored
                }
                if self.regs.status(r, u64::MAX) == ReadStatus::WaitRemote {
                    // Not yet arrived: pass it through on arrival.
                    self.sent.insert(r);
                    self.release_on_arrival.insert(r);
                } else {
                    let v = self.regs.read(r);
                    self.schedule_send(done, r, v);
                }
            }
        }

        // Stop / control resolution.
        let taken = outcome.control.map(|c| c.taken).unwrap_or(false);
        let stop_fires = outcome.halt
            || match slot.instr.tags.stop {
                StopCond::None => false,
                cond => cond.fires(taken),
            };
        let this_seq = slot.seq;
        if stop_fires {
            self.stop_resolved = true;
            self.exit_kind = Some(self.classify_exit(&slot, &outcome));
            self.buf.retain(|s| s.seq <= this_seq);
            self.fetch_mode = FetchMode::Stopped;
        } else if let Some(c) = outcome.control {
            match slot.next_fetched {
                Some(next) if next == c.next_pc => {} // fetch already went the right way
                _ => {
                    // Redirect: flush younger and refetch (2-cycle bubble).
                    self.buf.retain(|s| s.seq <= this_seq);
                    self.fetch_pc = c.next_pc;
                    self.fetch_ready_at = now + 2;
                    self.fetch_mode = FetchMode::Run;
                    if S::ENABLED {
                        sink.event(&TraceEvent::UnitRedirect {
                            cycle: now,
                            unit: self.id,
                            to_pc: c.next_pc,
                        });
                    }
                }
            }
        }

        self.outstanding_max = self.outstanding_max.max(done);
        // Remove the issued slot.
        let pos = self.buf.iter().position(|s| s.seq == this_seq).expect("issued slot present");
        self.buf.remove(pos);
        Ok(())
    }

    fn issue_mem<S: TraceSink>(
        &mut self,
        slot: &Slot,
        req: MemRequest,
        access_at: u64,
        ports: &mut MemPorts<'_>,
        out: &mut TickOutput,
        sink: &mut S,
    ) -> Result<u64, Blocked> {
        if req.is_store {
            match ports.arb.as_deref_mut() {
                Some(arb) => {
                    let violations = arb
                        .store_traced(
                            access_at,
                            ports.stage,
                            req.addr,
                            req.size,
                            req.value,
                            ports.active_ranks,
                            sink,
                        )
                        .map_err(|_| Blocked::ArbFull)?;
                    out.violations.extend(violations);
                    Ok(ports.banks.access_store(access_at, req.addr))
                }
                None => {
                    ports.mem.write_le(req.addr, req.size, req.value);
                    Ok(ports.banks.access_store_allocate(access_at, req.addr, ports.bus))
                }
            }
        } else {
            let (raw, forwarded) = match ports.arb.as_deref_mut() {
                Some(arb) => {
                    let r = arb
                        .load_traced(access_at, ports.stage, req.addr, req.size, ports.mem, sink)
                        .map_err(|_| Blocked::ArbFull)?;
                    (r.value, r.forwarded)
                }
                None => (ports.mem.read_le(req.addr, req.size), false),
            };
            let completion =
                ports.banks.access_load_traced(access_at, req.addr, forwarded, ports.bus, sink);
            let value = extend_load_width(req, raw);
            let dest = req.dest.expect("loads have destinations");
            self.regs.write(dest, value, completion);
            if slot.instr.tags.forward {
                self.schedule_send(completion, dest, value);
            }
            Ok(completion)
        }
    }

    fn classify_exit(&self, slot: &Slot, outcome: &crate::exec::Outcome) -> ExitKind {
        if outcome.halt {
            return ExitKind::Halt;
        }
        match slot.instr.op {
            Op::Jal { target } => ExitKind::Call { target, ret: slot.pc + 4 },
            Op::Jalr { .. } => {
                let target = outcome.control.expect("jalr resolves control").next_pc;
                ExitKind::Call { target, ret: slot.pc + 4 }
            }
            Op::Jr { rs } => {
                let target = outcome.control.expect("jr resolves control").next_pc;
                if rs == Reg::RA {
                    ExitKind::Return(target)
                } else {
                    ExitKind::Jump(target)
                }
            }
            _ => match outcome.control {
                Some(c) => ExitKind::Jump(c.next_pc),
                None => ExitKind::Fall(slot.pc + 4),
            },
        }
    }

    fn fetch_phase<S: TraceSink>(
        &mut self,
        now: u64,
        prog: &PredecodedProgram,
        ports: &mut MemPorts<'_>,
        sink: &mut S,
    ) {
        if self.fetch_mode != FetchMode::Run
            || self.buf.len() >= self.cfg.fetch_buffer
            || now < self.fetch_ready_at
        {
            return;
        }
        let avail = self.icache.fetch_traced(now, self.fetch_pc, ports.bus, self.id, sink);
        if avail > now + self.cfg.icache.hit_time {
            // Miss: resume when the fill completes.
            self.fetch_ready_at = avail;
            return;
        }
        let first_pc = self.fetch_pc;
        for k in 0..self.cfg.issue_width {
            if self.buf.len() >= self.cfg.fetch_buffer {
                break;
            }
            if k > 0 && !self.icache.same_fetch_group(first_pc, k as u32 + 1) {
                break;
            }
            let pc = self.fetch_pc;
            let Some((instr, meta)) = prog.fetch(pc) else {
                self.fault = Some(format!(
                    "unit {}: instruction fetch outside text segment at {pc:#x}",
                    self.id
                ));
                self.fetch_mode = FetchMode::Stopped;
                return;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            let ready_from = now + 2; // IF at `now`, ID at now+1, issue-eligible next
            let mut slot = Slot { seq, pc, instr, meta, ready_from, next_fetched: None };

            match instr.op {
                Op::Halt => {
                    slot.next_fetched = None;
                    self.buf.push_back(slot);
                    self.fetch_mode = FetchMode::Stopped;
                    return;
                }
                Op::J { target } | Op::Jal { target } => {
                    // Decode-time redirect: one bubble cycle.
                    slot.next_fetched = Some(target);
                    self.buf.push_back(slot);
                    if instr.tags.stop == StopCond::Always {
                        self.fetch_mode = FetchMode::Stopped;
                    } else {
                        self.fetch_pc = target;
                        self.fetch_ready_at = now + 2;
                    }
                    return;
                }
                Op::Jr { .. } | Op::Jalr { .. } => {
                    slot.next_fetched = None;
                    self.buf.push_back(slot);
                    self.fetch_mode = if instr.tags.stop == StopCond::Always {
                        FetchMode::Stopped
                    } else {
                        FetchMode::WaitControl
                    };
                    return;
                }
                op if op.is_branch() => {
                    match instr.tags.stop {
                        StopCond::Always | StopCond::IfNotTaken => {
                            // Either direction may end the task (or go to
                            // the taken target): nothing safe to fetch.
                            slot.next_fetched = None;
                            self.buf.push_back(slot);
                            self.fetch_mode = match instr.tags.stop {
                                StopCond::Always => FetchMode::Stopped,
                                _ => FetchMode::WaitControl,
                            };
                            return;
                        }
                        _ => {
                            // Fall-through (static not-taken) fetch.
                            slot.next_fetched = Some(pc + 4);
                            self.buf.push_back(slot);
                            self.fetch_pc = pc + 4;
                        }
                    }
                }
                _ => {
                    if instr.tags.stop == StopCond::Always {
                        slot.next_fetched = None;
                        self.buf.push_back(slot);
                        self.fetch_mode = FetchMode::Stopped;
                        return;
                    }
                    slot.next_fetched = Some(pc + 4);
                    self.buf.push_back(slot);
                    self.fetch_pc = pc + 4;
                }
            }
        }
    }

    /// The conservative skip-ahead probe (see the core crate's
    /// `DESIGN.md` §13 for the full safety argument).
    ///
    /// Decides whether every cycle in `[from, wake)` would be a pure
    /// bookkeeping tick for this unit — zero instructions issued, no
    /// fetch, no memory-system access, no completion transition, no
    /// pending ring send coming due, and a *constant* stall
    /// classification — and if so returns `(wake, reason)`: the first
    /// cycle at which the unit may act (or its classification may
    /// change), and the [`StallReason`] every skipped cycle would have
    /// been charged.
    ///
    /// Returns `None` when the unit may act at `from` itself, or when
    /// quietness cannot be cheaply proven. `wake` may be `u64::MAX` when
    /// only an *external* event (a ring delivery, squash, or retire —
    /// all bounded separately by the caller) can change this unit's
    /// state.
    pub fn quiet_until(&self, from: u64) -> Option<(u64, StallReason)> {
        if !self.active || self.fault.is_some() {
            return None;
        }
        if self.stop_resolved && !self.exit_reported {
            // The exit report is due: the caller must observe it.
            return None;
        }
        let mut wake = u64::MAX;

        // Fetch: would run once `fetch_ready_at` is reached (a miss fill
        // completing, a redirect bubble expiring). Even when fetch is
        // blocked by mode or a full buffer, `fetch_ready_at` still bounds
        // the CacheMiss → FetchEmpty classification flip.
        if self.fetch_mode == FetchMode::Run && self.buf.len() < self.cfg.fetch_buffer {
            if self.fetch_ready_at <= from {
                return None;
            }
            wake = wake.min(self.fetch_ready_at);
        } else if self.fetch_ready_at > from {
            wake = wake.min(self.fetch_ready_at);
        }

        // Completion: the one-shot auto-release fires — and the
        // Drain → WaitRetire classification flips — at `outstanding_max`.
        if self.stop_resolved && self.buf.is_empty() {
            if !self.completion_handled {
                if self.outstanding_max <= from {
                    return None;
                }
                wake = wake.min(self.outstanding_max);
            } else if self.outstanding_max > from {
                wake = wake.min(self.outstanding_max);
            }
        }

        // Pending ring sends are drained in the cycle they come due.
        for &(cycle, _, _) in &self.pending_sends {
            if cycle <= from {
                return None;
            }
            wake = wake.min(cycle);
        }

        // Issue: every slot the issue loop would consider must be
        // provably blocked at `from` (an issuable slot executes — and may
        // touch the ARB — so it is always an event, even if it would
        // bounce off a full ARB).
        let considered =
            if self.cfg.ooo { self.cfg.window.min(self.buf.len()) } else { self.buf.len().min(1) };
        for idx in 0..considered {
            wake = wake.min(self.slot_wake(idx, from)?);
        }
        if wake <= from {
            return None;
        }

        // Mirror the classification `tick` would produce for every cycle
        // of the span (the bounds above guarantee it cannot flip before
        // `wake`). FuBusy/Hazard/ArbFull are unreachable here: slot 0 is
        // never hazard-blocked, the FU pool resets each cycle, and an
        // ARB-touching slot already returned `None`.
        let reason = if self.stop_resolved && self.buf.is_empty() {
            if from >= self.outstanding_max {
                StallReason::WaitRetire
            } else {
                StallReason::Drain
            }
        } else {
            let fetch_reason = if from < self.fetch_ready_at && self.icache.last_fetch_missed() {
                StallReason::CacheMiss
            } else {
                StallReason::FetchEmpty
            };
            match self.buf.front() {
                None => fetch_reason,
                Some(slot) if slot.ready_from > from => fetch_reason,
                Some(slot) => {
                    let mut remote = false;
                    let mut local = false;
                    if !matches!(slot.instr.op, Op::Release { .. }) {
                        for r in slot.meta.uses.iter() {
                            match self.regs.status(r, from) {
                                ReadStatus::Ready => {}
                                ReadStatus::WaitLocal => local = true,
                                ReadStatus::WaitRemote => remote = true,
                            }
                        }
                    }
                    if remote {
                        StallReason::RemoteDep
                    } else if local {
                        StallReason::LocalDep
                    } else {
                        return None; // defensive: an issuable head slot
                    }
                }
            }
        };
        Some((wake, reason))
    }

    /// When can buffer slot `idx` first issue? `None` means it can issue
    /// at `from` (not a quiet cycle); `u64::MAX` means only an external
    /// event (ring delivery, or an older slot issuing) can unblock it.
    fn slot_wake(&self, idx: usize, from: u64) -> Option<u64> {
        let slot = &self.buf[idx];
        // Out-of-order hazards against older slots clear only when an
        // older slot issues — and every older slot's own wake bounds
        // that — so a hazard-blocked slot imposes no time bound itself.
        if self.cfg.ooo && idx > 0 {
            let me = &slot.meta;
            let my_def = me.def;
            let my_is_mem = me.is_load || me.is_store;
            for j in 0..idx {
                let older = &self.buf[j].meta;
                if older.is_control || (my_is_mem && (older.is_load || older.is_store)) {
                    return Some(u64::MAX);
                }
                if let Some(d) = older.def {
                    if me.uses_mask.contains(d) || (my_def == Some(d) && !d.is_zero()) {
                        return Some(u64::MAX);
                    }
                }
                if let Some(d) = my_def {
                    if !d.is_zero() && older.uses_mask.contains(d) {
                        return Some(u64::MAX);
                    }
                }
            }
        }
        if idx == 0 && slot.ready_from > from {
            // The head slot drives the stall classification, which flips
            // from a fetch reason to an operand reason once the slot
            // decodes: stop the skip at the flip, not at eventual issue.
            return Some(slot.ready_from);
        }
        let mut t = slot.ready_from;
        if !matches!(slot.instr.op, Op::Release { .. }) {
            for r in slot.meta.uses.iter() {
                match self.regs.status(r, from) {
                    ReadStatus::Ready => {}
                    ReadStatus::WaitLocal => t = t.max(self.regs.ready_at(r)),
                    // Cleared only by a ring delivery.
                    ReadStatus::WaitRemote => return Some(u64::MAX),
                }
            }
        }
        if t <= from {
            None // issuable at `from`
        } else {
            Some(t)
        }
    }

    /// Applies the per-cycle bookkeeping of `n` consecutive ticks that
    /// [`ProcessingUnit::quiet_until`] proved to be no-ops: the
    /// Section-3 class counter, the fine-grained stall histogram and the
    /// last-stall marker end up exactly as if [`ProcessingUnit::tick`]
    /// had run `n` times classifying `reason` each cycle.
    pub fn skip_charge(&mut self, n: u64, reason: StallReason) {
        debug_assert!(self.active, "skip_charge on an idle unit");
        match reason {
            StallReason::RemoteDep => self.counters.inter_task_cycles += n,
            StallReason::WaitRetire => self.counters.wait_retire_cycles += n,
            StallReason::ArbFull => self.counters.arb_stall_cycles += n,
            _ => self.counters.intra_task_cycles += n,
        }
        self.stall_hist[reason.index()] += n;
        self.last_stall = Some(reason);
        // Cycles the whole-machine skip consumed under a live park count
        // as realized yield, so the assessment above doesn't mistake a
        // good park for churn just because the global jump ate its span.
        if self.parked_until != 0 {
            self.park_stats.2 += n;
        }
    }

    fn completion_phase(&mut self, now: u64) {
        if self.completion_handled
            || !self.stop_resolved
            || !self.buf.is_empty()
            || now < self.outstanding_max
        {
            return;
        }
        self.completion_handled = true;
        // Auto-release: any create-mask register not yet forwarded is
        // released at task completion ("the option exists to wait until
        // all instructions in a task have been executed", Section 2.2 —
        // correctness net under explicit releases).
        let unsent = self.create.difference(self.sent);
        for r in unsent.iter() {
            if self.regs.status(r, u64::MAX) == ReadStatus::WaitRemote {
                self.sent.insert(r);
                self.release_on_arrival.insert(r);
            } else {
                let v = self.regs.read(r);
                self.schedule_send(now, r, v);
            }
        }
    }
}

fn extend_load_width(req: MemRequest, raw: u64) -> u64 {
    use ms_isa::MemWidth;
    let width = match req.size {
        1 => MemWidth::B,
        2 => MemWidth::H,
        4 => MemWidth::W,
        _ => MemWidth::D,
    };
    extend_load(width, req.signed, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_asm::{assemble, AsmMode};
    use ms_memsys::{BusConfig, DataBanksConfig};

    struct Rig {
        unit: ProcessingUnit,
        mem: Memory,
        bus: MemBus,
        banks: DataBanks,
        prog: PredecodedProgram,
        now: u64,
    }

    impl Rig {
        fn scalar(src: &str) -> Rig {
            Self::build(src, UnitConfig::default())
        }

        fn build(src: &str, cfg: UnitConfig) -> Rig {
            let prog = PredecodedProgram::new(assemble(src, AsmMode::Scalar).expect("assemble"));
            let mut mem = Memory::new();
            for seg in &prog.data {
                mem.write_slice(seg.base, &seg.bytes);
            }
            let mut unit = ProcessingUnit::new(0, cfg);
            let vals = [0u64; NUM_REGS];
            unit.assign_task(prog.entry, RegMask::EMPTY, &vals, RegMask::EMPTY, 0);
            Rig {
                unit,
                mem,
                bus: MemBus::new(BusConfig::default()),
                banks: DataBanks::new(DataBanksConfig::scalar()),
                prog,
                now: 0,
            }
        }

        /// Runs until halt; returns (cycles, instructions).
        fn run(&mut self) -> (u64, u64) {
            for _ in 0..200_000u64 {
                let mut ports = MemPorts {
                    mem: &mut self.mem,
                    bus: &mut self.bus,
                    banks: &mut self.banks,
                    arb: None,
                    stage: 0,
                    active_ranks: 1,
                };
                let out = self.unit.tick(self.now, &self.prog, &mut ports);
                if let Some(f) = self.unit.fault() {
                    panic!("fault: {f}");
                }
                if out.exit == Some(ExitKind::Halt) && self.unit.is_complete(self.now) {
                    let c = self.unit.counters();
                    return (self.now + 1, c.instructions);
                }
                if self.unit.is_complete(self.now) {
                    let c = self.unit.counters();
                    return (self.now + 1, c.instructions);
                }
                self.now += 1;
            }
            panic!("did not halt");
        }

        fn reg(&self, r: Reg) -> u64 {
            self.unit.regs.read(r)
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut rig = Rig::scalar("main:\n li $2, 10\n li $3, 32\n addu $4, $2, $3\n halt\n");
        let (_, instrs) = rig.run();
        assert_eq!(instrs, 4);
        assert_eq!(rig.reg(Reg::int(4)), 42);
    }

    #[test]
    fn loop_executes_correct_count() {
        let mut rig = Rig::scalar(
            "main:\n li $2, 0\n li $3, 10\nL: addiu $2, $2, 1\n bne $2, $3, L\n halt\n",
        );
        let (_, instrs) = rig.run();
        assert_eq!(rig.reg(Reg::int(2)), 10);
        assert_eq!(instrs, 2 + 10 * 2 + 1);
    }

    #[test]
    fn memory_round_trip_scalar() {
        let mut rig = Rig::scalar(
            "\n.data\nbuf: .space 16\n.text\nmain:\n la $5, buf\n li $2, 1234\n sw $2, 8($5)\n lw $3, 8($5)\n halt\n",
        );
        rig.run();
        assert_eq!(rig.reg(Reg::int(3)), 1234);
        let buf = rig.prog.symbol("buf").unwrap();
        assert_eq!(rig.mem.read_le(buf + 8, 4), 1234);
    }

    #[test]
    fn function_call_and_return() {
        let mut rig = Rig::scalar(
            "main:\n li $4, 5\n jal double\n move $6, $2\n halt\ndouble:\n addu $2, $4, $4\n jr $31\n",
        );
        rig.run();
        assert_eq!(rig.reg(Reg::int(6)), 10);
    }

    #[test]
    fn load_use_has_latency() {
        // A dependent use of a load must wait; an independent pair can
        // overlap. Compare cycle counts.
        let dep = "\n.data\nv: .word 7\n.text\nmain:\n la $5, v\n lw $2, 0($5)\n addu $3, $2, $2\n halt\n";
        let indep = "\n.data\nv: .word 7\n.text\nmain:\n la $5, v\n lw $2, 0($5)\n addu $3, $5, $5\n halt\n";
        let (c_dep, _) = Rig::scalar(dep).run();
        let (c_indep, _) = Rig::scalar(indep).run();
        assert!(c_dep > c_indep, "dep {c_dep} vs indep {c_indep}");
    }

    #[test]
    fn taken_branch_costs_more_than_not_taken() {
        // Loop with taken back-edges vs straight-line of same length.
        let taken = "main:\n li $3, 20\n li $2, 0\nL: addiu $2, $2, 1\n bne $2, $3, L\n halt\n";
        let (cycles_taken, n1) = Rig::scalar(taken).run();
        // Same dynamic instruction count, no taken branches.
        let mut straight = String::from("main:\n li $3, 20\n li $2, 0\n");
        for _ in 0..20 {
            straight.push_str(" addiu $2, $2, 1\n beq $2, $0, NEVER\n");
        }
        straight.push_str("NEVER: halt\n");
        let (cycles_straight, n2) = Rig::scalar(&straight).run();
        assert_eq!(n1, n2);
        assert!(
            cycles_taken > cycles_straight,
            "taken {cycles_taken} vs straight {cycles_straight}"
        );
    }

    #[test]
    fn two_way_issue_is_faster_on_independent_code() {
        let mut src = String::from("main:\n");
        for i in 0..40 {
            src.push_str(&format!(" addiu ${}, ${}, 1\n", 2 + (i % 8), 2 + (i % 8)));
        }
        src.push_str(" halt\n");
        // Dependent chains of length 5 per register, 8 independent chains.
        let (c1, _) = Rig::build(&src, UnitConfig::default()).run();
        let cfg2 = UnitConfig { issue_width: 2, ..UnitConfig::default() };
        let (c2, _) = Rig::build(&src, cfg2).run();
        assert!(c2 < c1, "2-way {c2} vs 1-way {c1}");
    }

    #[test]
    fn ooo_hides_load_latency() {
        // A load followed by a dependent op, then independent work the
        // OoO unit can slip past the stall.
        let src = "\n.data\nv: .word 7\n.text\nmain:\n la $5, v\n lw $2, 0($5)\n addu $3, $2, $2\n addiu $6, $0, 1\n addiu $7, $0, 2\n addiu $8, $0, 3\n halt\n";
        let (c_io, _) = Rig::build(src, UnitConfig::default()).run();
        let cfg = UnitConfig { ooo: true, ..UnitConfig::default() };
        let (c_ooo, _) = Rig::build(src, cfg).run();
        assert!(c_ooo <= c_io, "ooo {c_ooo} vs io {c_io}");
    }

    #[test]
    fn ooo_preserves_semantics_on_hazards() {
        // WAR/WAW/RAW soup; result must match in-order execution.
        let src = "main:\n li $2, 1\n li $3, 2\n addu $4, $2, $3\n addu $2, $4, $3\n mul $5, $2, $4\n subu $3, $5, $2\n halt\n";
        let mut io = Rig::build(src, UnitConfig::default());
        io.run();
        let mut ooo =
            Rig::build(src, UnitConfig { ooo: true, issue_width: 2, ..UnitConfig::default() });
        ooo.run();
        for r in [2u8, 3, 4, 5] {
            assert_eq!(io.reg(Reg::int(r)), ooo.reg(Reg::int(r)), "reg ${r}");
        }
    }

    #[test]
    fn quiet_probe_matches_ticked_execution() {
        // At every cycle of a real run, if the probe claims the machine
        // is quiet until `wake`, the actual tick must issue nothing and
        // charge exactly the predicted stall reason. Re-probing every
        // cycle covers the whole claimed span.
        let src = "\n.data\nv: .word 7\n.text\nmain:\n la $5, v\n lw $2, 0($5)\n addu $3, $2, $2\n mul $4, $3, $3\n div $6, $4, $3\n sw $6, 8($5)\n lw $7, 8($5)\n halt\n";
        for cfg in [
            UnitConfig::default(),
            UnitConfig { issue_width: 2, ..UnitConfig::default() },
            UnitConfig { ooo: true, issue_width: 2, ..UnitConfig::default() },
        ] {
            let mut rig = Rig::build(src, cfg);
            let mut quiet_cycles = 0u64;
            for _ in 0..200_000u64 {
                let claim = rig.unit.quiet_until(rig.now);
                let mut ports = MemPorts {
                    mem: &mut rig.mem,
                    bus: &mut rig.bus,
                    banks: &mut rig.banks,
                    arb: None,
                    stage: 0,
                    active_ranks: 1,
                };
                let out = rig.unit.tick(rig.now, &rig.prog, &mut ports);
                if let Some((wake, reason)) = claim {
                    assert!(wake > rig.now, "wake must lie in the future");
                    assert_eq!(out.issued, 0, "cycle {} claimed quiet", rig.now);
                    assert_eq!(
                        rig.unit.stall_reason(),
                        Some(reason),
                        "cycle {} reason mismatch",
                        rig.now
                    );
                    quiet_cycles += 1;
                }
                if out.exit == Some(ExitKind::Halt) && rig.unit.is_complete(rig.now) {
                    break;
                }
                rig.now += 1;
            }
            assert!(quiet_cycles > 0, "run must contain provably quiet cycles");
        }
    }

    #[test]
    fn skip_charge_maps_reasons_to_section3_classes() {
        let mut rig = Rig::scalar("main:\n halt\n");
        rig.unit.skip_charge(3, StallReason::RemoteDep);
        rig.unit.skip_charge(2, StallReason::WaitRetire);
        rig.unit.skip_charge(5, StallReason::CacheMiss);
        rig.unit.skip_charge(1, StallReason::ArbFull);
        let c = rig.unit.counters();
        assert_eq!(c.inter_task_cycles, 3);
        assert_eq!(c.wait_retire_cycles, 2);
        assert_eq!(c.intra_task_cycles, 5);
        assert_eq!(c.arb_stall_cycles, 1);
        assert_eq!(rig.unit.stall_histogram()[StallReason::CacheMiss.index()], 5);
        assert_eq!(rig.unit.stall_reason(), Some(StallReason::ArbFull));
    }

    #[test]
    fn fault_on_runaway_fetch() {
        let mut rig = Rig::scalar("main:\n nop\n nop\n"); // no halt
        for _ in 0..100 {
            let mut ports = MemPorts {
                mem: &mut rig.mem,
                bus: &mut rig.bus,
                banks: &mut rig.banks,
                arb: None,
                stage: 0,
                active_ranks: 1,
            };
            rig.unit.tick(rig.now, &rig.prog, &mut ports);
            rig.now += 1;
            if rig.unit.fault().is_some() {
                return;
            }
        }
        panic!("expected a fetch fault");
    }
}

#[cfg(test)]
mod multiscalar_unit_tests {
    use super::*;
    use ms_asm::{assemble, AsmMode};
    use ms_memsys::{BusConfig, DataBanksConfig};

    /// A rig with the unit in multiscalar mode (ARB attached), letting
    /// tests drive forwarding, stop bits and inter-task delivery directly.
    struct MsRig {
        unit: ProcessingUnit,
        mem: Memory,
        bus: MemBus,
        banks: DataBanks,
        arb: Arb,
        prog: PredecodedProgram,
        now: u64,
    }

    impl MsRig {
        fn new(src: &str, cfg: UnitConfig) -> MsRig {
            let prog =
                PredecodedProgram::new(assemble(src, AsmMode::Multiscalar).expect("assemble"));
            let mut mem = Memory::new();
            for seg in &prog.data {
                mem.write_slice(seg.base, &seg.bytes);
            }
            MsRig {
                unit: ProcessingUnit::new(0, cfg),
                mem,
                bus: MemBus::new(BusConfig::default()),
                banks: DataBanks::new(DataBanksConfig::multiscalar(4)),
                arb: Arb::new(4, 8, 256),
                prog,
                now: 0,
            }
        }

        fn assign_entry(&mut self, awaiting: RegMask) {
            let desc = self.prog.task_at(self.prog.entry).expect("task at entry");
            let vals = [0u64; NUM_REGS];
            self.unit.assign_task(self.prog.entry, desc.create, &vals, awaiting, 0);
        }

        fn tick(&mut self) -> TickOutput {
            let mut ports = MemPorts {
                mem: &mut self.mem,
                bus: &mut self.bus,
                banks: &mut self.banks,
                arb: Some(&mut self.arb),
                stage: 0,
                active_ranks: 1,
            };
            let out = self.unit.tick(self.now, &self.prog, &mut ports);
            self.now += 1;
            out
        }

        fn run_to_exit(&mut self, max: u64) -> ExitKind {
            for _ in 0..max {
                let out = self.tick();
                if let Some(e) = out.exit {
                    return e;
                }
            }
            panic!("no exit within {max} cycles");
        }

        fn drain_sends(&mut self, max: u64) -> Vec<(Reg, u64)> {
            let mut sends = Vec::new();
            for _ in 0..max {
                self.tick();
                sends.extend(self.unit.take_sends(self.now - 1));
                if self.unit.is_complete(self.now - 1) {
                    break;
                }
            }
            sends
        }
    }

    #[test]
    fn forward_bit_sends_exactly_once() {
        // $2 written twice with !f on both writes: only the first send
        // survives the dedup ("a value ... is only sent once per task").
        let src = "
main:
.task targets=halt create=$2
A:
    addiu!f $2, $0, 1
    addiu!f $2, $2, 1
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        let sends = rig.drain_sends(60);
        let twos: Vec<&(Reg, u64)> = sends.iter().filter(|(r, _)| *r == Reg::int(2)).collect();
        assert_eq!(twos.len(), 1, "{sends:?}");
        assert_eq!(twos[0].1, 1, "first forward wins under dedup");
    }

    #[test]
    fn release_sends_current_value() {
        let src = "
main:
.task targets=halt create=$2,$3
A:
    addiu!f $2, $0, 7
    release $3
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        let sends = rig.drain_sends(60);
        assert!(sends.contains(&(Reg::int(2), 7)));
        assert!(sends.contains(&(Reg::int(3), 0)), "release sends snapshot value");
    }

    #[test]
    fn auto_release_covers_unsent_creates() {
        let src = "
main:
.task targets=halt create=$2,$5
A:
    addiu!f $2, $0, 1
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        let sends = rig.drain_sends(60);
        assert!(
            sends.iter().any(|(r, _)| *r == Reg::int(5)),
            "auto-release must forward $5 at completion: {sends:?}"
        );
        let (_, known) = rig.unit.fwd_view();
        assert!(known.contains(Reg::int(5)));
    }

    #[test]
    fn awaiting_operand_blocks_then_delivery_resumes() {
        let src = "
main:
.task targets=halt create=$3
A:
    addiu!f $3, $8, 1
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry([Reg::int(8)].into_iter().collect());
        // Without $8 the add cannot issue (the first ~17 cycles are the
        // cold instruction-cache fill, classified intra-task).
        for _ in 0..40 {
            let out = rig.tick();
            assert_eq!(out.issued, 0, "must stall on the inter-task operand");
            if rig.now > 25 {
                assert_eq!(out.stall, Some(StallClass::InterTask));
            }
        }
        let now = rig.now;
        assert!(rig.unit.receive(Reg::int(8), 41, now));
        let exit = rig.run_to_exit(40);
        assert_eq!(exit, ExitKind::Halt);
        assert_eq!(rig.unit.reg(Reg::int(3)), 42);
    }

    #[test]
    fn quiet_probe_on_inter_task_wait_is_externally_bounded() {
        let src = "
main:
.task targets=halt create=$3
A:
    addiu!f $3, $8, 1
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry([Reg::int(8)].into_iter().collect());
        // Run past the cold icache fill and decode so the unit settles
        // on the inter-task operand wait.
        for _ in 0..40 {
            rig.tick();
        }
        let (wake, reason) = rig.unit.quiet_until(rig.now).expect("remote wait is quiet");
        assert_eq!(wake, u64::MAX, "only a ring delivery can unblock the unit");
        assert_eq!(reason, StallReason::RemoteDep);
        let now = rig.now;
        rig.unit.receive(Reg::int(8), 41, now);
        assert!(rig.unit.quiet_until(now).is_none(), "delivered operand makes the slot issuable");
    }

    #[test]
    fn receive_consumes_create_regs_and_propagates_others() {
        let src = "
main:
.task targets=halt create=$3
A:
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry([Reg::int(3), Reg::int(9)].into_iter().collect());
        // $3 is in the create mask: consumed.
        assert!(!rig.unit.receive(Reg::int(3), 5, 0));
        // $9 is not: passes through (and enters the forwarded view).
        assert!(rig.unit.receive(Reg::int(9), 6, 0));
        let (vals, known) = rig.unit.fwd_view();
        assert!(known.contains(Reg::int(9)));
        assert_eq!(vals[9], 6);
        assert!(!known.contains(Reg::int(3)), "own create not exposed until sent");
    }

    #[test]
    fn conditional_stop_taken_ends_task_with_jump_exit() {
        let src = "
main:
.task targets=B,halt create=$2
A:
    addiu!f $2, $0, 1
    bne!st $2, $0, B
    halt
B:
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        let exit = rig.run_to_exit(40);
        let b = rig.prog.symbol("B").unwrap();
        assert_eq!(exit, ExitKind::Jump(b));
    }

    #[test]
    fn conditional_stop_not_taken_continues_task() {
        let src = "
main:
.task targets=B,halt create=$2
A:
    addiu!f $2, $0, 0
    bne!st $2, $0, B      ; not taken: the task continues
    halt
B:
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        let exit = rig.run_to_exit(40);
        assert_eq!(exit, ExitKind::Halt);
    }

    #[test]
    fn two_way_unit_issues_pairs_only_within_fetch_groups() {
        // Straight-line independent adds: a 2-way unit should get close
        // to 2 IPC, limited by 16-byte fetch groups.
        let mut src = String::from("main:\n.task targets=halt create=\nA:\n");
        for i in 0..32 {
            src.push_str(&format!("    addiu ${}, $0, {}\n", 8 + (i % 8), i));
        }
        src.push_str("    halt\n");
        let cfg1 = UnitConfig::default();
        let cfg2 = UnitConfig { issue_width: 2, ..UnitConfig::default() };
        let mut r1 = MsRig::new(&src, cfg1);
        r1.assign_entry(RegMask::EMPTY);
        r1.run_to_exit(400);
        let c1 = r1.now;
        let mut r2 = MsRig::new(&src, cfg2);
        r2.assign_entry(RegMask::EMPTY);
        r2.run_to_exit(400);
        let c2 = r2.now;
        assert!(c2 < c1, "2-way ({c2}) must beat 1-way ({c1})");
    }

    #[test]
    fn store_then_own_load_forwards_through_arb() {
        let src = "
.data
slot: .word 0
.text
main:
.task targets=halt create=$3
A:
    la  $9, slot
    li  $10, 77
    sw  $10, 0($9)
    lw!f $3, 0($9)
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        rig.run_to_exit(100);
        assert_eq!(rig.unit.reg(Reg::int(3)), 77);
        // Value came from the unit's own ARB stage, not memory.
        assert!(rig.arb.stats().loads >= 1);
    }

    #[test]
    fn counters_classify_wait_retire_after_completion() {
        let src = "
main:
.task targets=halt create=
A:
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        rig.run_to_exit(40);
        for _ in 0..10 {
            rig.tick(); // complete but unretired
        }
        assert!(rig.unit.counters().wait_retire_cycles >= 9);
    }

    #[test]
    fn clear_discards_pending_sends() {
        let src = "
main:
.task targets=halt create=$2
A:
    addiu!f $2, $0, 1
    halt
";
        let mut rig = MsRig::new(src, UnitConfig::default());
        rig.assign_entry(RegMask::EMPTY);
        rig.tick();
        rig.tick();
        rig.unit.clear();
        assert!(!rig.unit.is_active());
        let now = rig.now;
        assert!(rig.unit.take_sends(now + 100).is_empty());
    }
}
