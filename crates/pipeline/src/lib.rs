//! # ms-pipeline — the multiscalar processing unit
//!
//! One element of the paper's circular queue of processing units: a
//! 5-stage (IF/ID/EX/MEM/WB) pipeline configurable as in-order or
//! out-of-order and 1-way or 2-way issue, with the paper's functional-unit
//! mix and Table-1 latencies, a per-unit copy of the register file with
//! inter-task reservations, forward/stop tag-bit handling, and `release`
//! semantics. The same unit, assigned a whole program as a single "task",
//! is the scalar baseline processor.
//!
//! Modules:
//! * [`LatencyTable`]/[`FuPool`] — functional units,
//! * [`execute`] — pure architectural semantics,
//! * [`RegFile`] — per-unit registers with local scoreboard and
//!   inter-task reservations,
//! * [`ProcessingUnit`] — the pipeline itself.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod exec;
mod fu;
mod regfile;
mod unit;

pub use exec::{execute, extend_load, ControlOutcome, MemRequest, Outcome};
pub use fu::{FuPool, LatencyTable};
pub use regfile::{ReadStatus, RegFile};
pub use unit::{
    ExitKind, MemPorts, ProcessingUnit, StallClass, TaskCounters, TickOutput, UnitConfig,
};
