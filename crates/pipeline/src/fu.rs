//! Functional units and operation latencies (paper Table 1).

use ms_isa::{ExecClass, FuClass};

/// Operation latencies in cycles, reconstructing the paper's Table 1.
///
/// Integer: add/sub 1, shift/logic 1, multiply 4, divide 12, store 1,
/// load 2 (address generation + issue; cache time is modelled separately
/// by the memory system), branch 1. Floating point: SP add/sub 2,
/// SP multiply 4, SP divide 12, DP add/sub 2, DP multiply 5, DP divide 18.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LatencyTable {
    /// Integer ALU operations.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// Load (address generation; cache latency added by the memory system).
    pub load: u64,
    /// Store.
    pub store: u64,
    /// Branch/jump.
    pub branch: u64,
    /// FP single add/sub.
    pub fp_add_s: u64,
    /// FP single multiply.
    pub fp_mul_s: u64,
    /// FP single divide.
    pub fp_div_s: u64,
    /// FP double add/sub.
    pub fp_add_d: u64,
    /// FP double multiply.
    pub fp_mul_d: u64,
    /// FP double divide.
    pub fp_div_d: u64,
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 4,
            int_div: 12,
            load: 1,
            store: 1,
            branch: 1,
            fp_add_s: 2,
            fp_mul_s: 4,
            fp_div_s: 12,
            fp_add_d: 2,
            fp_mul_d: 5,
            fp_div_d: 18,
        }
    }
}

impl LatencyTable {
    /// Latency of an execution class.
    pub fn latency(&self, class: ExecClass) -> u64 {
        match class {
            ExecClass::IntAlu => self.int_alu,
            ExecClass::IntMul => self.int_mul,
            ExecClass::IntDiv => self.int_div,
            ExecClass::Load => self.load,
            ExecClass::Store => self.store,
            ExecClass::Branch => self.branch,
            ExecClass::FpAddS => self.fp_add_s,
            ExecClass::FpMulS => self.fp_mul_s,
            ExecClass::FpDivS => self.fp_div_s,
            ExecClass::FpAddD => self.fp_add_d,
            ExecClass::FpMulD => self.fp_mul_d,
            ExecClass::FpDivD => self.fp_div_d,
        }
    }
}

/// Per-cycle functional-unit availability.
///
/// Paper Section 5.1: "1 or 2 simple integer FU, 1 complex integer FU, 1
/// floating point FU, 1 branch FU, and 1 memory FU", all pipelined — each
/// unit accepts one new operation per cycle.
#[derive(Clone, Debug)]
pub struct FuPool {
    counts: [u8; 5],
    used: [u8; 5],
}

fn slot(class: FuClass) -> usize {
    match class {
        FuClass::SimpleInt => 0,
        FuClass::ComplexInt => 1,
        FuClass::Fp => 2,
        FuClass::Branch => 3,
        FuClass::Mem => 4,
    }
}

impl FuPool {
    /// A pool for a unit of the given issue width (the number of simple
    /// integer units matches the issue width).
    pub fn new(issue_width: usize) -> FuPool {
        FuPool { counts: [issue_width as u8, 1, 1, 1, 1], used: [0; 5] }
    }

    /// Resets per-cycle usage. Call once at the start of each cycle.
    pub fn begin_cycle(&mut self) {
        self.used = [0; 5];
    }

    /// Attempts to claim a functional unit of `class` for this cycle.
    pub fn try_acquire(&mut self, class: FuClass) -> bool {
        let s = slot(class);
        if self.used[s] < self.counts[s] {
            self.used[s] += 1;
            true
        } else {
            false
        }
    }

    /// Whether a unit of `class` is still free this cycle.
    pub fn available(&self, class: FuClass) -> bool {
        let s = slot(class);
        self.used[s] < self.counts[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_match_table1() {
        let t = LatencyTable::default();
        assert_eq!(t.latency(ExecClass::IntAlu), 1);
        assert_eq!(t.latency(ExecClass::IntMul), 4);
        assert_eq!(t.latency(ExecClass::IntDiv), 12);
        assert_eq!(t.latency(ExecClass::FpAddD), 2);
        assert_eq!(t.latency(ExecClass::FpMulD), 5);
        assert_eq!(t.latency(ExecClass::FpDivD), 18);
        assert_eq!(t.latency(ExecClass::FpDivS), 12);
    }

    #[test]
    fn two_way_pool_has_two_simple_int_units() {
        let mut p = FuPool::new(2);
        p.begin_cycle();
        assert!(p.try_acquire(FuClass::SimpleInt));
        assert!(p.try_acquire(FuClass::SimpleInt));
        assert!(!p.try_acquire(FuClass::SimpleInt));
        assert!(p.try_acquire(FuClass::Mem));
        assert!(!p.try_acquire(FuClass::Mem));
        p.begin_cycle();
        assert!(p.try_acquire(FuClass::SimpleInt));
    }

    #[test]
    fn one_way_pool_single_issue_per_class() {
        let mut p = FuPool::new(1);
        p.begin_cycle();
        assert!(p.try_acquire(FuClass::Branch));
        assert!(!p.available(FuClass::Branch));
        assert!(p.available(FuClass::ComplexInt));
    }
}
