//! Line-level parsing: source text to statements.
//!
//! The grammar is deliberately simple — one statement per line, with
//! optional leading `label:` definitions, `;`/`#` comments, and
//! multiscalar tag suffixes written `mnemonic!f!s`.

use crate::error::{AsmError, AsmErrorKind};
use ms_isa::{Reg, StopCond, TagBits};

/// An assembler section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// Code.
    Text,
    /// Initialized data.
    Data,
}

/// Width of a data directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataKind {
    /// `.byte`
    Byte,
    /// `.half`
    Half,
    /// `.word`
    Word,
    /// `.dword`
    Dword,
    /// `.double` (IEEE-754 f64)
    Double,
}

impl DataKind {
    /// Size of one item in bytes.
    pub fn size(self) -> u32 {
        match self {
            DataKind::Byte => 1,
            DataKind::Half => 2,
            DataKind::Word => 4,
            DataKind::Dword | DataKind::Double => 8,
        }
    }
}

/// A literal or symbolic data item.
#[derive(Clone, Debug, PartialEq)]
pub enum DataItem {
    /// Integer literal.
    Imm(i64),
    /// Label address plus offset.
    Sym(String, i64),
    /// Floating-point literal (only for `.double`).
    Fp(f64),
}

/// An instruction operand as written.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An integer immediate.
    Imm(i64),
    /// A label reference plus constant offset.
    Sym(String, i64),
    /// A memory operand `disp(base)`.
    Mem {
        /// Displacement (immediate or symbolic).
        disp: Box<Operand>,
        /// Base register.
        base: Reg,
    },
}

/// A `.task` successor-target specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetSpec {
    /// A label in the program.
    Label(String),
    /// Pop the sequencer return-address stack.
    Ret,
    /// End of program.
    Halt,
}

/// One parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `label:` definition.
    Label(String),
    /// `.text` / `.data`.
    Section(Section),
    /// `.align n` (align to `2^n` bytes).
    Align(u32),
    /// Data emission directive.
    Data(DataKind, Vec<DataItem>),
    /// `.space n` zero bytes.
    Space(u32),
    /// `.asciiz "…"` NUL-terminated string.
    Asciiz(Vec<u8>),
    /// `.entry label` — program entry point.
    Entry(String),
    /// `.task targets=… create=…` — applies to the next text address.
    Task {
        /// Possible successor tasks.
        targets: Vec<TargetSpec>,
        /// Registers the task may create.
        create: Vec<Reg>,
    },
    /// `.ms_begin` — following lines are multiscalar-only.
    MsBegin,
    /// `.ms_end`.
    MsEnd,
    /// `.scalar_begin` — following lines are scalar-only.
    ScalarBegin,
    /// `.scalar_end`.
    ScalarEnd,
    /// An instruction (real or pseudo).
    Ins {
        /// Mnemonic with tag suffixes stripped.
        mnem: String,
        /// Parsed tag suffixes.
        tags: TagBits,
        /// Operands in source order.
        ops: Vec<Operand>,
    },
}

fn err(line: usize, kind: AsmErrorKind) -> AsmError {
    AsmError::new(line, kind)
}

/// Strips a comment (`;`, `#`, or `//`) outside of string literals.
fn strip_comment(s: &str) -> &str {
    let mut in_str = false;
    let mut prev_slash = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &s[..i],
            '/' if !in_str => {
                if prev_slash {
                    return &s[..i - 1];
                }
                prev_slash = true;
                continue;
            }
            _ => {}
        }
        prev_slash = false;
    }
    s
}

/// Splits at top-level commas (outside string literals and parentheses).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut depth = 0i32;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '(' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ')' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                out.push(cur.trim().to_owned());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

/// Parses an integer literal: decimal, `0x` hex, or a char literal.
pub fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let bad = || err(line, AsmErrorKind::Syntax(format!("invalid integer `{s}`")));
    if let Some(body) = s.strip_prefix("'") {
        let body = body.strip_suffix('\'').ok_or_else(bad)?;
        let c = match body {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\0" => 0,
            "\\\\" => b'\\',
            "\\'" => b'\'',
            " " => b' ',
            _ => {
                let mut it = body.chars();
                let c = it.next().ok_or_else(bad)?;
                if it.next().is_some() || !c.is_ascii() {
                    return Err(bad());
                }
                c as u8
            }
        };
        return Ok(c as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(|_| bad())?
    } else {
        body.parse::<i64>().map_err(|_| bad())?
    };
    Ok(if neg { -v } else { v })
}

fn is_symbol_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_symbol_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Parses a symbol with optional `+off`/`-off`.
fn parse_sym(s: &str, line: usize) -> Result<(String, i64), AsmError> {
    let s = s.trim();
    if let Some(plus) = s.find(['+', '-'].as_slice()) {
        if plus > 0 {
            let (name, rest) = s.split_at(plus);
            let off = parse_int(rest, line)?;
            return Ok((name.trim().to_owned(), off));
        }
    }
    if !s.starts_with(is_symbol_start) || !s.chars().all(is_symbol_char) {
        return Err(err(line, AsmErrorKind::Syntax(format!("invalid symbol `{s}`"))));
    }
    Ok((s.to_owned(), 0))
}

/// Parses a single operand.
pub fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, AsmErrorKind::Syntax("empty operand".into())));
    }
    // Memory operand: disp(base)
    if s.ends_with(')') {
        if let Some(open) = s.rfind('(') {
            let disp_txt = s[..open].trim();
            let base_txt = &s[open + 1..s.len() - 1];
            let base: Reg = base_txt.trim().parse().map_err(|_| {
                err(line, AsmErrorKind::Syntax(format!("invalid base register `{base_txt}`")))
            })?;
            let disp =
                if disp_txt.is_empty() { Operand::Imm(0) } else { parse_operand(disp_txt, line)? };
            match disp {
                Operand::Imm(_) | Operand::Sym(..) => {
                    return Ok(Operand::Mem { disp: Box::new(disp), base })
                }
                _ => {
                    return Err(err(
                        line,
                        AsmErrorKind::Syntax(format!("invalid displacement in `{s}`")),
                    ))
                }
            }
        }
    }
    if s.starts_with('$') {
        let r: Reg = s
            .parse()
            .map_err(|_| err(line, AsmErrorKind::Syntax(format!("invalid register `{s}`"))))?;
        return Ok(Operand::Reg(r));
    }
    if s.starts_with(|c: char| c.is_ascii_digit()) || s.starts_with('-') || s.starts_with('\'') {
        return Ok(Operand::Imm(parse_int(s, line)?));
    }
    let (name, off) = parse_sym(s, line)?;
    Ok(Operand::Sym(name, off))
}

/// Parses tag suffixes from a raw mnemonic like `bne!f!st`.
fn parse_mnemonic(raw: &str, line: usize) -> Result<(String, TagBits), AsmError> {
    let mut parts = raw.split('!');
    let mnem = parts.next().unwrap_or("").to_ascii_lowercase();
    let mut tags = TagBits::NONE;
    for p in parts {
        match p {
            "f" => {
                if tags.forward {
                    return Err(err(line, AsmErrorKind::Syntax("duplicate !f tag".into())));
                }
                tags.forward = true;
            }
            "s" | "st" | "sn" => {
                if tags.stop != StopCond::None {
                    return Err(err(line, AsmErrorKind::Syntax("duplicate stop tag".into())));
                }
                tags.stop = match p {
                    "s" => StopCond::Always,
                    "st" => StopCond::IfTaken,
                    _ => StopCond::IfNotTaken,
                };
            }
            other => {
                return Err(err(
                    line,
                    AsmErrorKind::Syntax(format!("unknown tag suffix `!{other}`")),
                ))
            }
        }
    }
    if mnem.is_empty() {
        return Err(err(line, AsmErrorKind::Syntax("missing mnemonic".into())));
    }
    Ok((mnem, tags))
}

fn parse_string_lit(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let bad = || err(line, AsmErrorKind::Syntax(format!("invalid string literal {s}")));
    let body = s.strip_prefix('"').and_then(|b| b.strip_suffix('"')).ok_or_else(bad)?;
    let mut out = Vec::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next().ok_or_else(bad)? {
                'n' => out.push(b'\n'),
                't' => out.push(b'\t'),
                '0' => out.push(0),
                '\\' => out.push(b'\\'),
                '"' => out.push(b'"'),
                _ => return Err(bad()),
            }
        } else if c.is_ascii() {
            out.push(c as u8);
        } else {
            return Err(bad());
        }
    }
    Ok(out)
}

fn parse_data_items(kind: DataKind, rest: &str, line: usize) -> Result<Stmt, AsmError> {
    let mut items = Vec::new();
    for piece in split_operands(rest) {
        if kind == DataKind::Double {
            let v: f64 = piece.trim().parse().map_err(|_| {
                err(line, AsmErrorKind::Syntax(format!("invalid double `{piece}`")))
            })?;
            items.push(DataItem::Fp(v));
        } else if piece.starts_with(|c: char| c.is_ascii_digit())
            || piece.starts_with('-')
            || piece.starts_with('\'')
        {
            items.push(DataItem::Imm(parse_int(&piece, line)?));
        } else {
            let (name, off) = parse_sym(&piece, line)?;
            items.push(DataItem::Sym(name, off));
        }
    }
    if items.is_empty() {
        return Err(err(line, AsmErrorKind::Directive("data directive with no items".into())));
    }
    Ok(Stmt::Data(kind, items))
}

fn parse_task(rest: &str, line: usize) -> Result<Stmt, AsmError> {
    let mut targets = Vec::new();
    let mut create = Vec::new();
    for field in rest.split_whitespace() {
        if let Some(ts) = field.strip_prefix("targets=") {
            for t in ts.split(',') {
                let t = t.trim();
                if t.is_empty() {
                    continue;
                }
                targets.push(match t {
                    "ret" => TargetSpec::Ret,
                    "halt" => TargetSpec::Halt,
                    _ => TargetSpec::Label(t.to_owned()),
                });
            }
        } else if let Some(cs) = field.strip_prefix("create=") {
            for c in cs.split(',') {
                let c = c.trim();
                if c.is_empty() {
                    continue;
                }
                create.push(c.parse::<Reg>().map_err(|_| {
                    err(line, AsmErrorKind::Syntax(format!("invalid register `{c}` in create=")))
                })?);
            }
        } else {
            return Err(err(
                line,
                AsmErrorKind::Directive(format!("unknown .task field `{field}`")),
            ));
        }
    }
    if targets.is_empty() {
        return Err(err(line, AsmErrorKind::Directive(".task requires targets=".into())));
    }
    if targets.len() > ms_isa::MAX_TARGETS {
        return Err(err(
            line,
            AsmErrorKind::Directive(format!(
                ".task has {} targets; the maximum is {}",
                targets.len(),
                ms_isa::MAX_TARGETS
            )),
        ));
    }
    Ok(Stmt::Task { targets, create })
}

fn parse_directive(text: &str, line: usize) -> Result<Stmt, AsmError> {
    let (name, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    match name {
        ".text" => Ok(Stmt::Section(Section::Text)),
        ".data" => Ok(Stmt::Section(Section::Data)),
        ".align" => Ok(Stmt::Align(parse_int(rest, line)? as u32)),
        ".byte" => parse_data_items(DataKind::Byte, rest, line),
        ".half" => parse_data_items(DataKind::Half, rest, line),
        ".word" => parse_data_items(DataKind::Word, rest, line),
        ".dword" => parse_data_items(DataKind::Dword, rest, line),
        ".double" => parse_data_items(DataKind::Double, rest, line),
        ".space" => Ok(Stmt::Space(parse_int(rest, line)? as u32)),
        ".asciiz" => Ok(Stmt::Asciiz(parse_string_lit(rest, line)?)),
        ".entry" => Ok(Stmt::Entry(parse_sym(rest, line)?.0)),
        ".task" => parse_task(rest, line),
        ".ms_begin" => Ok(Stmt::MsBegin),
        ".ms_end" => Ok(Stmt::MsEnd),
        ".scalar_begin" => Ok(Stmt::ScalarBegin),
        ".scalar_end" => Ok(Stmt::ScalarEnd),
        ".global" | ".globl" => Ok(Stmt::Entry(parse_sym(rest, line)?.0)),
        other => Err(err(line, AsmErrorKind::Directive(format!("unknown directive `{other}`")))),
    }
}

/// Parses one source line into zero or more statements
/// (`label: instr` yields two).
pub fn parse_line(raw: &str, line: usize) -> Result<Vec<Stmt>, AsmError> {
    let mut out = Vec::new();
    let mut text = strip_comment(raw).trim();
    // Leading label definitions.
    while let Some(colon) = text.find(':') {
        let candidate = text[..colon].trim();
        if !candidate.is_empty()
            && candidate.starts_with(is_symbol_start)
            && candidate.chars().all(is_symbol_char)
        {
            out.push(Stmt::Label(candidate.to_owned()));
            text = text[colon + 1..].trim();
        } else {
            break;
        }
    }
    if text.is_empty() {
        return Ok(out);
    }
    if text.starts_with('.') {
        out.push(parse_directive(text, line)?);
        return Ok(out);
    }
    let (raw_mnem, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let (mnem, tags) = parse_mnemonic(raw_mnem, line)?;
    let mut ops = Vec::new();
    for piece in split_operands(rest) {
        ops.push(parse_operand(&piece, line)?);
    }
    out.push(Stmt::Ins { mnem, tags, ops });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_instruction_on_one_line() {
        let stmts = parse_line("LOOP: addu $4, $4, $5 ; bump", 1).unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0], Stmt::Label("LOOP".into()));
        match &stmts[1] {
            Stmt::Ins { mnem, ops, .. } => {
                assert_eq!(mnem, "addu");
                assert_eq!(ops.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tag_suffixes_parse() {
        let stmts = parse_line("bne!f!st $4, $5, L", 1).unwrap();
        match &stmts[0] {
            Stmt::Ins { tags, .. } => {
                assert!(tags.forward);
                assert_eq!(tags.stop, StopCond::IfTaken);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_line("bne!s!s $4, $5, L", 1).is_err());
        assert!(parse_line("bne!x $4, $5, L", 1).is_err());
    }

    #[test]
    fn memory_operands() {
        let stmts = parse_line("lw $8, -4($17)", 1).unwrap();
        match &stmts[0] {
            Stmt::Ins { ops, .. } => match &ops[1] {
                Operand::Mem { disp, base } => {
                    assert_eq!(**disp, Operand::Imm(-4));
                    assert_eq!(*base, Reg::int(17));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        let stmts = parse_line("lw $8, buf+8($17)", 1).unwrap();
        match &stmts[0] {
            Stmt::Ins { ops, .. } => match &ops[1] {
                Operand::Mem { disp, .. } => {
                    assert_eq!(**disp, Operand::Sym("buf".into(), 8));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn task_directive() {
        let stmts =
            parse_line(".task targets=OUTER,OUTERFALLOUT create=$4,$8,$17,$20,$23", 1).unwrap();
        match &stmts[0] {
            Stmt::Task { targets, create } => {
                assert_eq!(targets.len(), 2);
                assert_eq!(create.len(), 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_line(".task create=$1", 1).is_err());
        assert!(parse_line(".task targets=A,B,C,D,E", 1).is_err());
    }

    #[test]
    fn data_directives() {
        assert_eq!(
            parse_line(".word 1, 0x10, -3", 1).unwrap()[0],
            Stmt::Data(
                DataKind::Word,
                vec![DataItem::Imm(1), DataItem::Imm(16), DataItem::Imm(-3)]
            )
        );
        assert_eq!(
            parse_line(".word head, tail+4", 1).unwrap()[0],
            Stmt::Data(
                DataKind::Word,
                vec![DataItem::Sym("head".into(), 0), DataItem::Sym("tail".into(), 4)]
            )
        );
        assert_eq!(
            parse_line(".double 1.5, -2.0", 1).unwrap()[0],
            Stmt::Data(DataKind::Double, vec![DataItem::Fp(1.5), DataItem::Fp(-2.0)])
        );
        assert_eq!(parse_line(".asciiz \"hi\\n\"", 1).unwrap()[0], Stmt::Asciiz(b"hi\n".to_vec()));
    }

    #[test]
    fn char_literals() {
        assert_eq!(parse_int("'a'", 1).unwrap(), 97);
        assert_eq!(parse_int("'\\n'", 1).unwrap(), 10);
        assert_eq!(parse_int("' '", 1).unwrap(), 32);
        assert!(parse_int("'ab'", 1).is_err());
    }

    #[test]
    fn comments_are_stripped() {
        assert!(parse_line("; just a comment", 1).unwrap().is_empty());
        assert!(parse_line("# hash comment", 1).unwrap().is_empty());
        assert!(parse_line("// slash comment", 1).unwrap().is_empty());
        assert_eq!(parse_line("nop // trailing", 1).unwrap().len(), 1);
    }

    #[test]
    fn unknown_directive_is_an_error() {
        assert!(parse_line(".bogus 1", 7).is_err());
    }
}
