//! The two-pass assembler.
//!
//! Pass 1 lays out sections and records label addresses (every pseudo
//! instruction has a size computable without symbol values). Pass 2
//! expands pseudos, resolves symbols, and emits the [`Program`].
//!
//! The same source assembles in two modes, mirroring the paper's pairing
//! of a scalar binary with a multiscalar binary built from the same code
//! (Table 2): in [`AsmMode::Scalar`] all multiscalar artifacts (task
//! descriptors, tag suffixes, `release` instructions and
//! `.ms_begin`/`.ms_end` blocks) are dropped, while
//! `.scalar_begin`/`.scalar_end` blocks are kept, and vice versa.

use crate::error::{AsmError, AsmErrorKind};
use crate::parser::{parse_line, DataItem, DataKind, Operand, Section, Stmt, TargetSpec};
use ms_isa::{
    DataSegment, FpArithKind, FpCmpCond, Instr, MemWidth, Op, Prec, Program, Reg, RegList, RegMask,
    TagBits, TaskDescriptor, TaskTarget, DATA_BASE, TEXT_BASE,
};
use std::collections::BTreeMap;

/// Which binary to produce from a dual-mode source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AsmMode {
    /// Strip all multiscalar artifacts (the paper's baseline binary).
    Scalar,
    /// Keep task descriptors, tag bits, releases and `.ms` blocks.
    Multiscalar,
}

/// Assembler scratch register used by pseudo-instruction expansion
/// (`$at`, by MIPS convention).
const AT: Reg = Reg::int(1);

fn err(line: usize, kind: AsmErrorKind) -> AsmError {
    AsmError::new(line, kind)
}

/// Assembles `src` into a [`Program`].
///
/// # Errors
/// Returns the first [`AsmError`] encountered: syntax errors, unknown
/// mnemonics, operand mismatches, undefined/duplicate labels, or
/// out-of-range immediates and branch offsets.
///
/// ```
/// use ms_asm::{assemble, AsmMode};
/// let p = assemble("main: li $2, 42\n halt\n", AsmMode::Scalar)?;
/// assert_eq!(p.text.len(), 2);
/// # Ok::<(), ms_asm::AsmError>(())
/// ```
pub fn assemble(src: &str, mode: AsmMode) -> Result<Program, AsmError> {
    let stmts = filter_mode(parse_all(src)?, mode)?;
    let layout = layout(&stmts, mode)?;
    emit(&stmts, &layout, mode)
}

fn parse_all(src: &str) -> Result<Vec<(usize, Stmt)>, AsmError> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        for stmt in parse_line(line, i + 1)? {
            out.push((i + 1, stmt));
        }
    }
    Ok(out)
}

/// Drops statements excluded by the mode and validates block nesting.
fn filter_mode(stmts: Vec<(usize, Stmt)>, mode: AsmMode) -> Result<Vec<(usize, Stmt)>, AsmError> {
    let mut out = Vec::new();
    let mut ms_depth = 0u32;
    let mut scalar_depth = 0u32;
    for (line, stmt) in stmts {
        match stmt {
            Stmt::MsBegin => {
                if scalar_depth > 0 {
                    return Err(err(
                        line,
                        AsmErrorKind::Directive(".ms_begin inside a scalar block".into()),
                    ));
                }
                ms_depth += 1;
            }
            Stmt::MsEnd => {
                ms_depth = ms_depth.checked_sub(1).ok_or_else(|| {
                    err(line, AsmErrorKind::Directive(".ms_end without .ms_begin".into()))
                })?;
            }
            Stmt::ScalarBegin => {
                if ms_depth > 0 {
                    return Err(err(
                        line,
                        AsmErrorKind::Directive(".scalar_begin inside a multiscalar block".into()),
                    ));
                }
                scalar_depth += 1;
            }
            Stmt::ScalarEnd => {
                scalar_depth = scalar_depth.checked_sub(1).ok_or_else(|| {
                    err(line, AsmErrorKind::Directive(".scalar_end without .scalar_begin".into()))
                })?;
            }
            other => {
                let keep = match mode {
                    AsmMode::Scalar => ms_depth == 0,
                    AsmMode::Multiscalar => scalar_depth == 0,
                };
                if keep {
                    out.push((line, other));
                }
            }
        }
    }
    if ms_depth != 0 || scalar_depth != 0 {
        return Err(err(0, AsmErrorKind::Directive("unclosed .ms/.scalar block".into())));
    }
    Ok(out)
}

struct Layout {
    symbols: BTreeMap<String, u32>,
}

fn align_up(v: u32, to: u32) -> u32 {
    v.div_ceil(to) * to
}

fn layout(stmts: &[(usize, Stmt)], mode: AsmMode) -> Result<Layout, AsmError> {
    let mut symbols = BTreeMap::new();
    let mut section = Section::Text;
    let mut text_pc = TEXT_BASE;
    let mut data_pc = DATA_BASE;
    for (line, stmt) in stmts {
        match stmt {
            Stmt::Label(name) => {
                let addr = if section == Section::Text { text_pc } else { data_pc };
                if symbols.insert(name.clone(), addr).is_some() {
                    return Err(err(*line, AsmErrorKind::DuplicateSymbol(name.clone())));
                }
            }
            Stmt::Section(s) => section = *s,
            Stmt::Align(n) => {
                if *n > 16 {
                    return Err(err(*line, AsmErrorKind::Directive("alignment too large".into())));
                }
                let a = 1u32 << n;
                if section == Section::Text {
                    text_pc = align_up(text_pc, a.max(4));
                } else {
                    data_pc = align_up(data_pc, a);
                }
            }
            Stmt::Data(kind, items) => {
                if section != Section::Data {
                    return Err(err(
                        *line,
                        AsmErrorKind::Directive("data directive outside .data".into()),
                    ));
                }
                data_pc = align_up(data_pc, kind.size());
                data_pc += kind.size() * items.len() as u32;
            }
            Stmt::Space(n) => {
                if section == Section::Text {
                    return Err(err(*line, AsmErrorKind::Directive(".space in .text".into())));
                }
                data_pc += n;
            }
            Stmt::Asciiz(bytes) => {
                if section == Section::Data {
                    data_pc += bytes.len() as u32 + 1;
                } else {
                    return Err(err(*line, AsmErrorKind::Directive(".asciiz in .text".into())));
                }
            }
            Stmt::Entry(_) | Stmt::Task { .. } => {}
            Stmt::Ins { mnem, tags: _, ops } => {
                if section != Section::Text {
                    return Err(err(
                        *line,
                        AsmErrorKind::Directive("instruction outside .text".into()),
                    ));
                }
                text_pc += 4 * size_in_words(mnem, ops, mode, *line)? as u32;
            }
            Stmt::MsBegin | Stmt::MsEnd | Stmt::ScalarBegin | Stmt::ScalarEnd => unreachable!(),
        }
    }
    Ok(Layout { symbols })
}

/// Number of machine instructions a (possibly pseudo) mnemonic expands to.
/// Must agree exactly with [`expand`]; `emit` asserts this.
fn size_in_words(
    mnem: &str,
    ops: &[Operand],
    mode: AsmMode,
    line: usize,
) -> Result<usize, AsmError> {
    Ok(match mnem {
        "li" => {
            let v = match ops.get(1) {
                Some(Operand::Imm(v)) => *v,
                _ => {
                    return Err(err(
                        line,
                        AsmErrorKind::BadOperands("li expects `li $r, imm`".into()),
                    ))
                }
            };
            if (-2048..=2047).contains(&v) {
                1
            } else {
                2
            }
        }
        "la" => 2,
        "blt" | "bge" | "bgt" | "ble" | "bltu" | "bgeu" | "bgtu" | "bleu" => 2,
        "release" => {
            if mode == AsmMode::Scalar {
                0
            } else {
                ops.len().div_ceil(RegList::CAPACITY).max(1)
            }
        }
        _ => 1,
    })
}

struct Emitter<'a> {
    symbols: &'a BTreeMap<String, u32>,
    text: Vec<Instr>,
    mode: AsmMode,
}

impl Emitter<'_> {
    fn pc(&self) -> u32 {
        TEXT_BASE + 4 * self.text.len() as u32
    }

    fn sym(&self, name: &str, off: i64, line: usize) -> Result<u32, AsmError> {
        let base = self
            .symbols
            .get(name)
            .copied()
            .ok_or_else(|| err(line, AsmErrorKind::UndefinedSymbol(name.to_owned())))?;
        Ok((base as i64 + off) as u32)
    }

    fn reg(&self, op: Option<&Operand>, line: usize) -> Result<Reg, AsmError> {
        match op {
            Some(Operand::Reg(r)) => Ok(*r),
            other => Err(err(
                line,
                AsmErrorKind::BadOperands(format!("expected register, found {other:?}")),
            )),
        }
    }

    fn imm(&self, op: Option<&Operand>, line: usize) -> Result<i64, AsmError> {
        match op {
            Some(Operand::Imm(v)) => Ok(*v),
            Some(Operand::Sym(name, off)) => Ok(self.sym(name, *off, line)? as i64),
            other => Err(err(
                line,
                AsmErrorKind::BadOperands(format!("expected immediate, found {other:?}")),
            )),
        }
    }

    fn mem(&self, op: Option<&Operand>, line: usize) -> Result<(Reg, i32), AsmError> {
        match op {
            Some(Operand::Mem { disp, base }) => {
                let d = match &**disp {
                    Operand::Imm(v) => *v,
                    Operand::Sym(name, off) => self.sym(name, *off, line)? as i64,
                    _ => unreachable!("parser only builds Imm/Sym displacements"),
                };
                let d32 = i32::try_from(d).map_err(|_| {
                    err(line, AsmErrorKind::OutOfRange(format!("displacement {d}")))
                })?;
                Ok((*base, d32))
            }
            other => Err(err(
                line,
                AsmErrorKind::BadOperands(format!(
                    "expected mem operand `off(base)`, found {other:?}"
                )),
            )),
        }
    }

    /// Branch offset in instructions from the instruction after the one
    /// about to be emitted to the operand target.
    fn branch_off(&self, op: Option<&Operand>, line: usize) -> Result<i32, AsmError> {
        let target = match op {
            Some(Operand::Sym(name, off)) => self.sym(name, *off, line)?,
            Some(Operand::Imm(v)) => return Ok(*v as i32),
            other => {
                return Err(err(
                    line,
                    AsmErrorKind::BadOperands(format!("expected branch target, found {other:?}")),
                ))
            }
        };
        let from = self.pc() + 4;
        let delta = (target as i64 - from as i64) / 4;
        if (target as i64 - from as i64) % 4 != 0 || !(-2048..=2047).contains(&delta) {
            return Err(err(
                line,
                AsmErrorKind::OutOfRange(format!("branch target {target:#x} out of reach")),
            ));
        }
        Ok(delta as i32)
    }

    fn jump_target(&self, op: Option<&Operand>, line: usize) -> Result<u32, AsmError> {
        match op {
            Some(Operand::Sym(name, off)) => self.sym(name, *off, line),
            Some(Operand::Imm(v)) => Ok(*v as u32),
            other => Err(err(
                line,
                AsmErrorKind::BadOperands(format!("expected jump target, found {other:?}")),
            )),
        }
    }

    fn push(&mut self, op: Op) {
        self.text.push(Instr::new(op));
    }

    /// Pushes `op` carrying `tags` (dropped in scalar mode).
    fn push_tagged(&mut self, op: Op, tags: TagBits) {
        let tags = if self.mode == AsmMode::Scalar { TagBits::NONE } else { tags };
        self.text.push(Instr { op, tags });
    }

    fn narrow_imm(&self, v: i64, bits: u32, signed: bool, line: usize) -> Result<i32, AsmError> {
        let ok = if signed {
            let half = 1i64 << (bits - 1);
            (-half..half).contains(&v)
        } else {
            (0..(1i64 << bits)).contains(&v)
        };
        if !ok {
            return Err(err(
                line,
                AsmErrorKind::OutOfRange(format!("immediate {v} does not fit {bits} bits")),
            ));
        }
        Ok(v as i32)
    }

    /// Emits `li rd, v` (1 or 2 instructions), returning with `tags` on the
    /// last instruction.
    fn emit_li(&mut self, rd: Reg, v: i64, tags: TagBits, line: usize) -> Result<(), AsmError> {
        if (-2048..=2047).contains(&v) {
            self.push_tagged(Op::Addiu { rt: rd, rs: Reg::ZERO, imm: v as i32 }, tags);
            return Ok(());
        }
        let hi = v >> 12;
        let lo = (v & 0xfff) as i32;
        if !(-(1i64 << 17)..(1i64 << 17)).contains(&hi) {
            return Err(err(
                line,
                AsmErrorKind::OutOfRange(format!("li constant {v} exceeds 30-bit range")),
            ));
        }
        self.push(Op::Lui { rt: rd, imm: hi as i32 });
        self.push_tagged(Op::Ori { rt: rd, rs: rd, imm: lo }, tags);
        Ok(())
    }

    fn expand(
        &mut self,
        mnem: &str,
        tags: TagBits,
        ops: &[Operand],
        line: usize,
    ) -> Result<(), AsmError> {
        let o = |i: usize| ops.get(i);
        let nops = ops.len();
        let want = |n: usize| -> Result<(), AsmError> {
            if nops == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    AsmErrorKind::BadOperands(format!("{mnem} expects {n} operands, found {nops}")),
                ))
            }
        };

        macro_rules! r3 {
            ($variant:ident) => {{
                want(3)?;
                let rd = self.reg(o(0), line)?;
                let rs = self.reg(o(1), line)?;
                let rt = self.reg(o(2), line)?;
                self.push_tagged(Op::$variant { rd, rs, rt }, tags);
            }};
        }
        macro_rules! shv {
            ($variant:ident) => {{
                want(3)?;
                let rd = self.reg(o(0), line)?;
                let rt = self.reg(o(1), line)?;
                let rs = self.reg(o(2), line)?;
                self.push_tagged(Op::$variant { rd, rt, rs }, tags);
            }};
        }
        macro_rules! i12 {
            ($variant:ident, $signed:expr) => {{
                want(3)?;
                let rt = self.reg(o(0), line)?;
                let rs = self.reg(o(1), line)?;
                let imm = self.narrow_imm(self.imm(o(2), line)?, 12, $signed, line)?;
                self.push_tagged(Op::$variant { rt, rs, imm }, tags);
            }};
        }
        macro_rules! shimm {
            ($variant:ident) => {{
                want(3)?;
                let rd = self.reg(o(0), line)?;
                let rt = self.reg(o(1), line)?;
                let sh = self.imm(o(2), line)?;
                if !(0..64).contains(&sh) {
                    return Err(err(
                        line,
                        AsmErrorKind::BadOperands(format!(
                            "shift amount {sh} is out of range (0..=63 for 64-bit registers)"
                        )),
                    ));
                }
                self.push_tagged(Op::$variant { rd, rt, sh: sh as u8 }, tags);
            }};
        }
        macro_rules! load {
            ($w:expr, $signed:expr) => {{
                want(2)?;
                let rt = self.reg(o(0), line)?;
                let (base, off) = self.mem(o(1), line)?;
                let off = self.narrow_imm(off as i64, 12, true, line)?;
                self.push_tagged(Op::Load { width: $w, signed: $signed, rt, base, off }, tags);
            }};
        }
        macro_rules! store {
            ($w:expr) => {{
                want(2)?;
                let rt = self.reg(o(0), line)?;
                let (base, off) = self.mem(o(1), line)?;
                let off = self.narrow_imm(off as i64, 12, true, line)?;
                self.push_tagged(Op::Store { width: $w, rt, base, off }, tags);
            }};
        }
        macro_rules! fparith {
            ($kind:ident, $prec:ident) => {{
                want(3)?;
                let fd = self.reg(o(0), line)?;
                let fs = self.reg(o(1), line)?;
                let ft = self.reg(o(2), line)?;
                self.push_tagged(
                    Op::FpArith { kind: FpArithKind::$kind, prec: Prec::$prec, fd, fs, ft },
                    tags,
                );
            }};
        }
        macro_rules! fpcmp {
            ($cond:ident, $prec:ident) => {{
                want(3)?;
                let rd = self.reg(o(0), line)?;
                let fs = self.reg(o(1), line)?;
                let ft = self.reg(o(2), line)?;
                self.push_tagged(
                    Op::FpCmp { cond: FpCmpCond::$cond, prec: Prec::$prec, rd, fs, ft },
                    tags,
                );
            }};
        }
        // Two-instruction compare-and-branch pseudo.
        macro_rules! cmpbr {
            ($swap:expr, $unsigned:expr, $on_set:expr) => {{
                want(3)?;
                let rs = self.reg(o(0), line)?;
                let rt = self.reg(o(1), line)?;
                let (a, b) = if $swap { (rt, rs) } else { (rs, rt) };
                if $unsigned {
                    self.push(Op::Sltu { rd: AT, rs: a, rt: b });
                } else {
                    self.push(Op::Slt { rd: AT, rs: a, rt: b });
                }
                let off = self.branch_off(o(2), line)?;
                let op = if $on_set {
                    Op::Bne { rs: AT, rt: Reg::ZERO, off }
                } else {
                    Op::Beq { rs: AT, rt: Reg::ZERO, off }
                };
                self.push_tagged(op, tags);
            }};
        }

        match mnem {
            "addu" | "add" => r3!(Addu),
            "subu" | "sub" => r3!(Subu),
            "and" => r3!(And),
            "or" => r3!(Or),
            "xor" => r3!(Xor),
            "nor" => r3!(Nor),
            "slt" => r3!(Slt),
            "sltu" => r3!(Sltu),
            "mul" | "mult" => r3!(Mul),
            "div" => r3!(Div),
            "rem" => r3!(Rem),
            "sllv" => shv!(Sllv),
            "srlv" => shv!(Srlv),
            "srav" => shv!(Srav),
            "addiu" | "addi" => i12!(Addiu, true),
            "andi" => i12!(Andi, false),
            "ori" => i12!(Ori, false),
            "xori" => i12!(Xori, false),
            "slti" => i12!(Slti, true),
            "sltiu" => i12!(Sltiu, true),
            "sll" => shimm!(Sll),
            "srl" => shimm!(Srl),
            "sra" => shimm!(Sra),
            "lui" => {
                want(2)?;
                let rt = self.reg(o(0), line)?;
                let imm = self.narrow_imm(self.imm(o(1), line)?, 18, true, line)?;
                self.push_tagged(Op::Lui { rt, imm }, tags);
            }
            "lb" => load!(MemWidth::B, true),
            "lbu" => load!(MemWidth::B, false),
            "lh" => load!(MemWidth::H, true),
            "lhu" => load!(MemWidth::H, false),
            "lw" => load!(MemWidth::W, true),
            "lwu" => load!(MemWidth::W, false),
            "ld" | "l.d" | "ldc1" => load!(MemWidth::D, true),
            "sb" => store!(MemWidth::B),
            "sh" => store!(MemWidth::H),
            "sw" => store!(MemWidth::W),
            "sd" | "s.d" | "sdc1" => store!(MemWidth::D),
            "beq" | "bne" => {
                want(3)?;
                let rs = self.reg(o(0), line)?;
                let rt = self.reg(o(1), line)?;
                let off = self.branch_off(o(2), line)?;
                let op =
                    if mnem == "beq" { Op::Beq { rs, rt, off } } else { Op::Bne { rs, rt, off } };
                self.push_tagged(op, tags);
            }
            "blez" | "bgtz" | "bltz" | "bgez" => {
                want(2)?;
                let rs = self.reg(o(0), line)?;
                let off = self.branch_off(o(1), line)?;
                let op = match mnem {
                    "blez" => Op::Blez { rs, off },
                    "bgtz" => Op::Bgtz { rs, off },
                    "bltz" => Op::Bltz { rs, off },
                    _ => Op::Bgez { rs, off },
                };
                self.push_tagged(op, tags);
            }
            "beqz" | "bnez" => {
                want(2)?;
                let rs = self.reg(o(0), line)?;
                let off = self.branch_off(o(1), line)?;
                let op = if mnem == "beqz" {
                    Op::Beq { rs, rt: Reg::ZERO, off }
                } else {
                    Op::Bne { rs, rt: Reg::ZERO, off }
                };
                self.push_tagged(op, tags);
            }
            "b" => {
                want(1)?;
                let off = self.branch_off(o(0), line)?;
                self.push_tagged(Op::Beq { rs: Reg::ZERO, rt: Reg::ZERO, off }, tags);
            }
            "blt" => cmpbr!(false, false, true),
            "bge" => cmpbr!(false, false, false),
            "bgt" => cmpbr!(true, false, true),
            "ble" => cmpbr!(true, false, false),
            "bltu" => cmpbr!(false, true, true),
            "bgeu" => cmpbr!(false, true, false),
            "bgtu" => cmpbr!(true, true, true),
            "bleu" => cmpbr!(true, true, false),
            "j" => {
                want(1)?;
                let target = self.jump_target(o(0), line)?;
                self.push_tagged(Op::J { target }, tags);
            }
            "jal" => {
                want(1)?;
                let target = self.jump_target(o(0), line)?;
                self.push_tagged(Op::Jal { target }, tags);
            }
            "jr" => {
                want(1)?;
                let rs = self.reg(o(0), line)?;
                self.push_tagged(Op::Jr { rs }, tags);
            }
            "jalr" => {
                let (rd, rs) = match nops {
                    1 => (Reg::RA, self.reg(o(0), line)?),
                    2 => (self.reg(o(0), line)?, self.reg(o(1), line)?),
                    _ => {
                        return Err(err(
                            line,
                            AsmErrorKind::BadOperands("jalr expects 1 or 2 operands".into()),
                        ))
                    }
                };
                self.push_tagged(Op::Jalr { rd, rs }, tags);
            }
            "add.s" => fparith!(Add, S),
            "sub.s" => fparith!(Sub, S),
            "mul.s" => fparith!(Mul, S),
            "div.s" => fparith!(Div, S),
            "add.d" => fparith!(Add, D),
            "sub.d" => fparith!(Sub, D),
            "mul.d" => fparith!(Mul, D),
            "div.d" => fparith!(Div, D),
            "c.eq.s" => fpcmp!(Eq, S),
            "c.lt.s" => fpcmp!(Lt, S),
            "c.le.s" => fpcmp!(Le, S),
            "c.eq.d" => fpcmp!(Eq, D),
            "c.lt.d" => fpcmp!(Lt, D),
            "c.le.d" => fpcmp!(Le, D),
            "neg.s" | "neg.d" | "abs.s" | "abs.d" | "mov.d" | "mov.s" => {
                want(2)?;
                let fd = self.reg(o(0), line)?;
                let fs = self.reg(o(1), line)?;
                let prec = if mnem.ends_with(".s") { Prec::S } else { Prec::D };
                let op = if mnem.starts_with("neg") {
                    Op::FpNeg { prec, fd, fs }
                } else if mnem.starts_with("abs") {
                    Op::FpAbs { prec, fd, fs }
                } else {
                    Op::FpMov { fd, fs }
                };
                self.push_tagged(op, tags);
            }
            "cvt.d.w" => {
                want(2)?;
                let fd = self.reg(o(0), line)?;
                let rs = self.reg(o(1), line)?;
                self.push_tagged(Op::CvtDW { fd, rs }, tags);
            }
            "cvt.w.d" => {
                want(2)?;
                let rd = self.reg(o(0), line)?;
                let fs = self.reg(o(1), line)?;
                self.push_tagged(Op::CvtWD { rd, fs }, tags);
            }
            "dmtc1" => {
                want(2)?;
                let fs = self.reg(o(0), line)?;
                let rt = self.reg(o(1), line)?;
                self.push_tagged(Op::Dmtc1 { fs, rt }, tags);
            }
            "dmfc1" => {
                want(2)?;
                let rt = self.reg(o(0), line)?;
                let fs = self.reg(o(1), line)?;
                self.push_tagged(Op::Dmfc1 { rt, fs }, tags);
            }
            "release" => {
                if self.mode == AsmMode::Scalar {
                    return Ok(()); // dropped entirely from the scalar binary
                }
                if nops == 0 {
                    return Err(err(
                        line,
                        AsmErrorKind::BadOperands("release expects at least one register".into()),
                    ));
                }
                let mut regs: Vec<Reg> = Vec::with_capacity(nops);
                for i in 0..nops {
                    let r = self.reg(o(i), line)?;
                    if r.index() == 0 {
                        // $0 is architecturally constant, and its zero
                        // register-field encoding means "empty slot" — the
                        // entry would silently vanish from the binary.
                        return Err(err(
                            line,
                            AsmErrorKind::BadOperands("cannot release $0".into()),
                        ));
                    }
                    regs.push(r);
                }
                let nchunks = regs.len().div_ceil(RegList::CAPACITY);
                for (ci, chunk) in regs.chunks(RegList::CAPACITY).enumerate() {
                    let t = if ci + 1 == nchunks { tags } else { TagBits::NONE };
                    self.push_tagged(Op::Release { regs: RegList::from_slice(chunk) }, t);
                }
            }
            "halt" => {
                want(0)?;
                self.push_tagged(Op::Halt, tags);
            }
            "nop" => {
                want(0)?;
                self.push_tagged(Op::Nop, tags);
            }
            // ---- remaining pseudos ----
            "li" => {
                want(2)?;
                let rd = self.reg(o(0), line)?;
                let v = match o(1) {
                    Some(Operand::Imm(v)) => *v,
                    _ => {
                        return Err(err(
                            line,
                            AsmErrorKind::BadOperands("li expects `li $r, imm`".into()),
                        ))
                    }
                };
                self.emit_li(rd, v, tags, line)?;
            }
            "la" => {
                want(2)?;
                let rd = self.reg(o(0), line)?;
                let addr = match o(1) {
                    Some(Operand::Sym(name, off)) => self.sym(name, *off, line)? as i64,
                    Some(Operand::Imm(v)) => *v,
                    other => {
                        return Err(err(
                            line,
                            AsmErrorKind::BadOperands(format!(
                                "la expects a symbol, found {other:?}"
                            )),
                        ))
                    }
                };
                // Fixed two-instruction expansion so pass-1 sizing is exact.
                let hi = addr >> 12;
                let lo = (addr & 0xfff) as i32;
                self.push(Op::Lui { rt: rd, imm: hi as i32 });
                self.push_tagged(Op::Ori { rt: rd, rs: rd, imm: lo }, tags);
            }
            "move" | "mov" => {
                want(2)?;
                let rd = self.reg(o(0), line)?;
                let rs = self.reg(o(1), line)?;
                self.push_tagged(Op::Addu { rd, rs, rt: Reg::ZERO }, tags);
            }
            "not" => {
                want(2)?;
                let rd = self.reg(o(0), line)?;
                let rs = self.reg(o(1), line)?;
                self.push_tagged(Op::Nor { rd, rs, rt: Reg::ZERO }, tags);
            }
            "neg" => {
                want(2)?;
                let rd = self.reg(o(0), line)?;
                let rs = self.reg(o(1), line)?;
                self.push_tagged(Op::Subu { rd, rs: Reg::ZERO, rt: rs }, tags);
            }
            other => {
                return Err(err(line, AsmErrorKind::UnknownMnemonic(other.to_owned())));
            }
        }
        Ok(())
    }
}

fn emit(stmts: &[(usize, Stmt)], layout: &Layout, mode: AsmMode) -> Result<Program, AsmError> {
    let mut em = Emitter { symbols: &layout.symbols, text: Vec::new(), mode };
    let mut data: Vec<u8> = Vec::new();
    let mut section = Section::Text;
    let mut tasks: BTreeMap<u32, TaskDescriptor> = BTreeMap::new();
    let mut pending_task: Option<(usize, Vec<TargetSpec>, Vec<Reg>)> = None;
    let mut entry_sym: Option<String> = None;

    for (line, stmt) in stmts {
        match stmt {
            Stmt::Label(_) => {}
            Stmt::Section(s) => section = *s,
            Stmt::Align(n) => {
                if section == Section::Data {
                    let a = 1usize << n;
                    while !(DATA_BASE as usize + data.len()).is_multiple_of(a) {
                        data.push(0);
                    }
                }
            }
            Stmt::Data(kind, items) => {
                let a = kind.size() as usize;
                while !(DATA_BASE as usize + data.len()).is_multiple_of(a) {
                    data.push(0);
                }
                for item in items {
                    let v: u64 = match item {
                        DataItem::Imm(v) => *v as u64,
                        DataItem::Sym(name, off) => {
                            let base = layout.symbols.get(name).copied().ok_or_else(|| {
                                err(*line, AsmErrorKind::UndefinedSymbol(name.clone()))
                            })?;
                            (base as i64 + off) as u64
                        }
                        DataItem::Fp(f) => f.to_bits(),
                    };
                    let n = kind.size() as usize;
                    if *kind != DataKind::Double && *kind != DataKind::Dword {
                        let limit = 1i128 << (8 * n);
                        let sv = v as i64 as i128;
                        if sv >= limit || sv < -(limit / 2) {
                            return Err(err(
                                *line,
                                AsmErrorKind::OutOfRange(format!(
                                    "data item {sv} does not fit {n} bytes"
                                )),
                            ));
                        }
                    }
                    data.extend_from_slice(&v.to_le_bytes()[..n]);
                }
            }
            Stmt::Space(n) => data.extend(std::iter::repeat_n(0u8, *n as usize)),
            Stmt::Asciiz(bytes) => {
                data.extend_from_slice(bytes);
                data.push(0);
            }
            Stmt::Entry(name) => entry_sym = Some(name.clone()),
            Stmt::Task { targets, create } => {
                if mode == AsmMode::Scalar {
                    continue;
                }
                if pending_task.is_some() {
                    return Err(err(
                        *line,
                        AsmErrorKind::Directive(
                            "two .task directives with no code between them".into(),
                        ),
                    ));
                }
                pending_task = Some((*line, targets.clone(), create.clone()));
            }
            Stmt::Ins { mnem, tags, ops } => {
                let before = em.text.len();
                let at = em.pc();
                if let Some((tline, targets, create)) = pending_task.take() {
                    let mut tt = Vec::with_capacity(targets.len());
                    for t in &targets {
                        tt.push(match t {
                            TargetSpec::Ret => TaskTarget::ret(),
                            TargetSpec::Halt => TaskTarget::halt(),
                            TargetSpec::Label(name) => {
                                let a = layout.symbols.get(name).copied().ok_or_else(|| {
                                    err(tline, AsmErrorKind::UndefinedSymbol(name.clone()))
                                })?;
                                TaskTarget::addr(a)
                            }
                        });
                    }
                    let mask: RegMask = create.iter().copied().collect();
                    tasks.insert(at, TaskDescriptor::new(at, mask, tt));
                }
                em.expand(mnem, *tags, ops, *line)?;
                let emitted = em.text.len() - before;
                debug_assert_eq!(
                    emitted,
                    size_in_words(mnem, ops, mode, *line)?,
                    "size_in_words out of sync for `{mnem}` at line {line}"
                );
            }
            Stmt::MsBegin | Stmt::MsEnd | Stmt::ScalarBegin | Stmt::ScalarEnd => unreachable!(),
        }
    }
    if let Some((tline, ..)) = pending_task {
        return Err(err(
            tline,
            AsmErrorKind::Directive(".task directive not followed by any instruction".into()),
        ));
    }

    let mut program = Program::new();
    program.text = em.text;
    program.symbols = layout.symbols.clone();
    program.tasks = tasks;
    if !data.is_empty() {
        program.data.push(DataSegment { base: DATA_BASE, bytes: data });
    }
    let entry_name =
        entry_sym.or_else(|| layout.symbols.contains_key("main").then(|| "main".to_owned()));
    program.entry = match entry_name {
        Some(name) => {
            *layout.symbols.get(&name).ok_or_else(|| err(0, AsmErrorKind::UndefinedSymbol(name)))?
        }
        None => TEXT_BASE,
    };
    Ok(program)
}
