//! Source regeneration (disassembly to reassemblable text).
//!
//! The paper's software-migration story (Section 2.2): "The job of
//! migrating a multiscalar program from one generation to another
//! generation of hardware might be as simple as taking an old binary,
//! determining the CFG (a routine task), deciding upon a task structure,
//! and producing a new binary." [`program_to_source`] implements the
//! mechanical part: it reconstructs annotated assembly from a
//! [`Program`] image — labels, task descriptors, tag suffixes, data —
//! such that reassembling yields a bit-identical binary. Retargeting is
//! then a matter of editing the emitted `.task` directives.

use ms_isa::{Op, Program, Reg, RegMask, TagBits, TargetKind, DATA_BASE};
use std::collections::BTreeMap;
use std::fmt::Write;

/// One task annotation for [`annotate_source`]: the create mask and the
/// descriptor targets (labels are synthesized from the addresses).
#[derive(Clone, Debug, Default)]
pub struct TaskAnn {
    /// Registers the task may produce.
    pub create: RegMask,
    /// Descriptor targets in order.
    pub targets: Vec<TargetKind>,
}

/// An instruction spliced in *before* an existing text address. Inserted
/// lines use labels for their control operands, so the emitted source
/// reassembles correctly even though insertion shifts every later
/// address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InsertOp {
    /// `release $a, $b, …`.
    Release(Vec<Reg>),
    /// `j <label>`, optionally stop-tagged (`j!s`) — the shape a
    /// partitioner needs to end a task whose last real instruction
    /// cannot carry the stop bit itself (e.g. a `jal` call).
    Jump {
        /// Jump target address (labelled in the output).
        target: u32,
        /// Whether the jump carries a `!s` stop tag.
        stop: bool,
    },
}

/// A full annotation overlay for [`annotate_source`]: task descriptors,
/// per-instruction tag bits, and inserted instructions, all keyed by the
/// *original* program's addresses.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// Task descriptors by entry address. These *replace* `prog.tasks`
    /// in the emitted source.
    pub tasks: BTreeMap<u32, TaskAnn>,
    /// Tag-bit overrides by address; instructions without an entry keep
    /// their own tags (none, for a scalar-mode program).
    pub tags: BTreeMap<u32, TagBits>,
    /// Instructions to emit immediately before the given address (an
    /// address equal to the text end appends at the end). Inserted
    /// instructions precede the address's `.task` directive and label:
    /// they belong to the *preceding* task.
    pub insert_before: BTreeMap<u32, Vec<InsertOp>>,
}

impl Annotations {
    /// The identity overlay for `prog`: its own task descriptors, no tag
    /// overrides, no insertions. [`annotate_source`] with this overlay
    /// is exactly [`program_to_source`].
    pub fn from_program(prog: &Program) -> Annotations {
        let tasks = prog
            .tasks
            .iter()
            .map(|(&e, d)| {
                let targets = d.targets.iter().map(|t| t.kind).collect();
                (e, TaskAnn { create: d.create, targets })
            })
            .collect();
        Annotations { tasks, ..Annotations::default() }
    }
}

/// Computes a label name for every address that needs one: task entries,
/// branch/jump targets, and the entry point. Existing symbol names are
/// reused; anonymous targets get `L_<hex>`.
fn label_map(prog: &Program, ann: &Annotations) -> BTreeMap<u32, String> {
    let mut labels: BTreeMap<u32, String> = BTreeMap::new();
    let mut need = |addr: u32| {
        labels.entry(addr).or_insert_with(|| format!("L_{addr:x}"));
    };
    need(prog.entry);
    for (&entry, task) in &ann.tasks {
        need(entry);
        for t in &task.targets {
            if let TargetKind::Addr(a) = *t {
                need(a);
            }
        }
    }
    for ops in ann.insert_before.values() {
        for op in ops {
            if let InsertOp::Jump { target, .. } = *op {
                need(target);
            }
        }
    }
    for (i, instr) in prog.text.iter().enumerate() {
        let pc = prog.text_base + 4 * i as u32;
        match instr.op {
            Op::J { target } | Op::Jal { target } => need(target),
            ref op if op.is_branch() => {
                if let Some(t) = branch_target(op, pc) {
                    need(t);
                }
            }
            _ => {}
        }
    }
    // Prefer original symbol names where available (text addresses only).
    for (name, &addr) in &prog.symbols {
        if labels.contains_key(&addr) && addr >= prog.text_base && addr < prog.text_end() {
            labels.insert(addr, name.clone());
        }
    }
    labels
}

fn branch_target(op: &Op, pc: u32) -> Option<u32> {
    let off = match *op {
        Op::Beq { off, .. }
        | Op::Bne { off, .. }
        | Op::Blez { off, .. }
        | Op::Bgtz { off, .. }
        | Op::Bltz { off, .. }
        | Op::Bgez { off, .. } => off,
        _ => return None,
    };
    Some((pc as i64 + 4 + (off as i64) * 4) as u32)
}

/// Renders one instruction with labelled control-flow operands.
fn render_instr(op: &Op, pc: u32, labels: &BTreeMap<u32, String>) -> String {
    let lab = |a: u32| labels.get(&a).cloned().unwrap_or_else(|| format!("{a:#x}"));
    match *op {
        Op::Beq { rs, rt, .. } | Op::Bne { rs, rt, .. } => {
            let t = lab(branch_target(op, pc).expect("branch"));
            let m = if matches!(op, Op::Beq { .. }) { "beq" } else { "bne" };
            format!("{m} {rs}, {rt}, {t}")
        }
        Op::Blez { rs, .. } | Op::Bgtz { rs, .. } | Op::Bltz { rs, .. } | Op::Bgez { rs, .. } => {
            let t = lab(branch_target(op, pc).expect("branch"));
            let m = match op {
                Op::Blez { .. } => "blez",
                Op::Bgtz { .. } => "bgtz",
                Op::Bltz { .. } => "bltz",
                _ => "bgez",
            };
            format!("{m} {rs}, {t}")
        }
        Op::J { target } => format!("j {}", lab(target)),
        Op::Jal { target } => format!("jal {}", lab(target)),
        _ => {
            let ops = op.operands();
            if ops.is_empty() {
                op.mnemonic()
            } else {
                format!("{} {}", op.mnemonic(), ops)
            }
        }
    }
}

/// Regenerates annotated assembly source from a program image.
///
/// The output reassembles (in multiscalar mode) to a binary with
/// identical text, task descriptors, entry point and data bytes. Tag
/// suffixes, `.task` directives and data contents are all reproduced;
/// synthesized labels are used where the original symbol table has none.
///
/// # Panics
/// Panics if a data segment lies below the standard data base (never
/// produced by this assembler).
pub fn program_to_source(prog: &Program) -> String {
    annotate_source(prog, &Annotations::from_program(prog))
}

fn render_insert(op: &InsertOp, labels: &BTreeMap<u32, String>) -> String {
    match op {
        InsertOp::Release(regs) => {
            let names: Vec<String> = regs.iter().map(|r| r.to_string()).collect();
            format!("release {}", names.join(", "))
        }
        InsertOp::Jump { target, stop } => {
            let lab = labels.get(target).cloned().unwrap_or_else(|| format!("{target:#x}"));
            format!("j{} {lab}", if *stop { "!s" } else { "" })
        }
    }
}

/// Re-emits `prog` as assembly source with the annotation overlay `ann`
/// applied: `ann.tasks` becomes the `.task` directives, `ann.tags`
/// overrides per-instruction tag suffixes, and `ann.insert_before`
/// splices new instructions in front of existing addresses.
///
/// This is the emission half of the paper's Section 2.2 migration story:
/// a partitioner decides a task structure over an un-annotated (scalar)
/// binary and this function produces the annotated program text. Because
/// every control operand is emitted as a label, inserted instructions
/// shift later addresses without breaking branches, jumps, or descriptor
/// targets.
///
/// # Panics
/// Panics if a data segment lies below the standard data base (never
/// produced by this assembler).
pub fn annotate_source(prog: &Program, ann: &Annotations) -> String {
    let labels = label_map(prog, ann);
    let mut out = String::new();
    let _ = writeln!(out, "; regenerated by ms-asm (paper Section 2.2 binary migration)");

    // Data-segment symbols, sorted by (address, name) so the emission —
    // and therefore the whole regenerated source — is deterministic.
    // They must survive the round trip: workload memory expectations and
    // validation harnesses address results by data label.
    let mut data_syms: Vec<(u32, &str)> = prog
        .symbols
        .iter()
        .filter(|&(_, &a)| a >= DATA_BASE)
        .map(|(n, &a)| (a, n.as_str()))
        .collect();
    data_syms.sort_unstable();
    let mut di = 0;

    // Emits every data label bound to `addr`.
    fn labels_at(out: &mut String, syms: &[(u32, &str)], di: &mut usize, addr: u32) {
        while *di < syms.len() && syms[*di].0 == addr {
            let _ = writeln!(out, "{}:", syms[*di].1);
            *di += 1;
        }
    }

    // Advances `cursor` to `target` with `.space`, pausing at labels.
    fn space_to(
        out: &mut String,
        syms: &[(u32, &str)],
        di: &mut usize,
        cursor: &mut u32,
        target: u32,
    ) {
        loop {
            labels_at(out, syms, di, *cursor);
            let stop = match syms.get(*di) {
                Some(&(a, _)) if a < target => a,
                _ => target,
            };
            if stop > *cursor {
                let _ = writeln!(out, ".space {}", stop - *cursor);
                *cursor = stop;
            }
            if *cursor == target {
                break;
            }
        }
    }

    // Data segments, reproduced byte-for-byte at their original layout,
    // with `.space` runs and `.byte` chunks split wherever a label lands.
    if !prog.data.is_empty() || !data_syms.is_empty() {
        let _ = writeln!(out, ".data");
        let mut cursor = DATA_BASE;
        for seg in &prog.data {
            assert!(seg.base >= cursor, "data segment below the data base");
            space_to(&mut out, &data_syms, &mut di, &mut cursor, seg.base);
            let end = seg.base + seg.bytes.len() as u32;
            while cursor < end {
                labels_at(&mut out, &data_syms, &mut di, cursor);
                let mut stop = (cursor + 24).min(end);
                if let Some(&(a, _)) = data_syms.get(di) {
                    stop = stop.min(a.max(cursor + 1));
                }
                let chunk = &seg.bytes[(cursor - seg.base) as usize..(stop - seg.base) as usize];
                let items: Vec<String> = chunk.iter().map(|b| b.to_string()).collect();
                let _ = writeln!(out, "  .byte {}", items.join(", "));
                cursor = stop;
            }
        }
        // Labels past the last initialized byte (`.space` result areas).
        if let Some(&(last, _)) = data_syms.last() {
            let target = last.max(cursor);
            space_to(&mut out, &data_syms, &mut di, &mut cursor, target);
            labels_at(&mut out, &data_syms, &mut di, cursor);
        }
    }

    let _ = writeln!(out, ".text");
    if let Some(entry_label) = labels.get(&prog.entry) {
        let _ = writeln!(out, ".entry {entry_label}");
    }
    for (i, instr) in prog.text.iter().enumerate() {
        let pc = prog.text_base + 4 * i as u32;
        if let Some(ops) = ann.insert_before.get(&pc) {
            for op in ops {
                let _ = writeln!(out, "    {}", render_insert(op, &labels));
            }
        }
        if let Some(task) = ann.tasks.get(&pc) {
            let targets: Vec<String> = task
                .targets
                .iter()
                .map(|t| match *t {
                    TargetKind::Addr(a) => {
                        labels.get(&a).cloned().unwrap_or_else(|| format!("{a:#x}"))
                    }
                    TargetKind::Return => "ret".into(),
                    TargetKind::Halt => "halt".into(),
                })
                .collect();
            let create: Vec<String> = task.create.iter().map(|r| r.to_string()).collect();
            let _ =
                writeln!(out, ".task targets={} create={}", targets.join(","), create.join(","));
        }
        if let Some(l) = labels.get(&pc) {
            let _ = writeln!(out, "{l}:");
        }
        let body = render_instr(&instr.op, pc, &labels);
        // Tag suffixes attach to the mnemonic.
        let tags = ann.tags.get(&pc).copied().unwrap_or(instr.tags);
        let rendered = match body.split_once(' ') {
            Some((m, rest)) => format!("{m}{} {rest}", tags.suffix()),
            None => format!("{body}{}", tags.suffix()),
        };
        let _ = writeln!(out, "    {rendered}");
    }
    if let Some(ops) = ann.insert_before.get(&prog.text_end()) {
        for op in ops {
            let _ = writeln!(out, "    {}", render_insert(op, &labels));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble, AsmMode};

    const SRC: &str = "
.data
vals: .word 3, 1, 4, 1, 5
msg:  .asciiz \"hi\"
.text
main:
.task targets=LOOP create=$2,$16
INIT:
    li!f $16, 5
    li!f $2, 0
    b!s  LOOP
.task targets=LOOP,DONE create=$2
LOOP:
    addiu!f $2, $2, 1
    bne!s $2, $16, LOOP
.task targets=halt create=
DONE:
    halt
";

    fn roundtrip_equal(src: &str) {
        let p1 = assemble(src, AsmMode::Multiscalar).expect("original assembles");
        let regenerated = program_to_source(&p1);
        let p2 = assemble(&regenerated, AsmMode::Multiscalar)
            .unwrap_or_else(|e| panic!("regenerated source fails: {e}\n{regenerated}"));
        assert_eq!(p1.text, p2.text, "text differs\n{regenerated}");
        assert_eq!(p1.entry, p2.entry);
        assert_eq!(p1.tasks, p2.tasks, "task descriptors differ");
        assert_eq!(p1.data, p2.data, "data differs");
    }

    #[test]
    fn simple_program_round_trips() {
        roundtrip_equal(SRC);
    }

    #[test]
    fn wide_release_round_trips() {
        // More than RegList::CAPACITY registers: the assembler chunks the
        // pseudo into several release instructions with the tags on the
        // last one; the disassembly must reassemble to the identical text.
        roundtrip_equal(
            "
.text
main:
.task targets=halt create=$4,$5,$6,$7,$8,$9,$f2
A:
    li $4, 1
    release $4, $5, $6, $7
    release!s $8, $9, $f2, $4, $5
    halt
",
        );
    }

    #[test]
    fn calls_releases_and_fp_round_trip() {
        roundtrip_equal(
            "
.data
q: .double 0.25
.text
main:
.task targets=T create=$4,$29,$31,$f1
A:
    la   $9, q
    l.d!f $f1, 0($9)
    addiu!f $29, $29, -8
    sd   $31, 0($29)
    li!f $4, 3
    jal!f!s T
.task targets=halt create=$2
T:
    cvt.d.w $f2, $4
    mul.d $f2, $f2, $f1
    c.lt.d $2, $f1, $f2
    release $2
    blez!st $2, SKIP
    addiu!f $2, $2, 1
SKIP:
    halt
",
        );
    }

    #[test]
    fn regenerated_source_contains_annotations() {
        let p = assemble(SRC, AsmMode::Multiscalar).unwrap();
        let s = program_to_source(&p);
        assert!(s.contains(".task targets="), "{s}");
        assert!(s.contains("addiu!f"), "{s}");
        assert!(s.contains("bne!s"), "{s}");
        assert!(s.contains(".entry"), "{s}");
    }

    #[test]
    fn original_label_names_are_preferred() {
        let p = assemble(SRC, AsmMode::Multiscalar).unwrap();
        let s = program_to_source(&p);
        assert!(s.contains("LOOP:"), "{s}");
        assert!(s.contains("DONE:"), "{s}");
    }

    #[test]
    fn annotate_source_applies_overlay_to_scalar_program() {
        use ms_isa::{Reg, RegMask, StopCond, TagBits, TargetKind};

        // A scalar program (no tags, no tasks) gets a two-task overlay:
        // forward + stop tags, a release, and an inserted stop-jump.
        let scalar = assemble(
            "
.text
main:
A:
    li $4, 1
    addiu $5, $4, 2
B:
    addiu $5, $5, 1
    halt
",
            AsmMode::Scalar,
        )
        .unwrap();
        assert!(scalar.tasks.is_empty());
        let a = scalar.symbol("A").unwrap();
        let b = scalar.symbol("B").unwrap();

        let mut ann = Annotations::default();
        ann.tasks.insert(
            a,
            TaskAnn {
                create: RegMask::from_iter([Reg::int(4), Reg::int(5)]),
                targets: vec![TargetKind::Addr(b)],
            },
        );
        ann.tasks.insert(
            b,
            TaskAnn { create: RegMask::from_iter([Reg::int(5)]), targets: vec![TargetKind::Halt] },
        );
        ann.tags.insert(a, TagBits { forward: true, stop: StopCond::None });
        ann.insert_before.insert(
            b,
            vec![InsertOp::Release(vec![Reg::int(5)]), InsertOp::Jump { target: b, stop: true }],
        );

        let src = annotate_source(&scalar, &ann);
        let prog = assemble(&src, AsmMode::Multiscalar)
            .unwrap_or_else(|e| panic!("annotated source fails: {e}\n{src}"));
        // Two inserted instructions shift the text by two words.
        assert_eq!(prog.text.len(), scalar.text.len() + 2, "{src}");
        assert_eq!(prog.tasks.len(), 2, "{src}");
        // The second task's entry shifted past the inserted lines but
        // its descriptor still lands on the right instruction.
        let (&e2, d2) = prog.tasks.iter().nth(1).unwrap();
        assert_eq!(d2.targets[0].kind, TargetKind::Halt);
        assert!(e2 > a, "{src}");
        // Tag override applied to the first instruction.
        assert!(prog.text[0].tags.forward, "{src}");
        // Reassembling the same source in scalar mode drops the overlay
        // and the inserted release (but keeps the jump).
        let rescalar = assemble(&src, AsmMode::Scalar).unwrap();
        assert_eq!(rescalar.text.len(), scalar.text.len() + 1, "{src}");
        assert!(rescalar.tasks.is_empty());
    }

    #[test]
    fn identity_overlay_matches_program_to_source() {
        let p = assemble(SRC, AsmMode::Multiscalar).unwrap();
        assert_eq!(program_to_source(&p), annotate_source(&p, &Annotations::from_program(&p)));
    }
}
