//! Assembler errors with source-line locations.

use std::fmt;

/// An assembly error, pinned to a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    pub(crate) fn new(line: usize, kind: AsmErrorKind) -> AsmError {
        AsmError { line, kind }
    }
}

/// The category of assembly failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Malformed token or statement.
    Syntax(String),
    /// Unknown instruction mnemonic.
    UnknownMnemonic(String),
    /// Wrong operand count or kinds for a mnemonic.
    BadOperands(String),
    /// Reference to an undefined label.
    UndefinedSymbol(String),
    /// The same label defined twice.
    DuplicateSymbol(String),
    /// An immediate or branch offset does not fit its field.
    OutOfRange(String),
    /// Misuse of a directive (`.task` with no following code, unbalanced
    /// `.ms_begin`/`.ms_end`, ...).
    Directive(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (label, msg) = match &self.kind {
            AsmErrorKind::Syntax(m) => ("syntax error", m),
            AsmErrorKind::UnknownMnemonic(m) => ("unknown mnemonic", m),
            AsmErrorKind::BadOperands(m) => ("bad operands", m),
            AsmErrorKind::UndefinedSymbol(m) => ("undefined symbol", m),
            AsmErrorKind::DuplicateSymbol(m) => ("duplicate symbol", m),
            AsmErrorKind::OutOfRange(m) => ("out of range", m),
            AsmErrorKind::Directive(m) => ("directive error", m),
        };
        write!(f, "line {}: {label}: {msg}", self.line)
    }
}

impl std::error::Error for AsmError {}
