//! # ms-asm — assembler for multiscalar programs
//!
//! A two-pass assembler producing [`ms_isa::Program`] images for the
//! multiscalar and scalar simulators. It plays the role of the paper's
//! "multiscalar compiler" back end: the human (or a workload generator)
//! writes one annotated source, and the assembler produces *both* the
//! scalar baseline binary and the multiscalar binary from it — just as the
//! paper derives an annotated binary and compares its dynamic instruction
//! count against the plain one (Table 2).
//!
//! ## Source syntax
//!
//! ```text
//! .data
//! buf:     .space 64
//! msg:     .asciiz "hi"
//! ptrs:    .word node0, node1     ; label references in data
//! pi:      .double 3.14159
//!
//! .text
//! ; A task: one iteration of the outer loop (paper Figure 4).
//! .task targets=OUTER,OUTERFALLOUT create=$4,$8,$17,$20,$23
//! OUTER:
//!     addiu!f $20, $20, 16        ; !f = forward bit
//!     release $8, $17             ; release unproduced creates
//!     bne!s   $20, $16, OUTER     ; !s = stop always
//! OUTERFALLOUT:
//!     halt
//!
//! .ms_begin
//!     nop    ; lines assembled only into the multiscalar binary
//! .ms_end
//! ```
//!
//! Tag suffixes: `!f` (forward), `!s` (stop always), `!st` (stop if
//! taken), `!sn` (stop if not taken). Comments: `;`, `#`, or `//`.
//! Pseudo-instructions: `li`, `la`, `move`, `not`, `neg`, `b`, `beqz`,
//! `bnez`, `blt`/`bge`/`bgt`/`ble` (+`u` variants, via `$at`), and
//! `release` with any number of registers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod assemble;
mod disasm;
mod error;
mod parser;

pub use assemble::{assemble, AsmMode};
pub use disasm::{annotate_source, program_to_source, Annotations, InsertOp, TaskAnn};
pub use error::{AsmError, AsmErrorKind};
pub use parser::{DataItem, DataKind, Operand, Section, Stmt, TargetSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use ms_isa::{Op, Reg, StopCond, TargetKind, TEXT_BASE};

    const FIG4: &str = r#"
.data
buffer:   .space 256
listhd:   .word 0

.text
main:
.task targets=OUTER,OUTERFALLOUT create=$4,$8,$17,$20,$23
OUTER:
    addiu!f $20, $20, 16
    lw!f    $23, -16($20)
    la      $17, listhd
    lw      $17, 0($17)
    beq     $17, $0, SKIPINNER
INNER:
    lw      $8, 0($17)
    bne     $8, $23, SKIPCALL
    move    $4, $17
    jal     process
    j       INNERFALLOUT
SKIPCALL:
    lw      $17, 8($17)
    bne     $17, $0, INNER
INNERFALLOUT:
    release $8, $17
    bne     $17, $0, SKIPINNER
    move    $4, $23
    jal     addlist
SKIPINNER:
    release $4
    bne!s   $20, $16, OUTER
OUTERFALLOUT:
    halt
process:
    jr      $31
addlist:
    jr      $31
"#;

    #[test]
    fn figure4_assembles_in_both_modes() {
        let ms = assemble(FIG4, AsmMode::Multiscalar).expect("multiscalar");
        let sc = assemble(FIG4, AsmMode::Scalar).expect("scalar");
        // The multiscalar binary carries release instructions the scalar
        // one lacks (Table 2's instruction-count increase).
        assert_eq!(ms.text.len(), sc.text.len() + 2);
        assert_eq!(ms.tasks.len(), 1);
        assert!(sc.tasks.is_empty());

        let outer = ms.symbol("OUTER").unwrap();
        let desc = ms.task_at(outer).unwrap();
        assert_eq!(desc.create.to_string(), "$4,$8,$17,$20,$23");
        assert_eq!(desc.targets.len(), 2);
        assert_eq!(desc.targets[0].kind, TargetKind::Addr(outer));
        assert_eq!(desc.targets[1].kind, TargetKind::Addr(ms.symbol("OUTERFALLOUT").unwrap()));

        // Tag bits present only in the multiscalar binary.
        let first = ms.instr_at(outer).unwrap();
        assert!(first.tags.forward);
        let first_sc = sc.instr_at(sc.symbol("OUTER").unwrap()).unwrap();
        assert!(!first_sc.tags.forward);
        // The closing branch stops the task.
        let stop_pc = ms.symbol("OUTERFALLOUT").unwrap() - 4;
        assert_eq!(ms.instr_at(stop_pc).unwrap().tags.stop, StopCond::Always);
    }

    #[test]
    fn out_of_range_shift_amounts_are_rejected() {
        for mnem in ["sll", "srl", "sra"] {
            for sh in [64i64, 65, 1000, -1] {
                let src = format!("main:\n {mnem} $2, $3, {sh}\n halt\n");
                let e = assemble(&src, AsmMode::Scalar)
                    .expect_err("out-of-range shift must not assemble");
                assert!(matches!(e.kind, crate::AsmErrorKind::BadOperands(_)), "{mnem} {sh}: {e}");
            }
            // The boundary value still assembles.
            let src = format!("main:\n {mnem} $2, $3, 63\n halt\n");
            assemble(&src, AsmMode::Scalar).expect("shift by 63 is legal");
        }
    }

    #[test]
    fn release_of_zero_register_is_rejected() {
        for src in ["main:\n release $0\n halt\n", "main:\n release $5, $0, $6\n halt\n"] {
            let e =
                assemble(src, AsmMode::Multiscalar).expect_err("release of $0 must not assemble");
            assert!(matches!(e.kind, crate::AsmErrorKind::BadOperands(_)), "{e}");
        }
    }

    #[test]
    fn entry_defaults_to_main() {
        let p = assemble("start: nop\nmain: halt\n", AsmMode::Scalar).unwrap();
        assert_eq!(p.entry, p.symbol("main").unwrap());
        let q = assemble("start: nop\n halt\n", AsmMode::Scalar).unwrap();
        assert_eq!(q.entry, TEXT_BASE);
        let r = assemble(".entry start\nstart: nop\nmain: halt\n", AsmMode::Scalar).unwrap();
        assert_eq!(r.entry, r.symbol("start").unwrap());
    }

    #[test]
    fn li_expansion_sizes() {
        let p = assemble("main: li $2, 5\nli $3, 100000\nhalt\n", AsmMode::Scalar).unwrap();
        assert_eq!(p.text.len(), 4); // 1 + 2 + 1
        assert!(matches!(p.text[0].op, Op::Addiu { imm: 5, .. }));
        assert!(matches!(p.text[1].op, Op::Lui { .. }));
        assert!(matches!(p.text[2].op, Op::Ori { .. }));
    }

    #[test]
    fn li_reconstructs_value_semantics() {
        // lui(hi) then ori(lo) must reconstruct the exact constant under
        // the ISA semantics rt = (hi << 12) | lo.
        for v in [100000i64, -100000, 4096, -4097, 0x3fffff, -2049, 2048] {
            let p = assemble(&format!("main: li $2, {v}\n halt\n"), AsmMode::Scalar).unwrap();
            let (hi, lo) = match (p.text[0].op, p.text[1].op) {
                (Op::Lui { imm: hi, .. }, Op::Ori { imm: lo, .. }) => (hi, lo),
                other => panic!("unexpected {other:?}"),
            };
            let got = ((hi as i64) << 12) | (lo as i64);
            assert_eq!(got, v, "li {v}");
        }
    }

    #[test]
    fn branch_offsets_resolve_both_directions() {
        let src = "main:\nL1: addiu $2, $2, 1\n beq $2, $3, L2\n b L1\nL2: halt\n";
        let p = assemble(src, AsmMode::Scalar).unwrap();
        match p.text[1].op {
            Op::Beq { off, .. } => assert_eq!(off, 1),
            ref other => panic!("unexpected {other:?}"),
        }
        match p.text[2].op {
            Op::Beq { off, .. } => assert_eq!(off, -3),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ms_blocks_select_lines_by_mode() {
        let src = "main:\n.ms_begin\n addiu $2, $2, 1\n.ms_end\n.scalar_begin\n addiu $3, $3, 1\n.scalar_end\n halt\n";
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let sc = assemble(src, AsmMode::Scalar).unwrap();
        assert_eq!(ms.text.len(), 2);
        assert_eq!(sc.text.len(), 2);
        assert!(matches!(ms.text[0].op, Op::Addiu { rt, .. } if rt == Reg::int(2)));
        assert!(matches!(sc.text[0].op, Op::Addiu { rt, .. } if rt == Reg::int(3)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("main:\n bogus $1\n", AsmMode::Scalar).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));

        let e = assemble("main:\n lw $1, nowhere($2)\n", AsmMode::Scalar).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UndefinedSymbol(_)));

        let e = assemble("a: nop\na: nop\n", AsmMode::Scalar).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateSymbol(_)));

        let e = assemble("main: addiu $1, $2, 99999\n", AsmMode::Scalar).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::OutOfRange(_)));
    }

    #[test]
    fn data_labels_resolve_in_words() {
        let src = "\n.data\nn0: .word 7, n1\nn1: .word 9, 0\n.text\nmain: halt\n";
        let p = assemble(src, AsmMode::Scalar).unwrap();
        let n1 = p.symbol("n1").unwrap();
        let seg = &p.data[0];
        let w = u32::from_le_bytes(seg.bytes[4..8].try_into().unwrap());
        assert_eq!(w, n1);
    }

    #[test]
    fn release_chunks_into_triples() {
        let p =
            assemble("main: release $4, $5, $6, $7, $8\n halt\n", AsmMode::Multiscalar).unwrap();
        assert_eq!(p.text.len(), 3); // 2 release instrs + halt
        match p.text[0].op {
            Op::Release { regs } => assert_eq!(regs.len(), 3),
            ref other => panic!("unexpected {other:?}"),
        }
        match p.text[1].op {
            Op::Release { regs } => assert_eq!(regs.len(), 2),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cmp_branch_pseudos_use_at() {
        let p = assemble("main:\nL: blt $4, $5, L\n halt\n", AsmMode::Scalar).unwrap();
        assert_eq!(p.text.len(), 3);
        assert!(matches!(p.text[0].op, Op::Slt { rd, .. } if rd == Reg::int(1)));
        assert!(matches!(p.text[1].op, Op::Bne { off: -2, .. }));
    }

    #[test]
    fn double_data_round_trips() {
        let src = ".data\npi: .double 3.5\n.text\nmain: halt\n";
        let p = assemble(src, AsmMode::Scalar).unwrap();
        let seg = &p.data[0];
        let bits = u64::from_le_bytes(seg.bytes[0..8].try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 3.5);
    }

    #[test]
    fn unbalanced_blocks_rejected() {
        assert!(assemble(".ms_begin\nmain: halt\n", AsmMode::Scalar).is_err());
        assert!(assemble(".ms_end\nmain: halt\n", AsmMode::Scalar).is_err());
        assert!(assemble(
            ".ms_begin\n.scalar_begin\n.scalar_end\n.ms_end\nmain: halt\n",
            AsmMode::Scalar
        )
        .is_err());
    }

    #[test]
    fn task_without_code_is_an_error() {
        let e = assemble(".task targets=halt\n", AsmMode::Multiscalar).unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::Directive(_)));
    }
}
