//! End-to-end cache semantics: warm re-runs execute nothing, key changes
//! invalidate exactly the changed point, corruption is detected and
//! recomputed.

use ms_sweep::{run_jobs, run_sweep, Job, JobKind, SweepCache, SweepOptions, SweepSpec};
use ms_workloads::Scale;
use multiscalar::SimConfig;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ms-sweep-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(dir: &PathBuf) -> SweepOptions {
    SweepOptions { jobs: 2, cache: SweepCache::at(dir), ..SweepOptions::default() }
}

fn spec() -> SweepSpec {
    SweepSpec {
        workloads: vec!["Wc".into(), "Cmp".into()],
        widths: vec![1],
        unit_counts: vec![4],
        ..SweepSpec::table34(Scale::Test, false)
    }
}

#[test]
fn second_identical_run_executes_zero_jobs() {
    let dir = tmpdir("warm");
    let cold = run_sweep(&spec(), &opts(&dir));
    assert_eq!(cold.executed, cold.total());
    assert_eq!(cold.cache_hits, 0);

    let warm = run_sweep(&spec(), &opts(&dir));
    assert_eq!(warm.executed, 0, "warm run must execute nothing");
    assert_eq!(warm.cache_hits, warm.total());
    for (c, w) in cold.successes().zip(warm.successes()) {
        assert_eq!(c.job, w.job);
        assert_eq!(c.stats.cycles, w.stats.cycles);
        assert!(!c.cached && w.cached);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changing_one_config_field_invalidates_exactly_that_point() {
    let dir = tmpdir("invalidate-cfg");
    let jobs = spec().expand();
    let n = jobs.len();
    assert_eq!(run_jobs(jobs.clone(), &opts(&dir)).executed, n);

    // Same sweep, but one multiscalar point gets a different ARB
    // capacity (a field outside the table axes).
    let mut changed = jobs.clone();
    let target = changed
        .iter_mut()
        .find(|j| j.kind == JobKind::Multiscalar)
        .expect("spec has multiscalar points");
    target.cfg.arb_capacity = 64;
    let report = run_jobs(changed, &opts(&dir));
    assert_eq!(report.executed, 1, "exactly the changed point re-executes");
    assert_eq!(report.cache_hits, n - 1);

    // Changing one job's workload *scale* likewise re-executes only it.
    let mut rescaled = jobs.clone();
    rescaled[0].scale = Scale::Full;
    let report = run_jobs(rescaled, &opts(&dir));
    assert_eq!(report.executed, 1, "exactly the rescaled point re-executes");
    assert_eq!(report.cache_hits, n - 1);

    // The original sweep is still fully cached.
    assert_eq!(run_jobs(jobs, &opts(&dir)).executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entries_are_recomputed_not_trusted() {
    let dir = tmpdir("corrupt");
    let job = Job {
        workload: "Wc".into(),
        scale: Scale::Test,
        kind: JobKind::Multiscalar,
        cfg: SimConfig::multiscalar(4),
        partition: None,
    };
    let cold = run_jobs(vec![job.clone()], &opts(&dir));
    let truth = cold.successes().next().unwrap().stats.cycles;

    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    assert_eq!(entries.len(), 1);

    for (tag, mutate) in [
        (
            "truncated",
            Box::new(|t: &str| t[..t.len() / 3].to_string()) as Box<dyn Fn(&str) -> String>,
        ),
        ("bit-flipped", Box::new(|t: &str| t.replacen("cycles", "cycels", 1))),
        ("garbage", Box::new(|_: &str| "not a cache entry at all\n".to_string())),
    ] {
        let original = std::fs::read_to_string(&entries[0]).unwrap();
        std::fs::write(&entries[0], mutate(&original)).unwrap();
        let report = run_jobs(vec![job.clone()], &opts(&dir));
        assert_eq!(report.executed, 1, "{tag} entry must be recomputed");
        assert_eq!(report.cache_hits, 0, "{tag} entry must not hit");
        let recomputed = report.successes().next().unwrap();
        assert_eq!(recomputed.stats.cycles, truth, "{tag}: recomputed result matches");
    }

    // The recompute rewrote a valid entry: we hit again.
    assert_eq!(run_jobs(vec![job], &opts(&dir)).cache_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn env_override_selects_the_cache_directory() {
    // Constructor behavior only (no env mutation: tests run in parallel
    // threads and `set_var` is process-global).
    let c = SweepCache::at("/some/dir");
    assert_eq!(c.dir().unwrap(), std::path::Path::new("/some/dir"));
    assert!(SweepCache::from_env().is_enabled(), "default cache location is always enabled");
    assert!(!SweepCache::disabled().is_enabled());
}
