//! Parallel execution must be observationally identical to serial
//! execution: same outcomes, same order, byte-identical artifacts.

use ms_sweep::{artifacts, run_sweep, SweepOptions, SweepSpec};
use ms_workloads::Scale;

/// 3 workloads × 2 configurations (scalar + 4-unit at w1, in-order and
/// out-of-order) — 12 design points, enough to keep every worker of an
/// 8-thread pool busy and racing.
fn spec() -> SweepSpec {
    SweepSpec {
        workloads: vec!["Wc".into(), "Cmp".into(), "Example".into()],
        widths: vec![1],
        unit_counts: vec![4],
        ..SweepSpec::tables34(Scale::Test)
    }
}

fn artifacts_with_jobs(jobs: usize) -> (String, String) {
    let opts = SweepOptions { jobs, ..SweepOptions::default() };
    let report = run_sweep(&spec(), &opts);
    assert_eq!(report.total(), 3 * 2 * 2);
    assert_eq!(report.executed, report.total(), "cache is disabled, all points execute");
    assert_eq!(report.failures().count(), 0);
    (artifacts::results_json(&report), artifacts::results_csv(&report))
}

#[test]
fn two_and_eight_workers_match_serial_byte_for_byte() {
    let (serial_json, serial_csv) = artifacts_with_jobs(1);
    for workers in [2, 8] {
        let (json, csv) = artifacts_with_jobs(workers);
        assert_eq!(json, serial_json, "results.json differs with {workers} workers");
        assert_eq!(csv, serial_csv, "results.csv differs with {workers} workers");
    }
}

#[test]
fn worker_count_caps_never_exceed_pending_jobs() {
    let opts = SweepOptions { jobs: 64, ..SweepOptions::default() };
    assert_eq!(opts.worker_count(3), 3, "no idle surplus workers");
    assert_eq!(opts.worker_count(0), 1);
    let serial = SweepOptions { jobs: 1, ..SweepOptions::default() };
    assert_eq!(serial.worker_count(100), 1);
}
