//! Deterministic sweep artifacts: a structured JSON results file and a
//! flat CSV matrix.
//!
//! Both renderings depend only on the job list and the simulation
//! results — never on worker count, interleaving, or whether a point was
//! served from the cache — so a parallel run's artifacts are
//! byte-identical to a serial run's, and a warm-cache re-run reproduces
//! the cold run's files exactly.

use crate::engine::{JobFailure, JobOutcome, SweepReport};
use crate::job::Job;
use crate::statsio::stats_to_json;
use ms_trace::json;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

static ARTIFACT_TMP: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` crash-safely: the bytes land in a private
/// sibling temp file, are fsynced to stable storage, and are published
/// onto `path` with an atomic rename. No crash ordering — of this
/// process or the host — can leave a torn or half-written artifact at
/// `path`; readers see either the old bytes or the new bytes, never a
/// mix. All sweep/serve/chaos CLIs route their artifact writes
/// (`results.json`, reports, profiles) through this helper.
///
/// # Errors
/// Any I/O failure along the way; the temp file is removed on error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let n = ARTIFACT_TMP.fetch_add(1, Ordering::Relaxed);
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "artifact path has no file name")
    })?;
    let mut tmp_name = std::ffi::OsString::from(format!(".tmp-{}-{n}-", std::process::id()));
    tmp_name.push(file_name);
    let tmp = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let publish = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    publish.inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// One outcome as the exact JSON object that appears in
/// `results.json`'s `jobs` array: `{job fields,"ok":true,"stats":{...}}`
/// on success (plus `"cpi"` when the stats carry a stack), or
/// `{job fields,"ok":false,"error":"..."}` on failure.
///
/// This is the unit of byte-identity between the sweep artifacts and
/// the `ms-serve` wire protocol: a served result payload *is* this
/// rendering, so a response can be byte-compared against the `mssweep`
/// artifact for the same design point.
pub fn outcome_json(outcome: &Result<JobOutcome, JobFailure>) -> String {
    let mut out = String::new();
    match outcome {
        Ok(o) => {
            let _ = write!(
                out,
                "{{{},\"ok\":true,\"stats\":{}",
                job_fields(&o.job),
                stats_to_json(&o.stats)
            );
            // Present only on `--cpi` sweeps; default artifacts stay
            // byte-identical.
            if let Some(cpi) = &o.stats.cpi {
                let _ = write!(out, ",\"cpi\":{}", cpi.to_json());
            }
            out.push('}');
        }
        Err(f) => {
            let _ = write!(
                out,
                "{{{},\"ok\":false,\"error\":{}}}",
                job_fields(&f.job),
                json::string(&f.error)
            );
        }
    }
    out
}

/// Wraps per-outcome fragments (each produced by [`outcome_json`]) in
/// the `results.json` document envelope. `total` is the job count.
pub fn results_envelope<'a>(total: usize, fragments: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"version\":1,\"total\":{total},\"jobs\":[");
    for (i, frag) in fragments.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(frag);
    }
    out.push_str("]}");
    out
}

fn job_fields(job: &Job) -> String {
    format!(
        "\"job\":{},\"workload\":{},\"scale\":{},\"kind\":{},\"units\":{},\"width\":{},\"ooo\":{}",
        json::string(&job.id()),
        json::string(&job.workload),
        json::string(job.scale.id()),
        json::string(job.kind.id()),
        job.cfg.units,
        job.cfg.issue_width,
        job.cfg.ooo,
    )
}

/// The sweep as a single JSON document:
///
/// ```json
/// {"version":1,"total":N,"jobs":[
///   {"job":"wc@test/ms4/w1/inorder","workload":"Wc","scale":"test",
///    "kind":"multiscalar","units":4,"width":1,"ooo":false,
///    "ok":true,"stats":{...}},
///   {"job":"...","ok":false,"error":"..."}]}
/// ```
pub fn results_json(report: &SweepReport) -> String {
    let fragments: Vec<String> = report.outcomes.iter().map(outcome_json).collect();
    results_envelope(report.total(), fragments.iter().map(String::as_str))
}

/// The sweep as a CSV matrix, one row per design point.
pub fn results_csv(report: &SweepReport) -> String {
    let mut out = String::from(
        "job,workload,scale,kind,width,ooo,units,ok,cycles,instructions,ipc,\
         prediction_accuracy,tasks_retired,tasks_squashed\n",
    );
    for outcome in &report.outcomes {
        let job = match outcome {
            Ok(o) => &o.job,
            Err(f) => &f.job,
        };
        let _ = write!(
            out,
            "{},{},{},{},{},{},{}",
            job.id(),
            job.workload,
            job.scale.id(),
            job.kind.id(),
            job.cfg.issue_width,
            job.cfg.ooo,
            job.cfg.units,
        );
        match outcome {
            Ok(o) => {
                let _ = writeln!(
                    out,
                    ",true,{},{},{},{},{},{}",
                    o.stats.cycles,
                    o.stats.instructions,
                    json::number(o.stats.ipc()),
                    json::number(o.stats.prediction_accuracy()),
                    o.stats.tasks_retired,
                    o.stats.tasks_squashed,
                );
            }
            Err(_) => {
                let _ = writeln!(out, ",false,,,,,,");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JobFailure, JobOutcome};
    use crate::job::JobKind;
    use ms_workloads::Scale;
    use multiscalar::{RunStats, SimConfig};

    fn report() -> SweepReport {
        let ok_job = Job {
            workload: "Wc".into(),
            scale: Scale::Test,
            kind: JobKind::Multiscalar,
            cfg: SimConfig::multiscalar(4),
            partition: None,
        };
        let bad_job = Job { workload: "Ghost".into(), kind: JobKind::Scalar, ..ok_job.clone() };
        let stats = RunStats { cycles: 10, instructions: 20, ..RunStats::default() };
        SweepReport {
            outcomes: vec![
                Ok(JobOutcome { job: ok_job, stats, cached: false }),
                Err(JobFailure { job: bad_job, error: "unknown workload".into() }),
            ],
            executed: 1,
            cache_hits: 0,
        }
    }

    #[test]
    fn json_includes_successes_and_failures() {
        let j = results_json(&report());
        assert!(j.starts_with("{\"version\":1,\"total\":2,\"jobs\":["));
        assert!(j.contains("\"job\":\"wc@test/ms4/w1/inorder\""));
        assert!(j.contains("\"ok\":true,\"stats\":{\"cycles\":10,"));
        assert!(j.contains("\"ok\":false,\"error\":\"unknown workload\""));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn json_is_independent_of_cached_flag() {
        let mut warm = report();
        if let Ok(o) = &mut warm.outcomes[0] {
            o.cached = true;
        }
        warm.cache_hits = 1;
        warm.executed = 0;
        assert_eq!(results_json(&report()), results_json(&warm));
        assert_eq!(results_csv(&report()), results_csv(&warm));
    }

    #[test]
    fn cpi_appears_only_on_accounted_runs() {
        let base = results_json(&report());
        assert!(!base.contains("\"cpi\""), "{base}");
        let mut r = report();
        if let Ok(o) = &mut r.outcomes[0] {
            o.stats.cpi = Some(ms_trace::CpiStack::default());
        }
        let j = results_json(&r);
        assert!(j.contains(",\"cpi\":{\"schema\":"), "{j}");
    }

    #[test]
    fn write_atomic_round_trips_and_replaces() {
        let dir = std::env::temp_dir()
            .join(format!("ms-sweep-artifacts-unit-{}", std::process::id()))
            .join("nested");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
        let path = dir.join("results.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":1}");
        // Replaces atomically, and leaves no temp droppings behind.
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }

    #[test]
    fn csv_has_one_row_per_job() {
        let csv = results_csv(&report());
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("job,workload,scale,kind,width,ooo,units,ok,"));
        assert!(lines[1].contains(",true,10,20,"));
        assert!(lines[2].ends_with(",false,,,,,,"));
    }
}
