//! On-disk content-addressed result cache.
//!
//! Each simulation result is stored in its own file, named by the FNV-1a
//! hash of the job's full cache key (see [`crate::Job::cache_key`]). An
//! entry is self-validating:
//!
//! ```text
//! ms-sweep-cache v1
//! key <full cache key>
//! <RunStats key/value lines>
//! checksum <fnv1a-64 of every preceding byte, 16 hex digits>
//! ```
//!
//! A load only succeeds if the header matches, the stored key is exactly
//! the requested key (guarding against filename-hash collisions), the
//! checksum verifies, and the stats parse strictly. Anything else —
//! truncation, bit rot, a format change, a different crate version — is
//! a miss, and the point is recomputed rather than trusted.
//!
//! Writes go to a temp file first, are fsynced, and are published with
//! an atomic rename, so a sweep killed mid-write (or a host crash) never
//! leaves a half-entry that a resumed run could read.
//!
//! A file that exists but fails validation — torn by a crashed writer
//! that predates the fsync discipline, bit rot, or deliberate chaos
//! injection — is *quarantined*: renamed to `<name>.corrupt` so it can
//! be inspected post-mortem, counted (see [`SweepCache::quarantined`]),
//! and the point recomputed. The sweep never fails because of a bad
//! cache file, and never silently re-reads the same torn bytes twice.

use crate::hash::fnv1a_64;
use crate::statsio::{stats_from_kv, stats_to_kv};
use multiscalar::RunStats;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const HEADER: &str = "ms-sweep-cache v1";

/// Environment variable overriding the cache directory.
pub const CACHE_ENV: &str = "MS_SWEEP_CACHE";

/// Default cache directory (relative to the current working directory).
pub const DEFAULT_CACHE_DIR: &str = ".ms-sweep-cache";

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A cache directory that cannot be created or used, named precisely so
/// CLIs can fail up front with a structured error instead of surfacing
/// a raw `io::Error` mid-sweep. Produced by [`SweepCache::ensure_ready`].
#[derive(Debug)]
pub struct CacheDirError {
    /// The directory that was requested.
    pub dir: PathBuf,
    /// Why it is unusable.
    pub source: std::io::Error,
}

impl std::fmt::Display for CacheDirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cache directory `{}` is unusable: {}", self.dir.display(), self.source)
    }
}

impl std::error::Error for CacheDirError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The on-disk result cache. A `SweepCache` is cheap to clone and safe
/// to share across worker threads (all state lives on disk; publishes
/// are atomic renames).
#[derive(Clone, Debug)]
pub struct SweepCache {
    dir: Option<PathBuf>,
    /// Count of entries quarantined to `.corrupt` files, shared across
    /// clones so per-thread cache handles report into one tally.
    quarantined: Arc<AtomicU64>,
}

impl SweepCache {
    /// A disabled cache: every lookup misses, stores are dropped.
    pub fn disabled() -> SweepCache {
        SweepCache { dir: None, quarantined: Arc::new(AtomicU64::new(0)) }
    }

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> SweepCache {
        SweepCache { dir: Some(dir.into()), quarantined: Arc::new(AtomicU64::new(0)) }
    }

    /// The conventional cache: `$MS_SWEEP_CACHE` if set and non-empty,
    /// else [`DEFAULT_CACHE_DIR`].
    pub fn from_env() -> SweepCache {
        match std::env::var(CACHE_ENV) {
            Ok(dir) if !dir.is_empty() => SweepCache::at(dir),
            _ => SweepCache::at(DEFAULT_CACHE_DIR),
        }
    }

    /// Validates the cache directory up front: creates it (and any
    /// missing parents) if absent, and verifies it is actually a
    /// writable directory by creating and removing a probe file.
    ///
    /// Stores remain best-effort either way; this exists so CLIs
    /// (`mssweep`, `msserve`) can reject a bad `--cache-dir` at startup
    /// with a structured error naming the path, instead of warning on
    /// every job mid-run. A disabled cache is trivially ready.
    ///
    /// # Errors
    /// Returns a [`CacheDirError`] naming the directory if it cannot be
    /// created, is not a directory, or is not writable.
    pub fn ensure_ready(&self) -> Result<(), CacheDirError> {
        let Some(dir) = self.dir.as_deref() else { return Ok(()) };
        let fail = |source| CacheDirError { dir: dir.to_path_buf(), source };
        fs::create_dir_all(dir).map_err(fail)?;
        let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let probe = dir.join(format!(".probe-{}-{n}", std::process::id()));
        fs::write(&probe, b"ms-sweep cache probe").map_err(fail)?;
        fs::remove_file(&probe).map_err(fail)
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The cache directory, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn entry_path(dir: &Path, key: &str) -> PathBuf {
        dir.join(format!("{:016x}.entry", fnv1a_64(key.as_bytes())))
    }

    /// Renders the entry bytes for `key`/`stats` (checksum included).
    fn render(key: &str, stats: &RunStats) -> String {
        let mut body = format!("{HEADER}\nkey {key}\n{}", stats_to_kv(stats));
        let sum = fnv1a_64(body.as_bytes());
        body.push_str(&format!("checksum {sum:016x}\n"));
        body
    }

    /// Validates entry `text` against `key`. `Ok(None)` means the entry
    /// is well-formed but stores a *different* key (a filename-hash
    /// collision — the other key's entry is intact and must not be
    /// quarantined); `Err(())` means the bytes are torn or tampered.
    fn parse(text: &str, key: &str) -> Result<Option<RunStats>, ()> {
        // Split off the trailing `checksum <hex>` line.
        let body = text.strip_suffix('\n').ok_or(())?;
        let (prefix, checksum_line) = body.rsplit_once('\n').ok_or(())?;
        let stored_sum = checksum_line.strip_prefix("checksum ").ok_or(())?;
        let mut prefix = prefix.to_string();
        prefix.push('\n');
        if format!("{:016x}", fnv1a_64(prefix.as_bytes())) != stored_sum {
            return Err(());
        }
        let rest = prefix.strip_prefix(HEADER).and_then(|r| r.strip_prefix('\n')).ok_or(())?;
        let (key_line, stats_text) = rest.split_once('\n').ok_or(())?;
        if key_line.strip_prefix("key ").ok_or(())? != key {
            return Ok(None);
        }
        Ok(Some(stats_from_kv(stats_text).ok_or(())?))
    }

    /// Moves a torn entry aside to `<name>.corrupt` (best-effort) and
    /// counts the quarantine. The original path is freed either way, so
    /// the recomputed result can be stored cleanly.
    fn quarantine(&self, path: &Path) {
        let mut corrupt = path.as_os_str().to_os_string();
        corrupt.push(".corrupt");
        if fs::rename(path, &corrupt).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// How many torn entries this cache (including all clones of it) has
    /// quarantined to `.corrupt` files and scheduled for recompute.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Looks up `key`. Returns `None` on a miss *or* on any validation
    /// failure — a corrupt entry is never trusted. A file that exists
    /// but fails validation is quarantined to `<name>.corrupt` (and
    /// counted) so the recompute can republish cleanly; a well-formed
    /// entry for a colliding key is left alone.
    pub fn load(&self, key: &str) -> Option<RunStats> {
        let dir = self.dir.as_deref()?;
        let path = Self::entry_path(dir, key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            // Unreadable or non-UTF-8 bytes at the entry path: torn.
            Err(_) => {
                self.quarantine(&path);
                return None;
            }
        };
        match Self::parse(&text, key) {
            Ok(stats) => stats,
            Err(()) => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Stores `stats` under `key`. Best-effort: an I/O failure (read-only
    /// filesystem, disk full) degrades to "not cached" rather than
    /// failing the sweep; the error is reported for diagnostics.
    ///
    /// The write is crash-safe: bytes go to a private temp file, are
    /// fsynced to stable storage, and only then atomically renamed onto
    /// the entry path, so no crash ordering can publish a half-entry.
    pub fn store(&self, key: &str, stats: &RunStats) -> std::io::Result<()> {
        let Some(dir) = self.dir.as_deref() else { return Ok(()) };
        fs::create_dir_all(dir)?;
        let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".tmp-{}-{n}", std::process::id()));
        let publish = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(Self::render(key, stats).as_bytes())?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, Self::entry_path(dir, key))
        })();
        publish.inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("ms-sweep-cache-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn stats(cycles: u64) -> RunStats {
        RunStats { cycles, instructions: cycles / 2, ..RunStats::default() }
    }

    #[test]
    fn round_trip_and_miss() {
        let dir = tmpdir("roundtrip");
        let c = SweepCache::at(&dir);
        assert!(c.load("k1").is_none());
        c.store("k1", &stats(100)).unwrap();
        assert_eq!(c.load("k1").unwrap().cycles, 100);
        assert!(c.load("k2").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmpdir("corrupt");
        let c = SweepCache::at(&dir);
        c.store("k", &stats(42)).unwrap();
        let path = SweepCache::entry_path(&dir, "k");

        // Truncated.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(c.load("k").is_none(), "truncated entry must miss");

        // Flipped value (checksum no longer matches).
        fs::write(&path, full.replace("cycles 42", "cycles 43")).unwrap();
        assert!(c.load("k").is_none(), "tampered entry must miss");

        // Wrong key under the right filename (hash collision defense).
        fs::write(&path, SweepCache::render("other-key", &stats(42))).unwrap();
        assert!(c.load("k").is_none(), "key mismatch must miss");

        // Restored entry hits again.
        fs::write(&path, &full).unwrap();
        assert_eq!(c.load("k").unwrap().cycles, 42);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_entries_are_quarantined_and_recomputable() {
        let dir = tmpdir("quarantine");
        let c = SweepCache::at(&dir);
        c.store("k", &stats(7)).unwrap();
        let path = SweepCache::entry_path(&dir, "k");
        let full = fs::read_to_string(&path).unwrap();

        // Tear the entry; the load misses, moves the file aside, counts.
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(c.load("k").is_none());
        assert_eq!(c.quarantined(), 1);
        assert!(!path.exists(), "torn entry must leave the entry path");
        let mut corrupt = path.clone().into_os_string();
        corrupt.push(".corrupt");
        assert!(std::path::Path::new(&corrupt).exists(), "torn bytes preserved for post-mortem");

        // The freed path accepts the recompute; later loads hit again.
        c.store("k", &stats(7)).unwrap();
        assert_eq!(c.load("k").unwrap().cycles, 7);
        assert_eq!(c.quarantined(), 1, "clean reload must not re-quarantine");

        // A clone shares the tally.
        let clone = c.clone();
        fs::write(&path, b"\xff\xfe not utf8 \xff").unwrap();
        assert!(clone.load("k").is_none());
        assert_eq!(c.quarantined(), 2);

        // A well-formed entry for a *different* key (filename collision)
        // is a plain miss: not quarantined, not destroyed.
        fs::write(&path, SweepCache::render("other-key", &stats(9))).unwrap();
        assert!(c.load("k").is_none());
        assert_eq!(c.quarantined(), 2);
        assert!(path.exists(), "colliding entry left intact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ensure_ready_creates_missing_directories() {
        let dir = tmpdir("ensure").join("nested").join("deeper");
        let c = SweepCache::at(&dir);
        c.ensure_ready().expect("nested cache dir is created");
        assert!(dir.is_dir());
        // Idempotent on an existing directory.
        c.ensure_ready().expect("existing cache dir is fine");
        let _ = fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn ensure_ready_rejects_a_file_path_with_the_path_named() {
        let dir = tmpdir("ensure-file");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("not-a-dir");
        fs::write(&file, b"occupied").unwrap();
        let err = SweepCache::at(&file).ensure_ready().expect_err("a file is not a cache dir");
        assert_eq!(err.dir, file);
        assert!(err.to_string().contains("not-a-dir"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ensure_ready_on_disabled_cache_is_ok() {
        SweepCache::disabled().ensure_ready().expect("disabled cache is trivially ready");
    }

    #[test]
    fn disabled_cache_never_hits() {
        let c = SweepCache::disabled();
        c.store("k", &stats(1)).unwrap();
        assert!(c.load("k").is_none());
        assert!(!c.is_enabled());
    }
}
