//! `RunStats` serialization: JSON for artifacts, a strict line-oriented
//! key/value form for cache entries.
//!
//! Both renderings have a fixed field order, so identical stats always
//! produce identical bytes — the determinism tests rely on this. The
//! key/value form is also the *parser's* expected order: a cache entry
//! with fields missing, reordered, renamed, or non-numeric fails to
//! parse and is treated as a miss (recomputed, never trusted).

use multiscalar::RunStats;
use std::fmt::Write as _;

/// Formats an `f64` as a JSON number (non-finite becomes `null`).
fn f(v: f64) -> String {
    ms_trace::json::number(v)
}

/// `RunStats` as a JSON object with fixed field order (the same layout
/// `mstrace`'s `report.json` uses).
pub fn stats_to_json(s: &RunStats) -> String {
    let b = &s.breakdown;
    format!(
        concat!(
            "{{\"cycles\":{},\"instructions\":{},\"ipc\":{},",
            "\"squashed_instructions\":{},\"tasks_retired\":{},",
            "\"tasks_squashed\":{},\"control_squashes\":{},",
            "\"memory_squashes\":{},\"arb_squashes\":{},",
            "\"predictions\":{},\"correct_predictions\":{},",
            "\"prediction_accuracy\":{},",
            "\"breakdown\":{{\"useful\":{},\"non_useful\":{},",
            "\"no_comp_inter_task\":{},\"no_comp_intra_task\":{},",
            "\"no_comp_wait_retire\":{},\"no_comp_arb\":{},\"idle\":{}}},",
            "\"arb\":{{\"loads\":{},\"stores\":{},\"load_forwards\":{},",
            "\"violations\":{},\"full_events\":{},\"peak_bank_occupancy\":{}}},",
            "\"dcache\":{{\"accesses\":{},\"misses\":{}}},",
            "\"icache\":{{\"accesses\":{},\"misses\":{}}},",
            "\"bus\":{{\"transactions\":{},\"busy_cycles\":{},",
            "\"contention_cycles\":{}}},",
            "\"descriptor_cache\":{{\"accesses\":{},\"misses\":{}}}}}"
        ),
        s.cycles,
        s.instructions,
        f(s.ipc()),
        s.squashed_instructions,
        s.tasks_retired,
        s.tasks_squashed,
        s.control_squashes,
        s.memory_squashes,
        s.arb_squashes,
        s.predictions,
        s.correct_predictions,
        f(s.prediction_accuracy()),
        b.useful,
        b.non_useful,
        b.no_comp_inter_task,
        b.no_comp_intra_task,
        b.no_comp_wait_retire,
        b.no_comp_arb,
        b.idle,
        s.arb.loads,
        s.arb.stores,
        s.arb.load_forwards,
        s.arb.violations,
        s.arb.full_events,
        s.arb.peak_bank_occupancy,
        s.dcache.accesses,
        s.dcache.misses,
        s.icache.accesses,
        s.icache.misses,
        s.bus.transactions,
        s.bus.busy_cycles,
        s.bus.contention_cycles,
        s.descriptor_cache.0,
        s.descriptor_cache.1,
    )
}

/// Field names of the key/value form, in serialization order.
const FIELDS: &[&str] = &[
    "cycles",
    "instructions",
    "squashed_instructions",
    "tasks_retired",
    "tasks_squashed",
    "control_squashes",
    "memory_squashes",
    "arb_squashes",
    "predictions",
    "correct_predictions",
    "breakdown.useful",
    "breakdown.non_useful",
    "breakdown.no_comp_inter_task",
    "breakdown.no_comp_intra_task",
    "breakdown.no_comp_wait_retire",
    "breakdown.no_comp_arb",
    "breakdown.idle",
    "arb.loads",
    "arb.stores",
    "arb.load_forwards",
    "arb.violations",
    "arb.full_events",
    "arb.peak_bank_occupancy",
    "dcache.accesses",
    "dcache.misses",
    "icache.accesses",
    "icache.misses",
    "bus.transactions",
    "bus.busy_cycles",
    "bus.contention_cycles",
    "descriptor_cache.accesses",
    "descriptor_cache.misses",
];

fn values(s: &RunStats) -> [u64; 32] {
    let b = &s.breakdown;
    [
        s.cycles,
        s.instructions,
        s.squashed_instructions,
        s.tasks_retired,
        s.tasks_squashed,
        s.control_squashes,
        s.memory_squashes,
        s.arb_squashes,
        s.predictions,
        s.correct_predictions,
        b.useful,
        b.non_useful,
        b.no_comp_inter_task,
        b.no_comp_intra_task,
        b.no_comp_wait_retire,
        b.no_comp_arb,
        b.idle,
        s.arb.loads,
        s.arb.stores,
        s.arb.load_forwards,
        s.arb.violations,
        s.arb.full_events,
        s.arb.peak_bank_occupancy as u64,
        s.dcache.accesses,
        s.dcache.misses,
        s.icache.accesses,
        s.icache.misses,
        s.bus.transactions,
        s.bus.busy_cycles,
        s.bus.contention_cycles,
        s.descriptor_cache.0,
        s.descriptor_cache.1,
    ]
}

fn build(vals: &[u64; 32]) -> RunStats {
    let mut s = RunStats {
        cycles: vals[0],
        instructions: vals[1],
        squashed_instructions: vals[2],
        tasks_retired: vals[3],
        tasks_squashed: vals[4],
        control_squashes: vals[5],
        memory_squashes: vals[6],
        arb_squashes: vals[7],
        predictions: vals[8],
        correct_predictions: vals[9],
        descriptor_cache: (vals[30], vals[31]),
        ..RunStats::default()
    };
    s.breakdown.useful = vals[10];
    s.breakdown.non_useful = vals[11];
    s.breakdown.no_comp_inter_task = vals[12];
    s.breakdown.no_comp_intra_task = vals[13];
    s.breakdown.no_comp_wait_retire = vals[14];
    s.breakdown.no_comp_arb = vals[15];
    s.breakdown.idle = vals[16];
    s.arb.loads = vals[17];
    s.arb.stores = vals[18];
    s.arb.load_forwards = vals[19];
    s.arb.violations = vals[20];
    s.arb.full_events = vals[21];
    s.arb.peak_bank_occupancy = vals[22] as usize;
    s.dcache.accesses = vals[23];
    s.dcache.misses = vals[24];
    s.icache.accesses = vals[25];
    s.icache.misses = vals[26];
    s.bus.transactions = vals[27];
    s.bus.busy_cycles = vals[28];
    s.bus.contention_cycles = vals[29];
    s
}

/// `RunStats` as `name value` lines in a fixed field order (the same order `stats_to_json` uses).
pub fn stats_to_kv(s: &RunStats) -> String {
    let vals = values(s);
    let mut out = String::new();
    for (name, v) in FIELDS.iter().zip(vals) {
        let _ = writeln!(out, "{name} {v}");
    }
    out
}

/// Parses the output of [`stats_to_kv`]. Strict: every field must be
/// present, in order, with a numeric value, and nothing may follow.
pub fn stats_from_kv(text: &str) -> Option<RunStats> {
    let mut vals = [0u64; 32];
    let mut lines = text.lines();
    for (name, slot) in FIELDS.iter().zip(vals.iter_mut()) {
        let line = lines.next()?;
        let (k, v) = line.split_once(' ')?;
        if k != *name {
            return None;
        }
        *slot = v.parse().ok()?;
    }
    if lines.next().is_some() {
        return None;
    }
    Some(build(&vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        let mut s = RunStats {
            cycles: 123,
            instructions: 456,
            descriptor_cache: (5, 2),
            ..RunStats::default()
        };
        s.breakdown.useful = 99;
        s.arb.peak_bank_occupancy = 7;
        s.bus.contention_cycles = 11;
        s
    }

    #[test]
    fn kv_round_trips() {
        let s = sample();
        let kv = stats_to_kv(&s);
        let back = stats_from_kv(&kv).expect("parse");
        assert_eq!(stats_to_kv(&back), kv);
        assert_eq!(back.cycles, 123);
        assert_eq!(back.arb.peak_bank_occupancy, 7);
        assert_eq!(back.descriptor_cache, (5, 2));
    }

    #[test]
    fn kv_rejects_tampering() {
        let kv = stats_to_kv(&sample());
        assert!(stats_from_kv(&kv[..kv.len() / 2]).is_none(), "truncation");
        assert!(stats_from_kv(&kv.replace("cycles 123", "cycles abc")).is_none(), "non-numeric");
        assert!(stats_from_kv(&kv.replace("instructions", "instrs")).is_none(), "renamed field");
        assert!(stats_from_kv(&format!("{kv}extra 1\n")).is_none(), "trailing junk");
    }

    #[test]
    fn json_shape_is_stable() {
        let j = stats_to_json(&sample());
        assert!(j.starts_with("{\"cycles\":123,\"instructions\":456,"));
        assert!(j.contains("\"descriptor_cache\":{\"accesses\":5,\"misses\":2}"));
    }
}
