//! # ms-sweep — the experiment-sweep engine
//!
//! The paper's whole Section-5 evaluation is a design-space sweep:
//! {10 benchmarks} × {1-/2-way issue} × {in-order, out-of-order} ×
//! {scalar baseline, 4 units, 8 units}. Every point is an independent
//! simulation, which makes the sweep embarrassingly parallel and its
//! results perfectly cacheable. This crate turns that observation into
//! infrastructure:
//!
//! 1. a declarative [`SweepSpec`] expands workload × [`SimConfig`](multiscalar::SimConfig) axes
//!    into a flat list of independent [`Job`]s,
//! 2. an execution engine ([`run_sweep`] / [`run_jobs`]) runs them on a
//!    `std::thread` worker pool sized by [`SweepOptions::jobs`], with
//!    results returned in spec order so parallel output is byte-identical
//!    to a serial (`jobs = 1`) run,
//! 3. an on-disk content-addressed [`SweepCache`] memoizes each point
//!    under a stable key of (workload fingerprint, full
//!    [`SimConfig::stable_key`](multiscalar::SimConfig::stable_key), crate version), so re-runs and resumed
//!    sweeps only execute missing points, and
//! 4. [`artifacts`] renders the outcome as deterministic JSON and CSV,
//!    with optional per-job [`ms_trace::MetricsReport`]s.
//!
//! A failed design point never aborts the sweep: it is reported as a
//! [`JobFailure`] carrying the job identity, next to the points that
//! succeeded.
//!
//! The `mssweep` CLI (in `ms-bench`) is a thin front-end over this crate,
//! and `ms-bench`'s Table 3/4 regeneration runs on it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// A `JobFailure` carries the full `Job` (including its ~200-byte
// `SimConfig`) so failures stay self-describing. Each `Result` here
// corresponds to an entire simulation run, so the Err-variant size is
// irrelevant to performance.
#![allow(clippy::result_large_err)]

pub mod artifacts;
pub mod cache;
pub mod engine;
mod hash;
pub mod job;
pub mod spec;
pub mod statsio;

pub use cache::{CacheDirError, SweepCache};
pub use engine::{
    compute_and_store, resolve_workload, run_jobs, run_jobs_with, run_sweep, Executor,
    InProcessExecutor, JobFailure, JobOutcome, SweepOptions, SweepReport,
};
pub use job::{Job, JobKind};
pub use spec::SweepSpec;
