//! Declarative sweep specifications and their expansion into job lists.

use crate::job::{Job, JobKind};
use ms_workloads::{suite, Scale};
use multiscalar::SimConfig;

/// A declarative description of a design-space sweep: the cross product
/// of workloads × issue widths × issue orders × unit counts, plus the
/// scalar baseline at each (width, order) point.
///
/// [`SweepSpec::expand`] flattens the spec into an ordered [`Job`] list;
/// that order is the canonical result order regardless of how many
/// workers execute the jobs.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Workload names (case-insensitive); empty means the full
    /// ten-benchmark suite in the paper's table order.
    pub workloads: Vec<String>,
    /// Input scale for every workload.
    pub scale: Scale,
    /// Per-unit issue widths (paper: 1 and 2).
    pub widths: Vec<usize>,
    /// Issue orders: `false` = in-order (Table 3), `true` = out-of-order
    /// (Table 4).
    pub orders: Vec<bool>,
    /// Multiscalar unit counts (paper: 4 and 8).
    pub unit_counts: Vec<usize>,
    /// Include the scalar baseline at each (width, order) point. Needed
    /// for speedup columns; disable for ablation-style sweeps that only
    /// compare multiscalar points.
    pub include_scalar: bool,
    /// Partition points for the multiscalar jobs: each entry is either
    /// `None` (run the hand-annotated source) or a
    /// `ms_cfg::PartitionPolicy` stable key (strip annotations and
    /// re-derive them automatically). Empty means `[None]` — the
    /// pre-axis behaviour. The scalar baseline never partitions.
    pub partitions: Vec<Option<String>>,
}

impl SweepSpec {
    /// The paper's full Table 3 + Table 4 sweep at the given scale.
    pub fn tables34(scale: Scale) -> SweepSpec {
        SweepSpec {
            workloads: Vec::new(),
            scale,
            widths: vec![1, 2],
            orders: vec![false, true],
            unit_counts: vec![4, 8],
            include_scalar: true,
            partitions: Vec::new(),
        }
    }

    /// One table's half of the sweep (`ooo = false` for Table 3, `true`
    /// for Table 4).
    pub fn table34(scale: Scale, ooo: bool) -> SweepSpec {
        SweepSpec { orders: vec![ooo], ..SweepSpec::tables34(scale) }
    }

    /// The workload names this spec covers, in sweep order.
    pub fn workload_names(&self) -> Vec<String> {
        if self.workloads.is_empty() {
            suite(self.scale).iter().map(|w| w.name.to_string()).collect()
        } else {
            self.workloads.clone()
        }
    }

    /// Expands the spec into the canonical ordered job list:
    /// workload-major, then order, then width, with the scalar baseline
    /// (if any) preceding the multiscalar unit counts at each point;
    /// each unit count fans out over the partition points in spec order.
    pub fn expand(&self) -> Vec<Job> {
        let unpartitioned = [None];
        let partitions: &[Option<String>] =
            if self.partitions.is_empty() { &unpartitioned } else { &self.partitions };
        let mut jobs = Vec::new();
        for name in self.workload_names() {
            for &ooo in &self.orders {
                for &width in &self.widths {
                    if self.include_scalar {
                        jobs.push(Job {
                            workload: name.clone(),
                            scale: self.scale,
                            kind: JobKind::Scalar,
                            cfg: SimConfig::scalar().issue(width).out_of_order(ooo),
                            partition: None,
                        });
                    }
                    for &units in &self.unit_counts {
                        for partition in partitions {
                            jobs.push(Job {
                                workload: name.clone(),
                                scale: self.scale,
                                kind: JobKind::Multiscalar,
                                cfg: SimConfig::multiscalar(units).issue(width).out_of_order(ooo),
                                partition: partition.clone(),
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables34_expands_to_the_paper_design_space() {
        let jobs = SweepSpec::tables34(Scale::Test).expand();
        // 10 workloads × 2 orders × 2 widths × (1 scalar + 2 unit counts).
        assert_eq!(jobs.len(), 10 * 2 * 2 * 3);
        assert_eq!(jobs[0].kind, JobKind::Scalar);
        assert_eq!(jobs[1].cfg.units, 4);
        assert_eq!(jobs[2].cfg.units, 8);
        // Expansion is deterministic.
        assert_eq!(jobs, SweepSpec::tables34(Scale::Test).expand());
    }

    #[test]
    fn explicit_workloads_and_axes_are_respected() {
        let spec = SweepSpec {
            workloads: vec!["Wc".into(), "Cmp".into()],
            widths: vec![1],
            unit_counts: vec![4],
            ..SweepSpec::table34(Scale::Test, false)
        };
        let jobs = spec.expand();
        // 2 workloads × 1 order × 1 width × (scalar + ms4).
        assert_eq!(jobs.len(), 4);
        assert!(jobs.iter().all(|j| !j.cfg.ooo));
        assert_eq!(jobs[0].id(), "wc@test/scalar/w1/inorder");
        assert_eq!(jobs[3].id(), "cmp@test/ms4/w1/inorder");
    }

    #[test]
    fn partition_axis_fans_out_multiscalar_jobs_only() {
        let key = "part v1;size=16;loops=1;calls=0;fwd=1;rel=1";
        let spec = SweepSpec {
            workloads: vec!["Wc".into()],
            widths: vec![1],
            unit_counts: vec![4],
            partitions: vec![None, Some(key.into())],
            ..SweepSpec::table34(Scale::Test, false)
        };
        let jobs = spec.expand();
        // 1 scalar + (1 unit count × 2 partition points).
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].kind, JobKind::Scalar);
        assert_eq!(jobs[0].partition, None, "the baseline never partitions");
        assert_eq!(jobs[1].partition, None);
        assert_eq!(jobs[2].partition.as_deref(), Some(key));
        assert_eq!(jobs, spec.expand(), "expansion stays deterministic");
    }
}
