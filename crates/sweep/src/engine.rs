//! The execution engine: cache probe, worker pool, deterministic
//! result assembly.
//!
//! Execution happens in three phases:
//!
//! 1. **Probe** — every job's cache key is looked up serially; hits are
//!    settled immediately without touching a simulator.
//! 2. **Execute** — the remaining jobs run on a pool of
//!    [`SweepOptions::jobs`] `std::thread` workers pulling indices off a
//!    shared atomic counter. Each result lands in the slot its job
//!    occupied in the input order, so the assembled report is identical
//!    no matter how many workers ran or how they interleaved.
//! 3. **Assemble** — outcomes are returned in input order inside a
//!    [`SweepReport`]. A failed design point becomes a [`JobFailure`]
//!    carrying the job identity; it never aborts the rest of the sweep.
//!
//! *Where* a job actually simulates is pluggable: the pool hands each
//! job to an [`Executor`]. The default [`InProcessExecutor`] simulates
//! on the calling thread; other executors (a counting test shim, the
//! `ms-serve` daemon's instrumented executor, process/host shards
//! later) implement the same one-job contract and inherit the engine's
//! deterministic assembly and caching unchanged.

use crate::cache::SweepCache;
use crate::job::{Job, JobKind};
use crate::spec::SweepSpec;
use ms_trace::MetricsSink;
use ms_workloads::{by_name, Scale, Workload};
use multiscalar::{CpiAccountant, RunStats};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sweep should be executed.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    /// `1` gives the exact serial execution order.
    pub jobs: usize,
    /// Result cache (default: disabled — opt in with
    /// [`SweepCache::from_env`] or [`SweepCache::at`]).
    pub cache: SweepCache,
    /// Emit one progress line per settled job to stderr.
    pub progress: bool,
    /// If set, every *executed* multiscalar job also runs with a
    /// [`MetricsSink`] attached and writes its
    /// [`ms_trace::MetricsReport`] JSON into this directory. Multiscalar
    /// jobs then bypass the cache probe (a cached result has no event
    /// stream to fold), though their results are still stored for later
    /// metric-less sweeps.
    pub metrics_dir: Option<PathBuf>,
    /// Run every multiscalar job with a live [`multiscalar::CpiAccountant`]
    /// so each outcome's [`RunStats::cpi`] carries the per-point CPI
    /// stack. Like `metrics_dir`, this makes multiscalar jobs bypass the
    /// cache probe (a cached result has no CPI stack), while results are
    /// still stored — the cache serialization excludes the CPI stack, so
    /// cache keys and bytes are identical either way.
    pub cpi: bool,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            jobs: 0,
            cache: SweepCache::disabled(),
            progress: false,
            metrics_dir: None,
            cpi: false,
        }
    }
}

impl SweepOptions {
    /// The number of workers to spawn for `pending` runnable jobs.
    pub fn worker_count(&self, pending: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.jobs
        };
        requested.clamp(1, pending.max(1))
    }
}

/// Where one job's simulation actually runs.
///
/// The engine resolves workloads, probes the cache, orders results, and
/// schedules jobs onto worker threads; an `Executor` only answers "run
/// this job, give me validated stats". Implementations must be safe to
/// call from many threads at once.
pub trait Executor: Send + Sync {
    /// Executes one resolved job to completion. `slot` is the job's
    /// position in the input order (used to name per-job artifacts);
    /// errors are human-readable strings carried into [`JobFailure`].
    fn run(&self, job: &Job, workload: &Workload, slot: usize) -> Result<RunStats, String>;

    /// Short executor name for logs and stats endpoints.
    fn name(&self) -> &str;
}

/// The default executor: simulate in this process, on the calling
/// thread, with optional per-job metrics artifacts and CPI accounting.
#[derive(Clone, Debug, Default)]
pub struct InProcessExecutor {
    /// See [`SweepOptions::metrics_dir`].
    pub metrics_dir: Option<PathBuf>,
    /// See [`SweepOptions::cpi`].
    pub cpi: bool,
}

impl InProcessExecutor {
    /// A plain executor: no metrics artifacts, no CPI accounting.
    pub fn new() -> InProcessExecutor {
        InProcessExecutor::default()
    }

    /// The executor a [`SweepOptions`] describes.
    pub fn from_options(opts: &SweepOptions) -> InProcessExecutor {
        InProcessExecutor { metrics_dir: opts.metrics_dir.clone(), cpi: opts.cpi }
    }
}

impl Executor for InProcessExecutor {
    fn run(&self, job: &Job, w: &Workload, slot: usize) -> Result<RunStats, String> {
        match job.kind {
            JobKind::Scalar => w.run_scalar(job.cfg).map_err(|e| e.to_string()),
            JobKind::Multiscalar => match (&self.metrics_dir, self.cpi) {
                (None, false) => w.run_multiscalar(job.cfg).map_err(|e| e.to_string()),
                (None, true) => w
                    .run_multiscalar_with_accountant(job.cfg, CpiAccountant::new())
                    .map_err(|e| e.to_string()),
                (Some(dir), cpi) => {
                    let (stats, sink) = if cpi {
                        w.run_multiscalar_instrumented(
                            job.cfg,
                            MetricsSink::new(),
                            CpiAccountant::new(),
                        )
                        .map_err(|e| e.to_string())?
                    } else {
                        w.run_multiscalar_with_sink(job.cfg, MetricsSink::new())
                            .map_err(|e| e.to_string())?
                    };
                    let name = format!("{slot:04}-{}.json", job.id().replace('/', "_"));
                    let path = dir.join(name);
                    std::fs::write(&path, sink.into_report().to_json())
                        .map_err(|e| format!("writing metrics {}: {e}", path.display()))?;
                    Ok(stats)
                }
            },
        }
    }

    fn name(&self) -> &str {
        "in-process"
    }
}

/// Runs one cache-missed job on `exec` and publishes the result to the
/// cache — the single compute path shared by the sweep worker pool and
/// the `ms-serve` daemon, so a served response and a sweep artifact for
/// the same design point are the same bytes by construction.
///
/// A cache-store failure degrades to "not cached" (reported to stderr);
/// the result is still valid and returned.
///
/// # Errors
/// Propagates the executor's failure string (assembly, simulation,
/// validation, or artifact I/O).
pub fn compute_and_store(
    job: &Job,
    workload: &Workload,
    fingerprint: u64,
    cache: &SweepCache,
    exec: &dyn Executor,
    slot: usize,
) -> Result<RunStats, String> {
    let stats = exec.run(job, workload, slot)?;
    if let Err(e) = cache.store(&job.cache_key(fingerprint), &stats) {
        eprintln!("ms-sweep: cache store failed for {}: {e}", job.id());
    }
    Ok(stats)
}

/// A successfully settled design point.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job that produced this result.
    pub job: Job,
    /// The validated simulation result.
    pub stats: RunStats,
    /// Whether the result came from the cache (no simulation executed).
    pub cached: bool,
}

/// A design point that failed, identified precisely so the rest of the
/// sweep remains usable.
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// The job that failed.
    pub job: Job,
    /// What went wrong (assembly, simulation, validation, or artifact
    /// I/O).
    pub error: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.job.id(), self.error)
    }
}

impl std::error::Error for JobFailure {}

/// The result of a sweep: per-job outcomes in spec order plus execution
/// accounting.
#[derive(Debug)]
pub struct SweepReport {
    /// One entry per job, in the exact order the jobs were given.
    pub outcomes: Vec<Result<JobOutcome, JobFailure>>,
    /// Jobs dispatched to a simulator (cache misses).
    pub executed: usize,
    /// Jobs settled from the cache without simulating.
    pub cache_hits: usize,
}

impl SweepReport {
    /// Total number of jobs.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// The failed design points, in sweep order.
    pub fn failures(&self) -> impl Iterator<Item = &JobFailure> {
        self.outcomes.iter().filter_map(|o| o.as_ref().err())
    }

    /// The successful design points, in sweep order.
    pub fn successes(&self) -> impl Iterator<Item = &JobOutcome> {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok())
    }

    /// Looks up the outcome for an exact job (workload, scale, kind, and
    /// full config must all match).
    pub fn get(&self, job: &Job) -> Option<&JobOutcome> {
        self.successes().find(|o| &o.job == job)
    }

    /// All outcomes, or the first failure if any point failed.
    pub fn into_results(self) -> Result<Vec<JobOutcome>, JobFailure> {
        let mut ok = Vec::with_capacity(self.outcomes.len());
        for o in self.outcomes {
            ok.push(o?);
        }
        Ok(ok)
    }
}

/// Expands `spec` and executes it. See [`run_jobs`].
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> SweepReport {
    run_jobs(spec.expand(), opts)
}

type WorkloadTable = HashMap<(String, Scale, Option<String>), Result<(Workload, u64), String>>;

/// Resolves one job's workload and content fingerprint: the named
/// built-in at `scale`, run through the automatic task partitioner when
/// `partition` carries a [`ms_cfg::PartitionPolicy`] stable key. The
/// partitioned variant keeps the workload's name, inputs and memory
/// expectations — only the task annotations change — and fingerprints
/// over the *partitioned* source, so cached results can never alias
/// across policies.
///
/// # Errors
/// The workload name is unknown, the partition key does not parse, or
/// the partitioner rejects the program.
pub fn resolve_workload(
    name: &str,
    scale: Scale,
    partition: Option<&str>,
) -> Result<(Workload, u64), String> {
    let w = by_name(name, scale)
        .ok_or_else(|| format!("unknown workload `{}`", name.to_ascii_lowercase()))?;
    let w = match partition {
        None => w,
        Some(key) => {
            let policy = ms_cfg::PartitionPolicy::from_stable_key(key)
                .map_err(|e| format!("bad partition key `{key}`: {e}"))?;
            let part = ms_cfg::partition_source(&w.source, &policy)
                .map_err(|e| format!("partitioning under `{key}` failed: {e}"))?;
            Workload {
                name: w.name,
                description: w.description,
                source: part.source,
                checks: w.checks,
            }
        }
    };
    let fp = w.fingerprint();
    Ok((w, fp))
}

fn resolve_workloads(jobs: &[Job]) -> WorkloadTable {
    let mut table = WorkloadTable::new();
    for j in jobs {
        table
            .entry((j.workload.to_ascii_lowercase(), j.scale, j.partition.clone()))
            .or_insert_with(|| resolve_workload(&j.workload, j.scale, j.partition.as_deref()));
    }
    table
}

struct Progress {
    enabled: bool,
    done: AtomicUsize,
    total: usize,
}

impl Progress {
    fn new(enabled: bool, total: usize) -> Self {
        Progress { enabled, done: AtomicUsize::new(0), total }
    }

    fn tick(&self, job: &Job, note: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled {
            eprintln!("[{done}/{}] {} {note}", self.total, job.id());
        }
    }
}

/// Runs an explicit job list (the lower-level entry point; ablation-style
/// sweeps can hand-build jobs with arbitrary [`multiscalar::SimConfig`]s).
/// Results come back in input order; see the module docs for the phases.
pub fn run_jobs(jobs: Vec<Job>, opts: &SweepOptions) -> SweepReport {
    run_jobs_with(jobs, opts, &InProcessExecutor::from_options(opts))
}

/// Like [`run_jobs`], but every cache-missed job executes on `exec`
/// instead of the default [`InProcessExecutor`]. The engine still owns
/// workload resolution, the cache probe, the worker pool, and the
/// deterministic input-order assembly.
pub fn run_jobs_with(jobs: Vec<Job>, opts: &SweepOptions, exec: &dyn Executor) -> SweepReport {
    let total = jobs.len();
    let workloads = resolve_workloads(&jobs);
    let progress = Progress::new(opts.progress, total);

    if let Some(dir) = &opts.metrics_dir {
        // Fail early and uniformly if the metrics directory is unusable.
        if let Err(e) = std::fs::create_dir_all(dir) {
            let error = format!("cannot create metrics dir {}: {e}", dir.display());
            return SweepReport {
                outcomes: jobs
                    .into_iter()
                    .map(|job| Err(JobFailure { job, error: error.clone() }))
                    .collect(),
                executed: 0,
                cache_hits: 0,
            };
        }
    }

    // Phase 1: settle unknown workloads and cache hits without simulating.
    let slots: Vec<Mutex<Option<Result<JobOutcome, JobFailure>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let mut pending: Vec<(usize, Job)> = Vec::new();
    let mut cache_hits = 0usize;
    for (i, job) in jobs.into_iter().enumerate() {
        let entry =
            &workloads[&(job.workload.to_ascii_lowercase(), job.scale, job.partition.clone())];
        let (_, fingerprint) = match entry {
            Ok(resolved) => resolved,
            Err(error) => {
                progress.tick(&job, &format!("FAILED ({error})"));
                *slots[i].lock().unwrap() = Some(Err(JobFailure { error: error.clone(), job }));
                continue;
            }
        };
        let probe = (opts.metrics_dir.is_none() && !opts.cpi) || job.kind == JobKind::Scalar;
        if probe {
            if let Some(stats) = opts.cache.load(&job.cache_key(*fingerprint)) {
                cache_hits += 1;
                progress.tick(&job, &format!("{} cycles (cached)", stats.cycles));
                *slots[i].lock().unwrap() = Some(Ok(JobOutcome { job, stats, cached: true }));
                continue;
            }
        }
        pending.push((i, job));
    }

    // Phase 2: execute the misses on the worker pool.
    let executed = pending.len();
    if !pending.is_empty() {
        let next = AtomicUsize::new(0);
        let nworkers = opts.worker_count(pending.len());
        std::thread::scope(|scope| {
            for _ in 0..nworkers {
                scope.spawn(|| loop {
                    let p = next.fetch_add(1, Ordering::Relaxed);
                    let Some((slot, job)) = pending.get(p) else { break };
                    let (workload, fingerprint) = workloads
                        [&(job.workload.to_ascii_lowercase(), job.scale, job.partition.clone())]
                        .as_ref()
                        .expect("pending jobs have resolved workloads");
                    let outcome = match compute_and_store(
                        job,
                        workload,
                        *fingerprint,
                        &opts.cache,
                        exec,
                        *slot,
                    ) {
                        Ok(stats) => {
                            progress.tick(job, &format!("{} cycles", stats.cycles));
                            Ok(JobOutcome { job: job.clone(), stats, cached: false })
                        }
                        Err(error) => {
                            progress.tick(job, &format!("FAILED ({error})"));
                            Err(JobFailure { job: job.clone(), error })
                        }
                    };
                    *slots[*slot].lock().unwrap() = Some(outcome);
                });
            }
        });
    }

    // Phase 3: assemble in input order.
    let outcomes = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every slot settled"))
        .collect();
    SweepReport { outcomes, executed, cache_hits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_workloads::Scale;
    use multiscalar::SimConfig;

    fn tiny_jobs() -> Vec<Job> {
        vec![
            Job {
                workload: "Wc".into(),
                scale: Scale::Test,
                kind: JobKind::Scalar,
                cfg: SimConfig::scalar(),
                partition: None,
            },
            Job {
                workload: "Wc".into(),
                scale: Scale::Test,
                kind: JobKind::Multiscalar,
                cfg: SimConfig::multiscalar(4),
                partition: None,
            },
        ]
    }

    #[test]
    fn runs_jobs_and_reports_in_order() {
        let report = run_jobs(tiny_jobs(), &SweepOptions::default());
        assert_eq!(report.total(), 2);
        assert_eq!(report.executed, 2);
        assert_eq!(report.cache_hits, 0);
        let results = report.into_results().expect("both points succeed");
        assert_eq!(results[0].job.kind, JobKind::Scalar);
        assert_eq!(results[1].job.kind, JobKind::Multiscalar);
        assert!(results[0].stats.cycles > 0);
        assert!(!results[0].cached && !results[1].cached);
    }

    #[test]
    fn unknown_workload_fails_that_point_only() {
        let mut jobs = tiny_jobs();
        jobs[0].workload = "NoSuchBenchmark".into();
        let report = run_jobs(jobs, &SweepOptions::default());
        assert_eq!(report.executed, 1);
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].to_string().contains("nosuchbenchmark"));
        assert_eq!(report.successes().count(), 1);
    }

    #[test]
    fn partitioned_points_run_and_match_hand_annotated_results() {
        let key = ms_cfg::PartitionPolicy::default().stable_key();
        let mut jobs = tiny_jobs();
        jobs[1].partition = Some(key.clone());
        let report = run_jobs(jobs, &SweepOptions::default());
        let results = report.into_results().expect("partitioned point succeeds");
        // The partitioner preserves architecture: the machine-derived
        // tasks retire at least the scalar baseline's instructions and
        // satisfy the workload's memory expectations (checked by the
        // executor), so both points simply succeed.
        assert!(results[1].stats.instructions >= results[0].stats.instructions);
        assert!(results[1].job.id().contains("/part["));
    }

    #[test]
    fn bad_partition_key_fails_that_point_only() {
        let mut jobs = tiny_jobs();
        jobs[1].partition = Some("part v0;bogus".into());
        let report = run_jobs(jobs, &SweepOptions::default());
        assert_eq!(report.executed, 1);
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].to_string().contains("bad partition key"), "{}", failures[0]);
    }

    #[test]
    fn custom_executors_see_every_cache_miss() {
        struct Counting(AtomicUsize, InProcessExecutor);
        impl Executor for Counting {
            fn run(
                &self,
                job: &Job,
                w: &ms_workloads::Workload,
                slot: usize,
            ) -> Result<RunStats, String> {
                self.0.fetch_add(1, Ordering::Relaxed);
                self.1.run(job, w, slot)
            }
            fn name(&self) -> &str {
                "counting"
            }
        }
        let dir = std::env::temp_dir().join(format!("ms-sweep-exec-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions { cache: SweepCache::at(&dir), ..SweepOptions::default() };
        let exec = Counting(AtomicUsize::new(0), InProcessExecutor::from_options(&opts));

        let cold = run_jobs_with(tiny_jobs(), &opts, &exec);
        assert_eq!(exec.0.load(Ordering::Relaxed), 2, "both points executed");
        assert_eq!(cold.cache_hits, 0);

        let warm = run_jobs_with(tiny_jobs(), &opts, &exec);
        assert_eq!(exec.0.load(Ordering::Relaxed), 2, "warm run never touches the executor");
        assert_eq!(warm.cache_hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_finds_exact_points() {
        let jobs = tiny_jobs();
        let probe = jobs[1].clone();
        let report = run_jobs(jobs, &SweepOptions::default());
        assert!(report.get(&probe).is_some());
        let mut other = probe.clone();
        other.cfg.arb_capacity = 1;
        assert!(report.get(&other).is_none());
    }
}
