//! One design point of a sweep: a workload on a simulator configuration.

use ms_workloads::Scale;
use multiscalar::SimConfig;

/// Which simulator a job runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// The scalar baseline processor (Table 3/4 "Scalar IPC" columns).
    Scalar,
    /// The multiscalar processor (`cfg.units` processing units).
    Multiscalar,
}

impl JobKind {
    /// Stable identifier used in job ids and cache keys.
    pub fn id(self) -> &'static str {
        match self {
            JobKind::Scalar => "scalar",
            JobKind::Multiscalar => "multiscalar",
        }
    }
}

/// An independent simulation job: one workload, one configuration, one
/// simulator kind. Jobs carry everything needed to execute and to name
/// their result, and nothing about *how* they are executed.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Workload name as accepted by `ms_workloads::by_name`
    /// (case-insensitive).
    pub workload: String,
    /// Input scale.
    pub scale: Scale,
    /// Scalar baseline or multiscalar.
    pub kind: JobKind,
    /// Full simulator configuration.
    pub cfg: SimConfig,
    /// Partition-policy stable key (`ms_cfg::PartitionPolicy`): when
    /// present, the workload's hand annotations are stripped and
    /// re-derived by the automatic partitioner before simulation. `None`
    /// runs the source as written. Only meaningful for multiscalar jobs;
    /// the scalar baseline ignores annotations either way.
    pub partition: Option<String>,
}

impl Job {
    /// Human-readable job identity, e.g. `wc@test/ms8/w2/ooo` or
    /// `compress@full/scalar/w1/inorder`. Used in progress lines, error
    /// messages, and artifact rows. Ablation knobs beyond the paper's
    /// table axes do not appear here — the cache key (which covers the
    /// full configuration) is [`Job::cache_key`].
    pub fn id(&self) -> String {
        let machine = match self.kind {
            JobKind::Scalar => "scalar".to_string(),
            JobKind::Multiscalar => format!("ms{}", self.cfg.units),
        };
        let mut id = format!(
            "{}@{}/{}/w{}/{}",
            self.workload.to_ascii_lowercase(),
            self.scale.id(),
            machine,
            self.cfg.issue_width,
            if self.cfg.ooo { "ooo" } else { "inorder" },
        );
        if let Some(key) = &self.partition {
            // The policy axes without the `part v1;` version prefix —
            // compact, but still distinguishes every policy point.
            let axes = key.strip_prefix("part v1;").unwrap_or(key);
            id.push_str(&format!("/part[{axes}]"));
        }
        id
    }

    /// The full content-addressed cache key for this job's result, given
    /// the workload's content fingerprint
    /// ([`ms_workloads::Workload::fingerprint`]). Covers everything that
    /// can change the simulation outcome: the workload's program, inputs
    /// and expectations, the complete [`SimConfig`], the simulator kind,
    /// and the crate version (so a simulator change invalidates every
    /// entry).
    pub fn cache_key(&self, fingerprint: u64) -> String {
        let mut key = format!(
            "ms-sweep v1|workload={}|scale={}|fingerprint={:016x}|kind={}|{}|crate={}",
            self.workload.to_ascii_lowercase(),
            self.scale.id(),
            fingerprint,
            self.kind.id(),
            self.cfg.stable_key(),
            env!("CARGO_PKG_VERSION"),
        );
        // Appended only when partitioning is active so every cache entry
        // written before the partition axis existed stays addressable.
        if let Some(p) = &self.partition {
            key.push_str("|partition=");
            key.push_str(p);
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            workload: "Wc".into(),
            scale: Scale::Test,
            kind: JobKind::Multiscalar,
            cfg: SimConfig::multiscalar(8).issue(2),
            partition: None,
        }
    }

    #[test]
    fn ids_are_stable_and_lowercase() {
        assert_eq!(job().id(), "wc@test/ms8/w2/inorder");
        let scalar = Job { kind: JobKind::Scalar, cfg: SimConfig::scalar(), ..job() };
        assert_eq!(scalar.id(), "wc@test/scalar/w1/inorder");
    }

    #[test]
    fn partition_appears_in_id_and_cache_key() {
        let key = "part v1;size=8;loops=1;calls=0;fwd=1;rel=1";
        let p = Job { partition: Some(key.into()), ..job() };
        assert_eq!(p.id(), "wc@test/ms8/w2/inorder/part[size=8;loops=1;calls=0;fwd=1;rel=1]");
        assert_ne!(p.cache_key(1), job().cache_key(1), "partition is part of the key");
        assert!(p.cache_key(1).ends_with(&format!("|partition={key}")));
        // Unpartitioned jobs keep the pre-axis key format verbatim.
        assert!(!job().cache_key(1).contains("partition"));
    }

    #[test]
    fn cache_key_covers_fingerprint_and_config() {
        let j = job();
        let k = j.cache_key(1);
        assert_ne!(k, j.cache_key(2), "fingerprint is part of the key");
        let mut tweaked = j.clone();
        tweaked.cfg.arb_capacity = 8;
        assert_ne!(k, tweaked.cache_key(1), "non-axis config fields are part of the key");
        assert_eq!(k, job().cache_key(1), "keys are deterministic");
    }
}
