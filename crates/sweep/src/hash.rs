//! FNV-1a hashing, stable across processes and Rust releases (unlike
//! `std`'s default hasher, which is randomized/unspecified).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// 64-bit FNV-1a of `bytes`.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
