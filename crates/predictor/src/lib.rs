//! # ms-predictor — task-level control-flow prediction
//!
//! The multiscalar sequencer "uses information in the task descriptor to
//! predict one of the possible successor tasks". The paper's configuration
//! (Section 5.1): "The control flow prediction of the sequencer uses a PAs
//! configuration with 4 targets per prediction and 6 outcome histories.
//! The prediction storage is composed of a first level history table that
//! contains 64 entries of 12 bits each (2 bits for each outcome due to 4
//! targets) and a set of second level pattern tables that contain 4096
//! entries of 3 bits each (1 bit target taken/not taken and 2 bits target
//! number). The control flow prediction is supplemented by a 64 entry
//! return address stack." The sequencer also keeps "a 1024 entry direct
//! mapped cache of task descriptors".
//!
//! This crate provides all three structures. Histories are updated at
//! task *resolution* (when a task's actual successor is known), a common
//! simplification relative to speculative history update with repair; the
//! return-address stack is repaired on squash by restoring its top
//! pointer.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use ms_isa::MAX_TARGETS;

/// Statistics for the task predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Predictions issued.
    pub predictions: u64,
    /// Predictions later found correct.
    pub correct: u64,
}

impl PredictorStats {
    /// Fraction of correct predictions (1.0 when none were made).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

const L1_ENTRIES: usize = 64;
const HISTORY_OUTCOMES: u32 = 6;
const HISTORY_BITS: u32 = 2 * HISTORY_OUTCOMES; // 12
const PATTERN_ENTRIES: usize = 1 << HISTORY_BITS; // 4096
const PATTERN_TABLES: usize = 4;

/// PAs-style two-level predictor over task successor targets.
///
/// The first level is a per-task history of the last 6 chosen target
/// numbers (2 bits each); the history indexes one of a set of second-level
/// pattern tables (selected by task address) whose 3-bit entries hold a
/// 2-bit predicted target number and a 1-bit hysteresis.
#[derive(Clone, Debug)]
pub struct TaskPredictor {
    histories: Vec<u16>,
    patterns: Vec<[u8; PATTERN_ENTRIES]>,
    stats: PredictorStats,
}

impl Default for TaskPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskPredictor {
    /// A predictor with the paper's table sizes.
    pub fn new() -> TaskPredictor {
        TaskPredictor {
            histories: vec![0u16; L1_ENTRIES],
            patterns: vec![[0u8; PATTERN_ENTRIES]; PATTERN_TABLES],
            stats: PredictorStats::default(),
        }
    }

    fn l1_index(task: u32) -> usize {
        ((task >> 2) as usize) % L1_ENTRIES
    }

    fn table_index(task: u32) -> usize {
        ((task >> 8) as usize) % PATTERN_TABLES
    }

    /// Predicts the successor-target index (`0..ntargets`) for the task at
    /// `task` entry address.
    ///
    /// # Panics
    /// Panics if `ntargets` is 0 or exceeds [`MAX_TARGETS`].
    pub fn predict(&self, task: u32, ntargets: usize) -> usize {
        assert!((1..=MAX_TARGETS).contains(&ntargets));
        let hist = self.histories[Self::l1_index(task)] as usize;
        let entry = self.patterns[Self::table_index(task)][hist & (PATTERN_ENTRIES - 1)];
        let target = (entry & 0b11) as usize;
        if target < ntargets {
            target
        } else {
            0
        }
    }

    /// [`TaskPredictor::predict`] with trace instrumentation: emits a
    /// `TaskPredict` event carrying the history register the lookup used,
    /// timestamped `now`.
    pub fn predict_traced<S: ms_trace::TraceSink>(
        &self,
        now: u64,
        task: u32,
        ntargets: usize,
        sink: &mut S,
    ) -> usize {
        let chosen = self.predict(task, ntargets);
        if S::ENABLED {
            sink.event(&ms_trace::TraceEvent::TaskPredict {
                cycle: now,
                task,
                history: self.history(task),
                chosen,
                ntargets,
            });
        }
        chosen
    }

    /// Records that a prediction resolved (and whether it was correct);
    /// separated from [`TaskPredictor::predict`] because in the simulator
    /// correctness is only known at resolution.
    pub fn note_outcome(&mut self, correct: bool) {
        self.stats.predictions += 1;
        if correct {
            self.stats.correct += 1;
        }
    }

    /// Trains the pattern entry selected by `hist` (the history *before*
    /// this outcome was shifted in) toward the actual target index.
    ///
    /// # Panics
    /// Panics if `actual >= MAX_TARGETS`.
    pub fn train(&mut self, task: u32, hist: u16, actual: usize) {
        assert!(actual < MAX_TARGETS);
        let entry =
            &mut self.patterns[Self::table_index(task)][hist as usize & (PATTERN_ENTRIES - 1)];
        let target = (*entry & 0b11) as usize;
        let hysteresis = *entry & 0b100 != 0;
        if target == actual {
            *entry |= 0b100; // reinforce
        } else if hysteresis {
            *entry &= !0b100; // weaken
        } else {
            *entry = actual as u8; // replace
        }
    }

    /// The current first-level history for `task`'s entry.
    pub fn history(&self, task: u32) -> u16 {
        self.histories[Self::l1_index(task)]
    }

    /// Overwrites the first-level history for `task`'s entry — used for
    /// speculative history update (shift at prediction time) and its
    /// squash repair (restore the pre-shift value).
    pub fn set_history(&mut self, task: u32, hist: u16) {
        self.histories[Self::l1_index(task)] = hist & ((1 << HISTORY_BITS) - 1);
    }

    /// Shifts outcome `idx` into `task`'s history, returning the previous
    /// value for squash repair.
    ///
    /// # Panics
    /// Panics if `idx >= MAX_TARGETS`.
    pub fn shift(&mut self, task: u32, idx: usize) -> u16 {
        assert!(idx < MAX_TARGETS);
        let prev = self.history(task);
        self.set_history(task, (prev << 2) | idx as u16);
        prev
    }

    /// Trains with the actual outcome at the *current* history, then
    /// shifts it in (the non-speculative sequence, for callers that know
    /// outcomes immediately).
    pub fn update(&mut self, task: u32, actual: usize) {
        let h = self.history(task);
        self.train(task, h, actual);
        self.shift(task, actual);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// A fixed-capacity circular return-address stack.
///
/// Overflow overwrites the oldest entry; underflow returns `None`. The
/// top pointer can be snapshotted and restored for squash repair (stack
/// *contents* clobbered by wrong-path pushes are not restored, matching
/// real hardware behaviour).
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    slots: Vec<u32>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// A stack with `capacity` entries (the paper uses 64).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        assert!(capacity > 0);
        ReturnAddressStack { slots: vec![0u32; capacity], top: 0, depth: 0 }
    }

    /// Pushes a return address.
    pub fn push(&mut self, addr: u32) {
        let cap = self.slots.len();
        self.slots[self.top % cap] = addr;
        self.top += 1;
        self.depth = (self.depth + 1).min(cap);
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<u32> {
        if self.depth == 0 {
            return None;
        }
        self.top -= 1;
        self.depth -= 1;
        Some(self.slots[self.top % self.slots.len()])
    }

    /// Snapshots the top pointer for later [`ReturnAddressStack::restore`].
    pub fn snapshot(&self) -> (usize, usize) {
        (self.top, self.depth)
    }

    /// Restores a snapshot taken earlier (squash repair).
    pub fn restore(&mut self, snap: (usize, usize)) {
        self.top = snap.0;
        self.depth = snap.1.min(self.slots.len());
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Timing model of the sequencer's direct-mapped task-descriptor cache.
///
/// Descriptor contents are always architecturally available (they live in
/// the program image); this tracks only whether fetching one costs a miss.
#[derive(Clone, Debug)]
pub struct DescriptorCache {
    tags: Vec<Option<u32>>,
    entries: usize,
    accesses: u64,
    misses: u64,
}

impl Default for DescriptorCache {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl DescriptorCache {
    /// A cache of `entries` descriptors (the paper uses 1024).
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> DescriptorCache {
        assert!(entries > 0);
        DescriptorCache { tags: vec![None; entries], entries, accesses: 0, misses: 0 }
    }

    /// Accesses the descriptor for the task at `entry`; returns whether it
    /// hit (a miss installs it).
    pub fn access(&mut self, entry: u32) -> bool {
        self.accesses += 1;
        let idx = ((entry >> 2) as usize) % self.entries;
        let hit = self.tags[idx] == Some(entry);
        if !hit {
            self.misses += 1;
            self.tags[idx] = Some(entry);
        }
        hit
    }

    /// `(accesses, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_target() {
        let mut p = TaskPredictor::new();
        let task = 0x1000;
        for _ in 0..8 {
            p.update(task, 1);
        }
        assert_eq!(p.predict(task, 2), 1);
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // A loop that runs 3 iterations then exits: target sequence
        // 0,0,1, 0,0,1, ... With 6 outcomes of history the pattern is
        // learnable exactly.
        let mut p = TaskPredictor::new();
        let task = 0x2000;
        for _ in 0..40 {
            p.update(task, 0);
            p.update(task, 0);
            p.update(task, 1);
        }
        let mut correct = 0;
        for &actual in &[0usize, 0, 1, 0, 0, 1] {
            if p.predict(task, 2) == actual {
                correct += 1;
            }
            p.update(task, actual);
        }
        assert_eq!(correct, 6, "pattern should be fully predictable");
    }

    #[test]
    fn prediction_clamps_to_target_count() {
        let mut p = TaskPredictor::new();
        let task = 0x3000;
        for _ in 0..8 {
            p.update(task, 3);
        }
        assert_eq!(p.predict(task, 4), 3);
        // Same history but a descriptor with fewer targets: clamp to 0.
        assert_eq!(p.predict(task, 2), 0);
    }

    #[test]
    fn accuracy_accounting() {
        let mut p = TaskPredictor::new();
        p.note_outcome(true);
        p.note_outcome(false);
        p.note_outcome(true);
        assert_eq!(p.stats().predictions, 3);
        assert!((p.stats().accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ras_lifo_and_underflow() {
        let mut ras = ReturnAddressStack::new(4);
        assert_eq!(ras.pop(), None);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_snapshot_restore() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(0xa);
        let snap = ras.snapshot();
        ras.push(0xb);
        ras.pop();
        ras.pop();
        ras.restore(snap);
        assert_eq!(ras.pop(), Some(0xa));
    }

    #[test]
    fn descriptor_cache_hits_after_install() {
        let mut dc = DescriptorCache::new(1024);
        assert!(!dc.access(0x1000));
        assert!(dc.access(0x1000));
        // Conflicting entry (same index, 1024 entries * 4 bytes apart).
        assert!(!dc.access(0x1000 + 1024 * 4));
        assert!(!dc.access(0x1000));
        assert_eq!(dc.stats(), (4, 3));
    }
}
