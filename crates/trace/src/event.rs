//! The structured event vocabulary of the simulator.
//!
//! Every observable micro-architectural occurrence is a [`TraceEvent`]
//! with an explicit cycle timestamp, mirroring the mechanisms of the
//! paper: the sequencer's task lifecycle (Section 2/3.1), the register
//! forwarding ring (Section 2.1), per-unit stall taxonomy (Section 3),
//! and the memory system — ARB, banked data cache, per-unit instruction
//! caches and the shared bus (Sections 2.3/5.1).

use std::fmt;

/// Why a run of tasks was squashed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SquashKind {
    /// Task-level control misprediction (Section 3.1.2).
    Control,
    /// Memory-order violation detected by the ARB (Section 2.3).
    Memory,
    /// ARB overflow under the squash policy (Section 2.3).
    ArbFull,
    /// Spurious squash injected by a fault plan (chaos testing). Never
    /// produced by the baseline machine; exercises the same recovery
    /// machinery as the real causes.
    Chaos,
}

impl SquashKind {
    /// Stable lowercase name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            SquashKind::Control => "control",
            SquashKind::Memory => "memory",
            SquashKind::ArbFull => "arb_full",
            SquashKind::Chaos => "chaos",
        }
    }
}

/// Fine-grained reason a unit with an assigned task issued nothing this
/// cycle (refines the paper's Section-3 no-computation taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallReason {
    /// Nothing decoded and issue-eligible (fetch latency, I-cache miss,
    /// redirect bubble).
    FetchEmpty,
    /// Oldest eligible instruction waits on an intra-task register value.
    LocalDep,
    /// Oldest eligible instruction waits on a value from a predecessor
    /// task (inter-task register communication).
    RemoteDep,
    /// Required functional unit busy.
    FuBusy,
    /// Out-of-order issue blocked by an ordering hazard.
    Hazard,
    /// Blocked allocating ARB space.
    ArbFull,
    /// All issued instructions still in flight after the stop resolved.
    Drain,
    /// Task complete; waiting to reach the head for retirement.
    WaitRetire,
    /// Nothing issue-eligible while an instruction-cache miss fill is in
    /// flight (refines [`StallReason::FetchEmpty`]: the fetch bubble is a
    /// memory-system penalty, not a decode/redirect artifact).
    CacheMiss,
    /// No task assigned: the unit sits idle in the circular queue
    /// because the sequencer has nothing for it (program drained, or
    /// the head has not freed the slot).
    NoTask,
    /// The unit was emptied by a squash wave and has not been handed a
    /// new task yet (recovery shadow of a misprediction or violation).
    SquashRecovery,
}

impl StallReason {
    /// Stable lowercase name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            StallReason::FetchEmpty => "fetch_empty",
            StallReason::LocalDep => "local_dep",
            StallReason::RemoteDep => "remote_dep",
            StallReason::FuBusy => "fu_busy",
            StallReason::Hazard => "hazard",
            StallReason::ArbFull => "arb_full",
            StallReason::Drain => "drain",
            StallReason::WaitRetire => "wait_retire",
            StallReason::CacheMiss => "cache_miss",
            StallReason::NoTask => "no_task",
            StallReason::SquashRecovery => "squash_recovery",
        }
    }

    /// Index into per-reason counter arrays.
    pub fn index(self) -> usize {
        match self {
            StallReason::FetchEmpty => 0,
            StallReason::LocalDep => 1,
            StallReason::RemoteDep => 2,
            StallReason::FuBusy => 3,
            StallReason::Hazard => 4,
            StallReason::ArbFull => 5,
            StallReason::Drain => 6,
            StallReason::WaitRetire => 7,
            StallReason::CacheMiss => 8,
            StallReason::NoTask => 9,
            StallReason::SquashRecovery => 10,
        }
    }

    /// Number of reasons (length of [`StallReason::ALL`]).
    pub const COUNT: usize = 11;

    /// All reasons, in [`StallReason::index`] order.
    pub const ALL: [StallReason; Self::COUNT] = [
        StallReason::FetchEmpty,
        StallReason::LocalDep,
        StallReason::RemoteDep,
        StallReason::FuBusy,
        StallReason::Hazard,
        StallReason::ArbFull,
        StallReason::Drain,
        StallReason::WaitRetire,
        StallReason::CacheMiss,
        StallReason::NoTask,
        StallReason::SquashRecovery,
    ];
}

/// One timestamped simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    // ---- Sequencer (task lifecycle) ----
    /// The sequencer predicted the successor of `task`.
    TaskPredict {
        /// Cycle of prediction.
        cycle: u64,
        /// Entry address of the predicting (predecessor) task.
        task: u32,
        /// Predictor history register value used for the lookup.
        history: u16,
        /// Chosen target index.
        chosen: usize,
        /// Number of descriptor targets to choose from.
        ntargets: usize,
    },
    /// A task was assigned to a processing unit.
    TaskAssign {
        /// Cycle of assignment.
        cycle: u64,
        /// Dispatch order (monotone task id).
        order: u64,
        /// Processing unit.
        unit: usize,
        /// Task entry address.
        entry: u32,
        /// Entered via sequencer prediction (vs. known successor).
        by_prediction: bool,
    },
    /// A task's actual successor became known and was checked.
    TaskValidate {
        /// Cycle of validation.
        cycle: u64,
        /// Entry address of the validated task.
        entry: u32,
        /// Actual successor entry (`None`: program ends).
        actual_next: Option<u32>,
        /// Whether the assigned/pending successor matched.
        correct: bool,
    },
    /// A task retired at the head of the circular queue.
    TaskRetire {
        /// Cycle of retirement.
        cycle: u64,
        /// Dispatch order.
        order: u64,
        /// Processing unit.
        unit: usize,
        /// Task entry address.
        entry: u32,
        /// Instructions the task committed.
        instructions: u64,
    },
    /// One task was squashed (part of a squash wave).
    TaskSquash {
        /// Cycle of the squash.
        cycle: u64,
        /// Dispatch order.
        order: u64,
        /// Processing unit.
        unit: usize,
        /// Task entry address.
        entry: u32,
        /// Why the wave happened.
        cause: SquashKind,
    },
    /// A squash wave: the task at some position and all successors died.
    SquashWave {
        /// Cycle of the squash.
        cycle: u64,
        /// Why.
        cause: SquashKind,
        /// Number of tasks squashed.
        depth: usize,
        /// Where the sequencer resumes (`None`: stop/unknown).
        redirect: Option<u32>,
    },
    /// The sequencer looked up a task descriptor.
    DescriptorFetch {
        /// Cycle of the lookup.
        cycle: u64,
        /// Task entry address.
        entry: u32,
        /// Descriptor-cache hit (a miss pays a bus transfer).
        hit: bool,
    },

    // ---- Register forwarding ring ----
    /// A unit put a register value on the ring.
    RingSend {
        /// Cycle of the send.
        cycle: u64,
        /// Sending unit.
        unit: usize,
        /// Register index.
        reg: u8,
        /// Dispatch order of the sending task.
        order: u64,
    },
    /// A message completed one hop.
    RingHop {
        /// Cycle of arrival at `to`.
        cycle: u64,
        /// Unit the hop left.
        from: usize,
        /// Unit the hop reached.
        to: usize,
        /// Register index.
        reg: u8,
        /// Hops traveled so far (including this one).
        hops: u32,
    },
    /// A message was consumed by a unit holding a later task.
    RingDeliver {
        /// Cycle of delivery.
        cycle: u64,
        /// Receiving unit.
        unit: usize,
        /// Register index.
        reg: u8,
        /// Total hops from sender to receiver (ring latency).
        hops: u32,
        /// Whether the value propagates onward to later tasks.
        propagate: bool,
    },
    /// A message died (wrapped to its sender/an older task, or the ring
    /// emptied of tasks).
    RingDie {
        /// Cycle of death.
        cycle: u64,
        /// Unit at which it died.
        unit: usize,
        /// Register index.
        reg: u8,
        /// Hops traveled.
        hops: u32,
    },

    // ---- Processing units ----
    /// A unit with an assigned task issued nothing this cycle.
    UnitStall {
        /// The stalled cycle.
        cycle: u64,
        /// Processing unit.
        unit: usize,
        /// Fine-grained reason.
        reason: StallReason,
    },
    /// A unit redirected fetch after resolving a control instruction.
    UnitRedirect {
        /// Cycle of the redirect.
        cycle: u64,
        /// Processing unit.
        unit: usize,
        /// New fetch PC.
        to_pc: u32,
    },

    // ---- Memory system ----
    /// A speculative load went through the ARB.
    ArbLoad {
        /// Cycle the access was made.
        cycle: u64,
        /// ARB stage (unit) of the load.
        unit: usize,
        /// Byte address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
        /// Whether any byte was forwarded from an earlier task's store.
        forwarded: bool,
    },
    /// A speculative store allocated in the ARB.
    ArbStore {
        /// Cycle the access was made.
        cycle: u64,
        /// ARB stage (unit) of the store.
        unit: usize,
        /// Byte address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
        /// Whether it exposed at least one memory-order violation.
        violated: bool,
    },
    /// The ARB detected a memory-order violation.
    ArbViolation {
        /// Cycle of detection.
        cycle: u64,
        /// Stage of the store that exposed the violation.
        store_unit: usize,
        /// Stage whose premature load was violated.
        violated_unit: usize,
        /// Byte address of the store.
        addr: u32,
    },
    /// An ARB allocation failed (row capacity exhausted).
    ArbFullStall {
        /// Cycle of the failed allocation.
        cycle: u64,
        /// Requesting stage.
        unit: usize,
        /// Byte address.
        addr: u32,
        /// Whether the request was a store.
        is_store: bool,
    },
    /// Periodic sample of total live ARB entries (occupancy over time).
    ArbOccupancy {
        /// Sample cycle.
        cycle: u64,
        /// Live entries across all banks.
        entries: usize,
    },
    /// A data-cache bank access (loads; speculative stores live in the
    /// ARB and do not probe the cache).
    DCacheAccess {
        /// Cycle the access started service.
        cycle: u64,
        /// Bank index.
        bank: usize,
        /// Byte address.
        addr: u32,
        /// Hit (ARB-forwarded loads count as hits: they cannot miss).
        hit: bool,
    },
    /// A per-unit instruction-cache fetch.
    ICacheFetch {
        /// Cycle of the fetch.
        cycle: u64,
        /// Fetching unit.
        unit: usize,
        /// Fetch PC.
        pc: u32,
        /// Hit.
        hit: bool,
    },
    /// A transfer on the shared split-transaction bus.
    BusRequest {
        /// Cycle the request was made.
        cycle: u64,
        /// Words transferred.
        words: u32,
        /// Cycles spent waiting behind earlier transactions.
        waited: u64,
        /// Absolute completion cycle.
        done: u64,
    },
}

impl TraceEvent {
    /// The event's cycle timestamp.
    pub fn cycle(&self) -> u64 {
        use TraceEvent::*;
        match *self {
            TaskPredict { cycle, .. }
            | TaskAssign { cycle, .. }
            | TaskValidate { cycle, .. }
            | TaskRetire { cycle, .. }
            | TaskSquash { cycle, .. }
            | SquashWave { cycle, .. }
            | DescriptorFetch { cycle, .. }
            | RingSend { cycle, .. }
            | RingHop { cycle, .. }
            | RingDeliver { cycle, .. }
            | RingDie { cycle, .. }
            | UnitStall { cycle, .. }
            | UnitRedirect { cycle, .. }
            | ArbLoad { cycle, .. }
            | ArbStore { cycle, .. }
            | ArbViolation { cycle, .. }
            | ArbFullStall { cycle, .. }
            | ArbOccupancy { cycle, .. }
            | DCacheAccess { cycle, .. }
            | ICacheFetch { cycle, .. }
            | BusRequest { cycle, .. } => cycle,
        }
    }

    /// Stable snake_case kind name (used as the JSONL discriminator).
    pub fn kind(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            TaskPredict { .. } => "task_predict",
            TaskAssign { .. } => "task_assign",
            TaskValidate { .. } => "task_validate",
            TaskRetire { .. } => "task_retire",
            TaskSquash { .. } => "task_squash",
            SquashWave { .. } => "squash_wave",
            DescriptorFetch { .. } => "descriptor_fetch",
            RingSend { .. } => "ring_send",
            RingHop { .. } => "ring_hop",
            RingDeliver { .. } => "ring_deliver",
            RingDie { .. } => "ring_die",
            UnitStall { .. } => "unit_stall",
            UnitRedirect { .. } => "unit_redirect",
            ArbLoad { .. } => "arb_load",
            ArbStore { .. } => "arb_store",
            ArbViolation { .. } => "arb_violation",
            ArbFullStall { .. } => "arb_full_stall",
            ArbOccupancy { .. } => "arb_occupancy",
            DCacheAccess { .. } => "dcache_access",
            ICacheFetch { .. } => "icache_fetch",
            BusRequest { .. } => "bus_request",
        }
    }
}

/// Human-readable one-line form, used by the legacy `MS_TRACE` stderr log.
impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceEvent::*;
        match *self {
            TaskPredict { cycle, task, history, chosen, ntargets } => write!(
                f,
                "[{cycle}] predict: task {task:#x} hist={history:#06x} -> target {chosen}/{ntargets}"
            ),
            TaskAssign { cycle, order, unit, entry, by_prediction } => write!(
                f,
                "[{cycle}] assign: #{order} -> u{unit} @{entry:#x}{}",
                if by_prediction { " (predicted)" } else { "" }
            ),
            TaskValidate { cycle, entry, actual_next, correct } => write!(
                f,
                "[{cycle}] validate: task {entry:#x} next={actual_next:#x?} correct={correct}"
            ),
            TaskRetire { cycle, order, unit, entry, instructions } => write!(
                f,
                "[{cycle}] retire: #{order} u{unit} @{entry:#x} ({instructions} instrs)"
            ),
            TaskSquash { cycle, order, unit, entry, cause } => write!(
                f,
                "[{cycle}] squash: #{order} u{unit} @{entry:#x} ({})",
                cause.as_str()
            ),
            SquashWave { cycle, cause, depth, redirect } => write!(
                f,
                "[{cycle}] squash-wave: {} tasks ({}), redirect={redirect:#x?}",
                depth,
                cause.as_str()
            ),
            DescriptorFetch { cycle, entry, hit } => {
                write!(f, "[{cycle}] descriptor: {entry:#x} hit={hit}")
            }
            RingSend { cycle, unit, reg, order } => {
                write!(f, "[{cycle}] ring: send r{reg} from u{unit} (#{order})")
            }
            RingHop { cycle, from, to, reg, hops } => {
                write!(f, "[{cycle}] ring: r{reg} hop u{from}->u{to} ({hops} hops)")
            }
            RingDeliver { cycle, unit, reg, hops, propagate } => write!(
                f,
                "[{cycle}] ring: r{reg} -> u{unit} deliver after {hops} hops prop={propagate}"
            ),
            RingDie { cycle, unit, reg, hops } => {
                write!(f, "[{cycle}] ring: r{reg} dies at u{unit} after {hops} hops")
            }
            UnitStall { cycle, unit, reason } => {
                write!(f, "[{cycle}] stall: u{unit} {}", reason.as_str())
            }
            UnitRedirect { cycle, unit, to_pc } => {
                write!(f, "[{cycle}] redirect: u{unit} -> {to_pc:#x}")
            }
            ArbLoad { cycle, unit, addr, size, forwarded } => write!(
                f,
                "[{cycle}] arb: load u{unit} @{addr:#x}+{size} fwd={forwarded}"
            ),
            ArbStore { cycle, unit, addr, size, violated } => write!(
                f,
                "[{cycle}] arb: store u{unit} @{addr:#x}+{size} violated={violated}"
            ),
            ArbViolation { cycle, store_unit, violated_unit, addr } => write!(
                f,
                "[{cycle}] arb: violation store u{store_unit} @{addr:#x} kills u{violated_unit}"
            ),
            ArbFullStall { cycle, unit, addr, is_store } => write!(
                f,
                "[{cycle}] arb: full on u{unit} @{addr:#x} ({})",
                if is_store { "store" } else { "load" }
            ),
            ArbOccupancy { cycle, entries } => {
                write!(f, "[{cycle}] arb: occupancy {entries}")
            }
            DCacheAccess { cycle, bank, addr, hit } => {
                write!(f, "[{cycle}] dcache: bank {bank} @{addr:#x} hit={hit}")
            }
            ICacheFetch { cycle, unit, pc, hit } => {
                write!(f, "[{cycle}] icache: u{unit} @{pc:#x} hit={hit}")
            }
            BusRequest { cycle, words, waited, done } => {
                write!(f, "[{cycle}] bus: {words} words waited={waited} done={done}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_cycle_are_consistent() {
        let ev = TraceEvent::TaskAssign {
            cycle: 7,
            order: 1,
            unit: 2,
            entry: 0x400,
            by_prediction: true,
        };
        assert_eq!(ev.kind(), "task_assign");
        assert_eq!(ev.cycle(), 7);
        assert_eq!(ev.to_string(), "[7] assign: #1 -> u2 @0x400 (predicted)");
    }

    #[test]
    fn stall_reason_indices_are_a_bijection() {
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
