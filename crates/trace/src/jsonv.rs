//! A minimal JSON value and parser — just enough to read back the
//! machine-generated documents this workspace emits (profiles, serve
//! protocol lines, load reports). The workspace deliberately has no
//! serde; every producer writes fixed-field-order JSON via
//! [`crate::json`], and consumers read it with this module.
//!
//! The parser is strict where it matters (structure, escapes, numbers)
//! and tolerant where it does not (field order, unknown fields — object
//! fields are kept in document order and looked up by name).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array, in document order.
    Arr(Vec<JsonValue>),
    /// An object: `(key, value)` pairs in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up an object field by name (first match wins).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Trailing non-whitespace is an
/// error; the message names the byte offset of the first problem.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut r = Reader { bytes: text.as_bytes(), pos: 0 };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.error("trailing data"));
    }
    Ok(v)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, val: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(fields));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(b))
                {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|t| t.parse().ok())
                    .map(JsonValue::Num)
                    .ok_or_else(|| self.error("bad number"))
            }
            None => Err(self.error("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,"x\n",true,null],"b":{"c":false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x\n"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn round_trips_escapes_from_the_writer() {
        let doc = format!("{{\"k\":{}}}", crate::json::string("a\"b\\c\nd\t\u{1}"));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\"b\\c\nd\t\u{1}"));
    }

    #[test]
    fn numbers_distinguish_integers() {
        let v = parse("[7,7.25,-1]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(7));
        assert_eq!(a[1].as_u64(), None);
        assert_eq!(a[1].as_f64(), Some(7.25));
        assert_eq!(a[2].as_u64(), None);
    }
}
