//! JSON-Lines sink: one JSON object per event, newline-delimited.
//!
//! Field order is fixed per variant, so identical runs produce
//! byte-identical output (the determinism tests diff two runs).

use std::io::Write;

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// Serializes one event as a single-line JSON object.
///
/// Every object starts `{"kind":"...","cycle":N,...}` followed by the
/// variant's fields in declaration order.
pub fn event_to_json(ev: &TraceEvent) -> String {
    use TraceEvent::*;
    let mut s = format!("{{\"kind\":\"{}\",\"cycle\":{}", ev.kind(), ev.cycle());
    match *ev {
        TaskPredict { task, history, chosen, ntargets, .. } => {
            s.push_str(&format!(
                ",\"task\":{task},\"history\":{history},\"chosen\":{chosen},\"ntargets\":{ntargets}"
            ));
        }
        TaskAssign { order, unit, entry, by_prediction, .. } => {
            s.push_str(&format!(
                ",\"order\":{order},\"unit\":{unit},\"entry\":{entry},\"by_prediction\":{by_prediction}"
            ));
        }
        TaskValidate { entry, actual_next, correct, .. } => {
            s.push_str(&format!(",\"entry\":{entry},\"actual_next\":"));
            match actual_next {
                Some(n) => s.push_str(&n.to_string()),
                None => s.push_str("null"),
            }
            s.push_str(&format!(",\"correct\":{correct}"));
        }
        TaskRetire { order, unit, entry, instructions, .. } => {
            s.push_str(&format!(
                ",\"order\":{order},\"unit\":{unit},\"entry\":{entry},\"instructions\":{instructions}"
            ));
        }
        TaskSquash { order, unit, entry, cause, .. } => {
            s.push_str(&format!(
                ",\"order\":{order},\"unit\":{unit},\"entry\":{entry},\"cause\":\"{}\"",
                cause.as_str()
            ));
        }
        SquashWave { cause, depth, redirect, .. } => {
            s.push_str(&format!(
                ",\"cause\":\"{}\",\"depth\":{depth},\"redirect\":",
                cause.as_str()
            ));
            match redirect {
                Some(r) => s.push_str(&r.to_string()),
                None => s.push_str("null"),
            }
        }
        DescriptorFetch { entry, hit, .. } => {
            s.push_str(&format!(",\"entry\":{entry},\"hit\":{hit}"));
        }
        RingSend { unit, reg, order, .. } => {
            s.push_str(&format!(",\"unit\":{unit},\"reg\":{reg},\"order\":{order}"));
        }
        RingHop { from, to, reg, hops, .. } => {
            s.push_str(&format!(",\"from\":{from},\"to\":{to},\"reg\":{reg},\"hops\":{hops}"));
        }
        RingDeliver { unit, reg, hops, propagate, .. } => {
            s.push_str(&format!(
                ",\"unit\":{unit},\"reg\":{reg},\"hops\":{hops},\"propagate\":{propagate}"
            ));
        }
        RingDie { unit, reg, hops, .. } => {
            s.push_str(&format!(",\"unit\":{unit},\"reg\":{reg},\"hops\":{hops}"));
        }
        UnitStall { unit, reason, .. } => {
            s.push_str(&format!(",\"unit\":{unit},\"reason\":\"{}\"", reason.as_str()));
        }
        UnitRedirect { unit, to_pc, .. } => {
            s.push_str(&format!(",\"unit\":{unit},\"to_pc\":{to_pc}"));
        }
        ArbLoad { unit, addr, size, forwarded, .. } => {
            s.push_str(&format!(
                ",\"unit\":{unit},\"addr\":{addr},\"size\":{size},\"forwarded\":{forwarded}"
            ));
        }
        ArbStore { unit, addr, size, violated, .. } => {
            s.push_str(&format!(
                ",\"unit\":{unit},\"addr\":{addr},\"size\":{size},\"violated\":{violated}"
            ));
        }
        ArbViolation { store_unit, violated_unit, addr, .. } => {
            s.push_str(&format!(
                ",\"store_unit\":{store_unit},\"violated_unit\":{violated_unit},\"addr\":{addr}"
            ));
        }
        ArbFullStall { unit, addr, is_store, .. } => {
            s.push_str(&format!(",\"unit\":{unit},\"addr\":{addr},\"is_store\":{is_store}"));
        }
        ArbOccupancy { entries, .. } => {
            s.push_str(&format!(",\"entries\":{entries}"));
        }
        DCacheAccess { bank, addr, hit, .. } => {
            s.push_str(&format!(",\"bank\":{bank},\"addr\":{addr},\"hit\":{hit}"));
        }
        ICacheFetch { unit, pc, hit, .. } => {
            s.push_str(&format!(",\"unit\":{unit},\"pc\":{pc},\"hit\":{hit}"));
        }
        BusRequest { words, waited, done, .. } => {
            s.push_str(&format!(",\"words\":{words},\"waited\":{waited},\"done\":{done}"));
        }
    }
    s.push('}');
    s
}

/// Streams events as JSON Lines to any [`Write`] target.
pub struct JsonLinesSink<W: Write> {
    writer: W,
    /// I/O errors are sticky: the first one is kept, later writes skip.
    error: Option<std::io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps `writer` (consider `BufWriter` for files).
    pub fn new(writer: W) -> Self {
        Self { writer, error: None }
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer (and any sticky error).
    pub fn into_inner(mut self) -> (W, Option<std::io::Error>) {
        let _ = self.writer.flush();
        (self.writer, self.error)
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event_to_json(ev);
        if let Err(e) =
            self.writer.write_all(line.as_bytes()).and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.error.get_or_insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SquashKind;

    #[test]
    fn lines_are_self_describing_objects() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.event(&TraceEvent::TaskAssign {
            cycle: 1,
            order: 0,
            unit: 3,
            entry: 256,
            by_prediction: false,
        });
        sink.event(&TraceEvent::SquashWave {
            cycle: 5,
            cause: SquashKind::Memory,
            depth: 2,
            redirect: None,
        });
        sink.finish();
        let (buf, err) = sink.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "{\"kind\":\"task_assign\",\"cycle\":1,\"order\":0,\"unit\":3,\"entry\":256,\"by_prediction\":false}\n\
             {\"kind\":\"squash_wave\",\"cycle\":5,\"cause\":\"memory\",\"depth\":2,\"redirect\":null}\n"
        );
    }
}
