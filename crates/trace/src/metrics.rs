//! Aggregating sink: folds the event stream into a [`MetricsReport`].

use crate::event::{SquashKind, StallReason, TraceEvent};
use crate::histogram::Histogram;
use crate::json;
use crate::sink::TraceSink;

/// Machine-readable aggregate of one run's event stream.
///
/// Counter fields mirror the paper's Section-5 evaluation axes; the
/// histograms capture the distributions behind them (task sizing,
/// squash spacing, ring latency, ARB pressure). See EXPERIMENTS.md for
/// the field-by-field mapping.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    // Sequencer / task lifecycle.
    /// Tasks assigned to units.
    pub tasks_assigned: u64,
    /// Tasks retired at the head.
    pub tasks_retired: u64,
    /// Tasks squashed (sum over all waves).
    pub tasks_squashed: u64,
    /// Squash waves caused by task-level control mispredictions.
    pub control_squash_waves: u64,
    /// Squash waves caused by memory-order violations.
    pub memory_squash_waves: u64,
    /// Squash waves caused by ARB overflow.
    pub arb_full_squash_waves: u64,
    /// Squash waves injected by a chaos fault plan (zero in normal runs).
    pub chaos_squash_waves: u64,
    /// Sequencer predictions observed.
    pub predictions: u64,
    /// Successor validations performed.
    pub validations: u64,
    /// Validations that confirmed the assigned successor.
    pub correct_validations: u64,
    /// Task-descriptor lookups.
    pub descriptor_fetches: u64,
    /// Descriptor lookups that hit the descriptor cache.
    pub descriptor_hits: u64,

    // Register forwarding ring.
    /// Values placed on the ring.
    pub ring_sends: u64,
    /// Unidirectional hops completed.
    pub ring_hops: u64,
    /// Values consumed by a later task.
    pub ring_delivers: u64,
    /// Messages that died undelivered at some unit.
    pub ring_dies: u64,

    // Processing units.
    /// Stalled unit-cycles by [`StallReason::index`].
    pub stall_cycles: [u64; StallReason::COUNT],
    /// Intra-task fetch redirects.
    pub unit_redirects: u64,

    // Memory system.
    /// Speculative loads through the ARB.
    pub arb_loads: u64,
    /// ARB loads with at least one byte forwarded from an earlier store.
    pub arb_forwarded_loads: u64,
    /// Speculative stores allocated in the ARB.
    pub arb_stores: u64,
    /// Memory-order violations detected.
    pub arb_violations: u64,
    /// Failed ARB allocations (row capacity exhausted).
    pub arb_full_stalls: u64,
    /// Data-cache bank accesses.
    pub dcache_accesses: u64,
    /// Data-cache hits (including ARB-forwarded loads).
    pub dcache_hits: u64,
    /// Instruction-cache fetches.
    pub icache_fetches: u64,
    /// Instruction-cache hits.
    pub icache_hits: u64,
    /// Shared-bus transactions.
    pub bus_transactions: u64,
    /// Cycles bus requests spent queued behind earlier transactions.
    pub bus_wait_cycles: u64,

    // Distributions.
    /// Committed instructions per retired task (dynamic task size).
    pub task_len_instrs: Histogram,
    /// Tasks retired between consecutive squash waves.
    pub inter_squash_distance: Histogram,
    /// Ring hops from producer to consumer per delivered value.
    pub ring_latency_hops: Histogram,
    /// Live ARB entries at each occupancy sample.
    pub arb_occupancy: Histogram,
}

impl MetricsReport {
    /// Fraction of validations that were correct (`None` if none).
    pub fn validation_accuracy(&self) -> Option<f64> {
        (self.validations > 0).then(|| self.correct_validations as f64 / self.validations as f64)
    }

    /// Serializes the report as a JSON object (fixed field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let field = |out: &mut String, name: &str, val: String| {
            if out.len() > 1 {
                out.push(',');
            }
            json::push_str(out, name);
            out.push(':');
            out.push_str(&val);
        };
        field(&mut out, "tasks_assigned", self.tasks_assigned.to_string());
        field(&mut out, "tasks_retired", self.tasks_retired.to_string());
        field(&mut out, "tasks_squashed", self.tasks_squashed.to_string());
        field(&mut out, "control_squash_waves", self.control_squash_waves.to_string());
        field(&mut out, "memory_squash_waves", self.memory_squash_waves.to_string());
        field(&mut out, "arb_full_squash_waves", self.arb_full_squash_waves.to_string());
        field(&mut out, "chaos_squash_waves", self.chaos_squash_waves.to_string());
        field(&mut out, "predictions", self.predictions.to_string());
        field(&mut out, "validations", self.validations.to_string());
        field(&mut out, "correct_validations", self.correct_validations.to_string());
        field(
            &mut out,
            "validation_accuracy",
            match self.validation_accuracy() {
                Some(a) => json::number(a),
                None => "null".into(),
            },
        );
        field(&mut out, "descriptor_fetches", self.descriptor_fetches.to_string());
        field(&mut out, "descriptor_hits", self.descriptor_hits.to_string());
        field(&mut out, "ring_sends", self.ring_sends.to_string());
        field(&mut out, "ring_hops", self.ring_hops.to_string());
        field(&mut out, "ring_delivers", self.ring_delivers.to_string());
        field(&mut out, "ring_dies", self.ring_dies.to_string());
        {
            let mut stalls = String::from("{");
            for (i, r) in StallReason::ALL.iter().enumerate() {
                if i > 0 {
                    stalls.push(',');
                }
                json::push_str(&mut stalls, r.as_str());
                stalls.push(':');
                stalls.push_str(&self.stall_cycles[i].to_string());
            }
            stalls.push('}');
            field(&mut out, "stall_cycles", stalls);
        }
        field(&mut out, "unit_redirects", self.unit_redirects.to_string());
        field(&mut out, "arb_loads", self.arb_loads.to_string());
        field(&mut out, "arb_forwarded_loads", self.arb_forwarded_loads.to_string());
        field(&mut out, "arb_stores", self.arb_stores.to_string());
        field(&mut out, "arb_violations", self.arb_violations.to_string());
        field(&mut out, "arb_full_stalls", self.arb_full_stalls.to_string());
        field(&mut out, "dcache_accesses", self.dcache_accesses.to_string());
        field(&mut out, "dcache_hits", self.dcache_hits.to_string());
        field(&mut out, "icache_fetches", self.icache_fetches.to_string());
        field(&mut out, "icache_hits", self.icache_hits.to_string());
        field(&mut out, "bus_transactions", self.bus_transactions.to_string());
        field(&mut out, "bus_wait_cycles", self.bus_wait_cycles.to_string());
        field(&mut out, "task_len_instrs", self.task_len_instrs.to_json());
        field(&mut out, "inter_squash_distance", self.inter_squash_distance.to_json());
        field(&mut out, "ring_latency_hops", self.ring_latency_hops.to_json());
        field(&mut out, "arb_occupancy", self.arb_occupancy.to_json());
        out.push('}');
        out
    }
}

/// A [`TraceSink`] that folds events into a [`MetricsReport`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSink {
    report: MetricsReport,
    retires_since_squash: u64,
}

impl MetricsSink {
    /// A fresh, empty metrics sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &MetricsReport {
        &self.report
    }

    /// Consumes the sink, yielding its report.
    pub fn into_report(self) -> MetricsReport {
        self.report
    }
}

impl TraceSink for MetricsSink {
    fn event(&mut self, ev: &TraceEvent) {
        let r = &mut self.report;
        match *ev {
            TraceEvent::TaskPredict { .. } => r.predictions += 1,
            TraceEvent::TaskAssign { .. } => r.tasks_assigned += 1,
            TraceEvent::TaskValidate { correct, .. } => {
                r.validations += 1;
                if correct {
                    r.correct_validations += 1;
                }
            }
            TraceEvent::TaskRetire { instructions, .. } => {
                r.tasks_retired += 1;
                r.task_len_instrs.record(instructions);
                self.retires_since_squash += 1;
            }
            TraceEvent::TaskSquash { .. } => r.tasks_squashed += 1,
            TraceEvent::SquashWave { cause, .. } => {
                match cause {
                    SquashKind::Control => r.control_squash_waves += 1,
                    SquashKind::Memory => r.memory_squash_waves += 1,
                    SquashKind::ArbFull => r.arb_full_squash_waves += 1,
                    SquashKind::Chaos => r.chaos_squash_waves += 1,
                }
                r.inter_squash_distance.record(self.retires_since_squash);
                self.retires_since_squash = 0;
            }
            TraceEvent::DescriptorFetch { hit, .. } => {
                r.descriptor_fetches += 1;
                if hit {
                    r.descriptor_hits += 1;
                }
            }
            TraceEvent::RingSend { .. } => r.ring_sends += 1,
            TraceEvent::RingHop { .. } => r.ring_hops += 1,
            TraceEvent::RingDeliver { hops, .. } => {
                r.ring_delivers += 1;
                r.ring_latency_hops.record(hops as u64);
            }
            TraceEvent::RingDie { .. } => r.ring_dies += 1,
            TraceEvent::UnitStall { reason, .. } => r.stall_cycles[reason.index()] += 1,
            TraceEvent::UnitRedirect { .. } => r.unit_redirects += 1,
            TraceEvent::ArbLoad { forwarded, .. } => {
                r.arb_loads += 1;
                if forwarded {
                    r.arb_forwarded_loads += 1;
                }
            }
            // A violating store is one violation no matter how many later
            // stages it invalidates (matching `ArbStats::violations`); the
            // per-stage `ArbViolation` events carry the detail.
            TraceEvent::ArbStore { violated, .. } => {
                r.arb_stores += 1;
                if violated {
                    r.arb_violations += 1;
                }
            }
            TraceEvent::ArbViolation { .. } => {}
            TraceEvent::ArbFullStall { .. } => r.arb_full_stalls += 1,
            TraceEvent::ArbOccupancy { entries, .. } => r.arb_occupancy.record(entries as u64),
            TraceEvent::DCacheAccess { hit, .. } => {
                r.dcache_accesses += 1;
                if hit {
                    r.dcache_hits += 1;
                }
            }
            TraceEvent::ICacheFetch { hit, .. } => {
                r.icache_fetches += 1;
                if hit {
                    r.icache_hits += 1;
                }
            }
            TraceEvent::BusRequest { waited, .. } => {
                r.bus_transactions += 1;
                r.bus_wait_cycles += waited;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_task_lifecycle() {
        let mut s = MetricsSink::new();
        for i in 0..3 {
            s.event(&TraceEvent::TaskAssign {
                cycle: i,
                order: i,
                unit: i as usize,
                entry: 0x100,
                by_prediction: true,
            });
        }
        s.event(&TraceEvent::TaskRetire {
            cycle: 9,
            order: 0,
            unit: 0,
            entry: 0x100,
            instructions: 12,
        });
        s.event(&TraceEvent::TaskSquash {
            cycle: 10,
            order: 2,
            unit: 2,
            entry: 0x100,
            cause: SquashKind::Control,
        });
        s.event(&TraceEvent::SquashWave {
            cycle: 10,
            cause: SquashKind::Control,
            depth: 1,
            redirect: Some(0x200),
        });
        let r = s.report();
        assert_eq!(r.tasks_assigned, 3);
        assert_eq!(r.tasks_retired, 1);
        assert_eq!(r.tasks_squashed, 1);
        assert_eq!(r.control_squash_waves, 1);
        assert_eq!(r.task_len_instrs.count(), 1);
        assert_eq!(r.task_len_instrs.sum(), 12);
        // One retire happened before the wave.
        assert_eq!(r.inter_squash_distance.count(), 1);
        assert_eq!(r.inter_squash_distance.sum(), 1);
    }

    #[test]
    fn json_is_an_object_with_fixed_first_field() {
        let r = MetricsReport::default();
        let j = r.to_json();
        assert!(j.starts_with("{\"tasks_assigned\":0,"));
        assert!(j.ends_with('}'));
        assert!(j.contains("\"stall_cycles\":{\"fetch_empty\":0,"));
    }
}
