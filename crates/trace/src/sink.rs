//! Event sinks: where [`TraceEvent`]s go.
//!
//! The simulator is generic over a [`TraceSink`]. The default
//! [`NullSink`] advertises `ENABLED = false`, so every instrumentation
//! site compiles to nothing — the event struct is never even built
//! (call-sites guard construction on `S::ENABLED`, a monomorphization-
//! time constant). The criterion benches confirm the zero-cost claim.

use crate::event::TraceEvent;

/// Receives simulator events.
///
/// Implementors get every event in simulation order with monotone
/// non-decreasing cycles within a run.
pub trait TraceSink {
    /// Whether instrumentation call-sites should construct and emit
    /// events at all. `false` (as on [`NullSink`]) lets the compiler
    /// delete the instrumentation entirely.
    const ENABLED: bool = true;

    /// Consume one event.
    fn event(&mut self, ev: &TraceEvent);

    /// Signal end-of-run; flush any buffered output. Idempotent.
    fn finish(&mut self) {}
}

/// The zero-cost "not tracing" sink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: &TraceEvent) {}
}

/// Duplicates every event into two sinks (e.g. metrics + Chrome trace).
#[derive(Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn event(&mut self, ev: &TraceEvent) {
        if A::ENABLED {
            self.0.event(ev);
        }
        if B::ENABLED {
            self.1.event(ev);
        }
    }

    fn finish(&mut self) {
        self.0.finish();
        self.1.finish();
    }
}

/// Wraps a closure as a sink (handy in tests).
pub struct FnSink<F: FnMut(&TraceEvent)>(pub F);

impl<F: FnMut(&TraceEvent)> TraceSink for FnSink<F> {
    fn event(&mut self, ev: &TraceEvent) {
        (self.0)(ev);
    }
}

/// Buffers every event in memory (tests and small programs only).
#[derive(Debug, Default)]
pub struct VecSink {
    /// Events in arrival order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants are the point
    fn null_sink_is_disabled() {
        assert!(!NullSink::ENABLED);
        assert!(VecSink::ENABLED);
        // A tee of two disabled sinks is disabled; mixed is enabled.
        assert!(!<TeeSink<NullSink, NullSink> as TraceSink>::ENABLED);
        assert!(<TeeSink<NullSink, VecSink> as TraceSink>::ENABLED);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut tee = TeeSink(VecSink::default(), VecSink::default());
        let ev = TraceEvent::ArbOccupancy { cycle: 3, entries: 5 };
        tee.event(&ev);
        tee.finish();
        assert_eq!(tee.0.events, vec![ev.clone()]);
        assert_eq!(tee.1.events, vec![ev]);
    }
}
