//! Structured trace & metrics layer for the multiscalar simulator.
//!
//! The simulator's components (sequencer, register forwarding ring,
//! processing units, ARB/caches/bus) emit [`TraceEvent`]s into a
//! [`TraceSink`] chosen at construction time:
//!
//! - [`NullSink`] — the default; `ENABLED = false` lets every
//!   instrumentation site compile away (verified by the criterion
//!   benches to be zero-cost).
//! - [`MetricsSink`] — folds the stream into a [`MetricsReport`] of
//!   counters and [`Histogram`]s (task sizes, inter-squash distance,
//!   ring latency, ARB occupancy) matching the paper's Section-5
//!   evaluation axes.
//! - [`JsonLinesSink`] — one JSON object per event; byte-deterministic
//!   across identical runs.
//! - [`ChromeTraceSink`] — Chrome trace_event JSON: per-unit task
//!   timelines, squash instants and ARB occupancy counters, loadable
//!   in Perfetto.
//! - [`TeeSink`] — fan one run into several sinks at once.
//!
//! The `mstrace` binary (in `ms-bench`) drives any named workload and
//! writes `trace.json` + `report.json` from these sinks.

pub mod chrome;
pub mod cpi;
pub mod event;
pub mod histogram;
pub mod json;
pub mod jsonl;
pub mod jsonv;
pub mod metrics;
pub mod sink;

pub use chrome::ChromeTraceSink;
pub use cpi::{CpiStack, StallBuckets, TaskCpi, UnitCpi, CPI_SCHEMA};
pub use event::{SquashKind, StallReason, TraceEvent};
pub use histogram::Histogram;
pub use jsonl::{event_to_json, JsonLinesSink};
pub use metrics::{MetricsReport, MetricsSink};
pub use sink::{FnSink, NullSink, TeeSink, TraceSink, VecSink};
