//! Chrome trace_event sink: per-unit task timelines viewable in
//! `chrome://tracing` or Perfetto (<https://ui.perfetto.dev>).
//!
//! Mapping: one simulated cycle = 1 "microsecond" of trace time; each
//! processing unit is a thread (`tid` = unit index) under one process,
//! with a synthetic `sequencer` thread for squash-wave instants. Task
//! occupancy appears as `"X"` complete events spanning assign →
//! retire/squash; ARB occupancy samples become a `"C"` counter track;
//! memory-order violations become instant markers.

use std::io::Write;

use crate::event::TraceEvent;
use crate::json;
use crate::sink::TraceSink;

/// `tid` of the synthetic sequencer thread (squash-wave instants).
const SEQ_TID: usize = 999;

struct OpenSpan {
    start: u64,
    order: u64,
    entry: u32,
}

/// Streams the event flow as Chrome trace_event JSON to a [`Write`]
/// target. Call [`TraceSink::finish`] (or drop via `into_inner`) to
/// close the JSON document.
pub struct ChromeTraceSink<W: Write> {
    writer: W,
    open: Vec<Option<OpenSpan>>,
    named_units: Vec<bool>,
    wrote_any: bool,
    finished: bool,
    last_cycle: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> ChromeTraceSink<W> {
    /// Wraps `writer` and emits the document prologue plus process
    /// metadata.
    pub fn new(writer: W) -> Self {
        let mut s = Self {
            writer,
            open: Vec::new(),
            named_units: Vec::new(),
            wrote_any: false,
            finished: false,
            last_cycle: 0,
            error: None,
        };
        s.raw("{\"traceEvents\":[");
        s.emit(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"multiscalar\"}}"
                .to_string(),
        );
        s.emit(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{SEQ_TID},\
             \"args\":{{\"name\":\"sequencer\"}}}}"
        ));
        s
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Finishes the document and returns the writer (plus any sticky
    /// error).
    pub fn into_inner(mut self) -> (W, Option<std::io::Error>) {
        self.finish();
        (self.writer, self.error)
    }

    fn raw(&mut self, s: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.writer.write_all(s.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn emit(&mut self, obj: String) {
        if self.wrote_any {
            self.raw(",\n");
        } else {
            self.raw("\n");
        }
        self.wrote_any = true;
        self.raw(&obj);
    }

    fn ensure_unit_named(&mut self, unit: usize) {
        if self.named_units.len() <= unit {
            self.named_units.resize(unit + 1, false);
        }
        if !self.named_units[unit] {
            self.named_units[unit] = true;
            self.emit(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{unit},\
                 \"args\":{{\"name\":\"unit {unit}\"}}}}"
            ));
        }
    }

    fn close_span(&mut self, unit: usize, end_cycle: u64, outcome: &str) {
        let Some(span) = self.open.get_mut(unit).and_then(Option::take) else {
            return;
        };
        let dur = end_cycle.saturating_sub(span.start);
        let name = json::string(&format!("task@{:#x}", span.entry));
        self.emit(format!(
            "{{\"name\":{name},\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,\"tid\":{unit},\
             \"ts\":{},\"dur\":{dur},\"args\":{{\"order\":{},\"entry\":{},\"end\":\"{outcome}\"}}}}",
            span.start, span.order, span.entry
        ));
    }
}

impl<W: Write> TraceSink for ChromeTraceSink<W> {
    fn event(&mut self, ev: &TraceEvent) {
        if self.finished {
            return;
        }
        self.last_cycle = self.last_cycle.max(ev.cycle());
        match *ev {
            TraceEvent::TaskAssign { cycle, order, unit, entry, .. } => {
                self.ensure_unit_named(unit);
                // A stale open span on this unit (shouldn't happen, but
                // be robust) is closed at the new assign cycle.
                self.close_span(unit, cycle, "reassigned");
                if self.open.len() <= unit {
                    self.open.resize_with(unit + 1, || None);
                }
                self.open[unit] = Some(OpenSpan { start: cycle, order, entry });
            }
            TraceEvent::TaskRetire { cycle, unit, .. } => {
                self.close_span(unit, cycle, "retire");
            }
            TraceEvent::TaskSquash { cycle, unit, cause, .. } => {
                let outcome = format!("squash:{}", cause.as_str());
                self.close_span(unit, cycle, &outcome);
            }
            TraceEvent::SquashWave { cycle, cause, depth, .. } => {
                self.emit(format!(
                    "{{\"name\":\"squash ({}) x{depth}\",\"cat\":\"squash\",\"ph\":\"i\",\
                     \"s\":\"g\",\"pid\":0,\"tid\":{SEQ_TID},\"ts\":{cycle}}}",
                    cause.as_str()
                ));
            }
            TraceEvent::ArbViolation { cycle, store_unit, violated_unit, addr } => {
                self.ensure_unit_named(violated_unit);
                self.emit(format!(
                    "{{\"name\":\"mem violation\",\"cat\":\"arb\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":0,\"tid\":{violated_unit},\"ts\":{cycle},\
                     \"args\":{{\"store_unit\":{store_unit},\"addr\":{addr}}}}}"
                ));
            }
            TraceEvent::ArbOccupancy { cycle, entries } => {
                self.emit(format!(
                    "{{\"name\":\"arb_occupancy\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\
                     \"ts\":{cycle},\"args\":{{\"entries\":{entries}}}}}"
                ));
            }
            _ => {}
        }
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Tasks still in flight at end-of-run get spans to the last
        // observed cycle so the timeline stays complete.
        for unit in 0..self.open.len() {
            let end = self.last_cycle;
            self.close_span(unit, end, "unfinished");
        }
        self.raw("\n]}\n");
        if let Err(e) = self.writer.flush() {
            self.error.get_or_insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SquashKind;

    /// Golden output for a tiny two-task program: task #0 retires on
    /// unit 0, task #1 is control-squashed on unit 1.
    #[test]
    fn golden_two_task_trace() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.event(&TraceEvent::TaskAssign {
            cycle: 0,
            order: 0,
            unit: 0,
            entry: 0x100,
            by_prediction: false,
        });
        sink.event(&TraceEvent::TaskAssign {
            cycle: 1,
            order: 1,
            unit: 1,
            entry: 0x140,
            by_prediction: true,
        });
        sink.event(&TraceEvent::TaskSquash {
            cycle: 6,
            order: 1,
            unit: 1,
            entry: 0x140,
            cause: SquashKind::Control,
        });
        sink.event(&TraceEvent::SquashWave {
            cycle: 6,
            cause: SquashKind::Control,
            depth: 1,
            redirect: Some(0x180),
        });
        sink.event(&TraceEvent::TaskRetire {
            cycle: 9,
            order: 0,
            unit: 0,
            entry: 0x100,
            instructions: 7,
        });
        let (buf, err) = sink.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        let expected = "{\"traceEvents\":[\n\
{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"multiscalar\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":999,\"args\":{\"name\":\"sequencer\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"unit 0\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"unit 1\"}},\n\
{\"name\":\"task@0x140\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1,\"dur\":5,\"args\":{\"order\":1,\"entry\":320,\"end\":\"squash:control\"}},\n\
{\"name\":\"squash (control) x1\",\"cat\":\"squash\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":999,\"ts\":6},\n\
{\"name\":\"task@0x100\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":9,\"args\":{\"order\":0,\"entry\":256,\"end\":\"retire\"}}\n\
]}\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn finish_is_idempotent_and_closes_open_spans() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.event(&TraceEvent::TaskAssign {
            cycle: 2,
            order: 0,
            unit: 0,
            entry: 0x100,
            by_prediction: false,
        });
        sink.finish();
        sink.finish();
        let (buf, err) = sink.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"end\":\"unfinished\""));
        assert_eq!(text.matches("]}").count(), 1);
        assert!(text.ends_with("\n]}\n"));
    }
}
