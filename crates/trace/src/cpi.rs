//! CPI-stack cycle accounting: where every (unit, cycle) went.
//!
//! The paper's evaluation hinges on *cycle attribution* — Section 3
//! decomposes execution into useful computation and the various ways a
//! unit can fail to issue (waiting on intra/inter-task values, busy
//! functional units, the ARB, the head of the circular queue). A
//! [`CpiStack`] carries that decomposition with a hard conservation
//! invariant:
//!
//! ```text
//! issued_cycles + Σ stall_cycles[r] == cycles × units
//! ```
//!
//! Every unit-cycle of a run is charged to exactly one bucket: `issued`
//! (the unit issued at least one instruction that cycle) or one
//! [`StallReason`]. Units holding no task are charged [`StallReason::NoTask`]
//! (sequencer had nothing for them) or [`StallReason::SquashRecovery`]
//! (emptied by a squash wave and not yet re-assigned), so idle cycles
//! are attributed, not dropped.
//!
//! The stack is accumulated per-unit and per-task-boundary: each
//! retired task carries the unit-cycles charged between its assignment
//! and retirement (squashed work stays in the per-unit totals but has
//! no retired-task row). Collection is driven by `ms-core`'s
//! `CycleAccountant` hooks and is zero-cost when disabled, mirroring
//! the `NullSink`/`NoFaults` pattern.
//!
//! Charges arrive one cycle at a time from the ticked loop *or* in
//! bulk from the event-driven skip-ahead scheduler (`charge_stall_n`
//! over a provably quiet span — DESIGN.md §13). The two must produce
//! identical stacks; `tests/cpi_conservation.rs` asserts it for every
//! suite workload in both modes.

use crate::event::StallReason;
use crate::json;
use std::fmt;

/// Schema identifier stamped into [`CpiStack::to_json`] output.
pub const CPI_SCHEMA: &str = "multiscalar-cpi/v1";

/// Per-reason stall counters, indexed by [`StallReason::index`].
pub type StallBuckets = [u64; StallReason::COUNT];

/// Cycle attribution for one processing unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitCpi {
    /// Cycles in which the unit issued at least one instruction.
    pub issued_cycles: u64,
    /// Cycles charged to each stall reason.
    pub stall_cycles: StallBuckets,
}

impl UnitCpi {
    /// Total unit-cycles accounted for this unit.
    pub fn total(&self) -> u64 {
        self.issued_cycles + self.stall_cycles.iter().sum::<u64>()
    }
}

/// Cycle attribution for one retired task (a task-boundary slice of
/// its unit's stack, from assignment to retirement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskCpi {
    /// Dispatch order (monotone task id).
    pub order: u64,
    /// Unit the task ran on.
    pub unit: usize,
    /// Task entry address.
    pub entry: u32,
    /// Instructions the task committed.
    pub instructions: u64,
    /// Cycles in which the unit issued for this task.
    pub issued_cycles: u64,
    /// Cycles the task's unit stalled, by reason.
    pub stall_cycles: StallBuckets,
}

/// A complete CPI stack for one run: the conservation-checked
/// decomposition of `cycles × units` into issued and stalled
/// unit-cycles, with per-unit and per-retired-task detail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Number of processing units.
    pub units: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed instructions (for the CPI denominator).
    pub instructions: u64,
    /// Unit-cycles in which at least one instruction issued.
    pub issued_cycles: u64,
    /// Unit-cycles charged to each stall reason (summed over units).
    pub stall_cycles: StallBuckets,
    /// Per-unit breakdown; `per_unit.len() == units`.
    pub per_unit: Vec<UnitCpi>,
    /// Per-retired-task breakdown, in retirement order.
    pub per_task: Vec<TaskCpi>,
}

impl CpiStack {
    /// The conservation target: every unit-cycle of the run.
    pub fn total_unit_cycles(&self) -> u64 {
        self.cycles * self.units as u64
    }

    /// Unit-cycles actually charged to some bucket.
    pub fn accounted_unit_cycles(&self) -> u64 {
        self.issued_cycles + self.stall_cycles.iter().sum::<u64>()
    }

    /// Whether the hard invariant `issued + Σ stalls == cycles × units`
    /// holds, both globally and per unit.
    pub fn conservation_holds(&self) -> bool {
        self.accounted_unit_cycles() == self.total_unit_cycles()
            && self.per_unit.len() == self.units
            && self.per_unit.iter().map(UnitCpi::total).sum::<u64>() == self.total_unit_cycles()
            && (0..StallReason::COUNT).all(|i| {
                self.per_unit.iter().map(|u| u.stall_cycles[i]).sum::<u64>() == self.stall_cycles[i]
            })
            && self.per_unit.iter().map(|u| u.issued_cycles).sum::<u64>() == self.issued_cycles
    }

    /// Cycles per committed instruction (`None` if nothing committed).
    pub fn cpi(&self) -> Option<f64> {
        (self.instructions > 0).then(|| self.cycles as f64 / self.instructions as f64)
    }

    /// The contribution of one bucket to the aggregate CPI: the
    /// bucket's unit-cycles divided by `units × instructions`, so the
    /// per-bucket contributions sum to [`CpiStack::cpi`].
    pub fn cpi_component(&self, unit_cycles: u64) -> Option<f64> {
        (self.instructions > 0 && self.units > 0)
            .then(|| unit_cycles as f64 / (self.units as f64 * self.instructions as f64))
    }

    /// Serializes the stack as a schema-versioned JSON object with a
    /// fixed field order (byte-deterministic across identical runs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let field = |out: &mut String, name: &str, val: &str| {
            if out.len() > 1 {
                out.push(',');
            }
            json::push_str(out, name);
            out.push(':');
            out.push_str(val);
        };
        let buckets = |issued: u64, stalls: &StallBuckets| {
            let mut b = String::from("{\"issued\":");
            b.push_str(&issued.to_string());
            for r in StallReason::ALL {
                b.push(',');
                json::push_str(&mut b, r.as_str());
                b.push(':');
                b.push_str(&stalls[r.index()].to_string());
            }
            b.push('}');
            b
        };
        field(&mut out, "schema", &json::string(CPI_SCHEMA));
        field(&mut out, "units", &self.units.to_string());
        field(&mut out, "cycles", &self.cycles.to_string());
        field(&mut out, "instructions", &self.instructions.to_string());
        field(&mut out, "unit_cycles", &self.total_unit_cycles().to_string());
        field(&mut out, "conserved", &self.conservation_holds().to_string());
        field(&mut out, "cpi", &self.cpi().map(json::number).unwrap_or_else(|| "null".into()));
        field(&mut out, "buckets", &buckets(self.issued_cycles, &self.stall_cycles));
        {
            let mut per_unit = String::from("[");
            for (i, u) in self.per_unit.iter().enumerate() {
                if i > 0 {
                    per_unit.push(',');
                }
                per_unit.push_str(&buckets(u.issued_cycles, &u.stall_cycles));
            }
            per_unit.push(']');
            field(&mut out, "per_unit", &per_unit);
        }
        {
            let mut per_task = String::from("[");
            for (i, t) in self.per_task.iter().enumerate() {
                if i > 0 {
                    per_task.push(',');
                }
                per_task.push_str(&format!(
                    "{{\"order\":{},\"unit\":{},\"entry\":{},\"instructions\":{},\"buckets\":{}}}",
                    t.order,
                    t.unit,
                    t.entry,
                    t.instructions,
                    buckets(t.issued_cycles, &t.stall_cycles)
                ));
            }
            per_task.push(']');
            field(&mut out, "per_task", &per_task);
        }
        out.push('}');
        out
    }
}

/// Text table: one row per bucket with unit-cycles, share of all
/// unit-cycles, and the bucket's CPI contribution.
impl fmt::Display for CpiStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_unit_cycles();
        let pct = |v: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * v as f64 / total as f64
            }
        };
        writeln!(
            f,
            "cpi stack: {} units x {} cycles = {} unit-cycles, {} instructions",
            self.units, self.cycles, total, self.instructions
        )?;
        if let Some(cpi) = self.cpi() {
            writeln!(f, "aggregate CPI {cpi:.4}")?;
        }
        let row = |f: &mut fmt::Formatter<'_>, name: &str, v: u64| {
            if v == 0 && name != "issued" {
                return Ok(());
            }
            let comp = self
                .cpi_component(v)
                .map(|c| format!("{c:8.4}"))
                .unwrap_or_else(|| "     n/a".into());
            writeln!(f, "  {name:<16} {v:>12}  {:6.2}%  {comp}", pct(v))
        };
        row(f, "issued", self.issued_cycles)?;
        for r in StallReason::ALL {
            row(f, r.as_str(), self.stall_cycles[r.index()])?;
        }
        if !self.conservation_holds() {
            writeln!(
                f,
                "  CONSERVATION VIOLATED: accounted {} of {}",
                self.accounted_unit_cycles(),
                total
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CpiStack {
        let mut s = CpiStack {
            units: 2,
            cycles: 10,
            instructions: 8,
            issued_cycles: 12,
            ..CpiStack::default()
        };
        s.stall_cycles[StallReason::RemoteDep.index()] = 5;
        s.stall_cycles[StallReason::NoTask.index()] = 3;
        s.per_unit = vec![
            UnitCpi {
                issued_cycles: 7,
                stall_cycles: {
                    let mut b = StallBuckets::default();
                    b[StallReason::RemoteDep.index()] = 3;
                    b
                },
            },
            UnitCpi {
                issued_cycles: 5,
                stall_cycles: {
                    let mut b = StallBuckets::default();
                    b[StallReason::RemoteDep.index()] = 2;
                    b[StallReason::NoTask.index()] = 3;
                    b
                },
            },
        ];
        s
    }

    #[test]
    fn conservation_checks_global_and_per_unit() {
        let s = sample();
        assert_eq!(s.total_unit_cycles(), 20);
        assert_eq!(s.accounted_unit_cycles(), 20);
        assert!(s.conservation_holds());

        let mut broken = s.clone();
        broken.issued_cycles += 1;
        assert!(!broken.conservation_holds());

        // Per-unit rows must also sum to the totals.
        let mut skewed = s;
        skewed.per_unit[0].issued_cycles += 1;
        skewed.per_unit[0].stall_cycles[StallReason::RemoteDep.index()] -= 1;
        assert!(!skewed.conservation_holds());
    }

    #[test]
    fn json_is_schema_versioned_and_deterministic() {
        let s = sample();
        let j = s.to_json();
        assert!(j.starts_with("{\"schema\":\"multiscalar-cpi/v1\","));
        assert!(j.contains("\"conserved\":true"));
        assert!(j.contains("\"buckets\":{\"issued\":12,\"fetch_empty\":0,"));
        assert!(j.contains("\"no_task\":3"));
        assert_eq!(j, sample().to_json());
    }

    #[test]
    fn display_renders_nonzero_rows() {
        let s = sample();
        let text = s.to_string();
        assert!(text.contains("2 units x 10 cycles = 20 unit-cycles"));
        assert!(text.contains("issued"));
        assert!(text.contains("remote_dep"));
        assert!(!text.contains("fu_busy"), "zero rows are suppressed:\n{text}");
    }

    #[test]
    fn cpi_components_sum_to_cpi() {
        let s = sample();
        let mut sum = s.cpi_component(s.issued_cycles).unwrap();
        for v in s.stall_cycles {
            sum += s.cpi_component(v).unwrap();
        }
        let cpi = s.cpi().unwrap();
        assert!((sum - cpi).abs() < 1e-9, "{sum} vs {cpi}");
    }
}
