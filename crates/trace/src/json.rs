//! Hand-rolled JSON output helpers (the workspace has no serde).
//!
//! Everything this crate emits is machine-generated with a fixed field
//! order, so byte-for-byte determinism across identical runs comes for
//! free — a property the determinism tests rely on.

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON string literal of `s`.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str(&mut out, s);
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot represent otherwise).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{}` gives Rust's shortest round-trip form; force a fraction so
        // the token is unambiguously a float for typed readers.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("\u{1}"), r#""\u0001""#);
        assert_eq!(string("plain"), r#""plain""#);
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
