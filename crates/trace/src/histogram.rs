//! Power-of-two bucketed histograms for run metrics.

use crate::json;

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket 0 holds the value 0; bucket `i` (for `i >= 1`) holds values
/// in `[2^(i-1), 2^i - 1]`. This keeps the histogram compact (at most
/// 65 buckets) while resolving both short and very long tails — task
/// lengths and inter-squash distances span several orders of magnitude
/// across the paper's workloads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Index of the bucket holding `v`.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
pub fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += 1;
        // Saturate rather than wrap on pathological inputs; the mean is
        // then a lower bound, which is the honest failure mode.
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Count in bucket `i` (0 beyond the populated range).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Populated buckets as `(lo, hi, count)`, skipping empty ones.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = bucket_range(i);
            (lo, hi, c)
        })
    }

    /// JSON object: `{"count":..,"sum":..,"mean":..,"min":..,"max":..,
    /// "buckets":[{"lo":..,"hi":..,"count":..},..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"count\":");
        out.push_str(&self.total.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum.to_string());
        out.push_str(",\"mean\":");
        match self.mean() {
            Some(m) => out.push_str(&json::number(m)),
            None => out.push_str("null"),
        }
        out.push_str(",\"min\":");
        match self.min() {
            Some(v) => out.push_str(&v.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"max\":");
        match self.max() {
            Some(v) => out.push_str(&v.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"buckets\":[");
        for (i, (lo, hi, c)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}"));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's range round-trips through bucket_of.
        for i in 0..=64 {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.mean(), Some(2.6));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(8));
        assert_eq!(h.bucket_count(0), 1); // {0}
        assert_eq!(h.bucket_count(1), 2); // {1,1}
        assert_eq!(h.bucket_count(2), 1); // {3}
        assert_eq!(h.bucket_count(3), 0);
        assert_eq!(h.bucket_count(4), 1); // {8}
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 0, 1), (1, 1, 2), (2, 3, 1), (8, 15, 1)]);
    }

    #[test]
    fn empty_histogram_json() {
        let h = Histogram::new();
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"sum\":0,\"mean\":null,\"min\":null,\"max\":null,\"buckets\":[]}"
        );
    }

    #[test]
    fn extreme_values_do_not_overflow_buckets() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 63);
        assert_eq!(h.bucket_count(64), 2);
        assert_eq!(h.max(), Some(u64::MAX));
    }
}
