//! Fault-injection hooks.
//!
//! Chaos testing (the `ms-chaos` crate) perturbs the *microarchitecture*
//! — predictions, ring timing, ARB capacity, squash decisions — while the
//! sequential-semantics oracle checks that the *architectural* result is
//! unchanged (the paper's central invariant: speculation machinery must be
//! functionally invisible).
//!
//! The hook surface follows the [`ms_trace::TraceSink`] pattern: the
//! processor is generic over a [`FaultInjector`], every call site is
//! guarded by `if F::ENABLED`, and the default [`NoFaults`] injector has
//! `ENABLED = false`, so in ordinary builds the hooks monomorphize away
//! entirely — fault injection is provably zero-cost when disabled.
//!
//! Injectors may only perturb quantities the machine is already built to
//! recover from; see `DESIGN.md` §9 for what a plan may and may not touch.

/// A source of deterministic microarchitectural perturbations.
///
/// All hooks default to "no perturbation", so an injector only overrides
/// the hooks it uses. Implementations must be deterministic functions of
/// their inputs (plus any internal seed) — the chaos oracle re-runs plans
/// by seed and expects byte-identical behaviour.
pub trait FaultInjector {
    /// Whether the processor's hook sites are live. [`NoFaults`] sets
    /// this to `false`, compiling every hook out.
    const ENABLED: bool = true;

    /// Called when the sequencer predicts the successor of `task_entry`
    /// (assignment order `order`, i.e. the order the *new* task would
    /// get). Return the target index to use instead; out-of-range values
    /// are clamped by the caller. Returning `predicted` injects nothing.
    fn override_prediction(
        &mut self,
        _now: u64,
        _order: u64,
        _task_entry: u32,
        _ntargets: usize,
        predicted: usize,
    ) -> usize {
        predicted
    }

    /// Extra hop delay (in cycles) for a message leaving `unit` at
    /// `now`. Zero injects nothing.
    fn ring_extra_delay(&mut self, _now: u64, _unit: usize) -> u64 {
        0
    }

    /// Temporary cap on ring messages-per-hop-per-cycle (back-pressure
    /// window). `None` injects nothing; caps are clamped to at least 1 so
    /// forward progress is preserved.
    fn ring_width_cap(&mut self, _now: u64) -> Option<usize> {
        None
    }

    /// Temporary cap on ARB entries per bank (capacity-pressure window).
    /// `None` injects nothing; caps are clamped to at least 1, and the
    /// head stage may always allocate regardless, so the Stall overflow
    /// policy cannot deadlock.
    fn arb_capacity_cap(&mut self, _now: u64) -> Option<usize> {
        None
    }

    /// Request a spurious squash of the task at position head+`k` this
    /// cycle (`active_len` tasks are in flight). `None` injects nothing.
    /// The caller ignores requests with `k == 0` (the head is never
    /// squashed — paper Section 2.3) or `k >= active_len`.
    fn spurious_squash(&mut self, _now: u64, _active_len: usize) -> Option<usize> {
        None
    }
}

/// The no-op injector: every hook compiles away (`ENABLED = false`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    const ENABLED: bool = false;
}

/// Forwarding impl so `&mut I` can be handed to a processor.
impl<I: FaultInjector> FaultInjector for &mut I {
    const ENABLED: bool = I::ENABLED;

    fn override_prediction(
        &mut self,
        now: u64,
        order: u64,
        task_entry: u32,
        ntargets: usize,
        predicted: usize,
    ) -> usize {
        (**self).override_prediction(now, order, task_entry, ntargets, predicted)
    }

    fn ring_extra_delay(&mut self, now: u64, unit: usize) -> u64 {
        (**self).ring_extra_delay(now, unit)
    }

    fn ring_width_cap(&mut self, now: u64) -> Option<usize> {
        (**self).ring_width_cap(now)
    }

    fn arb_capacity_cap(&mut self, now: u64) -> Option<usize> {
        (**self).arb_capacity_cap(now)
    }

    fn spurious_squash(&mut self, now: u64, active_len: usize) -> Option<usize> {
        (**self).spurious_squash(now, active_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_disabled_and_inert() {
        const { assert!(!NoFaults::ENABLED) };
        let mut f = NoFaults;
        assert_eq!(f.override_prediction(0, 0, 0x100, 3, 1), 1);
        assert_eq!(f.ring_extra_delay(0, 0), 0);
        assert_eq!(f.ring_width_cap(0), None);
        assert_eq!(f.arb_capacity_cap(0), None);
        assert_eq!(f.spurious_squash(0, 4), None);
    }
}
