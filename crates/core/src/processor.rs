//! The multiscalar processor.
//!
//! Owns the circular queue of processing units, the sequencer (task
//! prediction, descriptor fetch, assignment), the register-forwarding
//! ring, the ARB and the shared memory system; orchestrates one cycle as:
//!
//! 1. ring hop (messages sent last cycle arrive),
//! 2. delivery/propagation of arrivals,
//! 3. unit execution (head → tail, so same-cycle memory references are
//!    processed in task order),
//! 4. collection of new ring sends,
//! 5. squash processing — control mispredictions ("the exit point of the
//!    immediately preceding task is known", Section 3.1.2) and ARB memory
//!    violations; squashing a task squashes all its successors,
//! 6. in-order retirement at the head (ARB drain to the data cache),
//! 7. task assignment at the tail (predict successor, fetch descriptor,
//!    install the predecessor's forwarded register view).

use crate::ablation::{ArbFullPolicy, PredictorKind};
use crate::acct::{CycleAccountant, NoAccounting};
use crate::config::SimConfig;
use crate::diag::{DiagnosticSnapshot, HeadDiag, UnitDiag};
use crate::error::SimError;
use crate::flight::FlightRecorder;
use crate::inject::{FaultInjector, NoFaults};
use crate::ring::{Ring, RingMsg};
use crate::stats::RunStats;
use ms_isa::{
    PredecodedProgram, Program, Reg, RegMask, TargetKind, TaskDescriptor, NUM_REGS, STACK_TOP,
};
use ms_memsys::{Arb, DataBanks, MemBus, Memory};
use ms_pipeline::{ExitKind, MemPorts, ProcessingUnit};
use ms_predictor::{DescriptorCache, ReturnAddressStack, TaskPredictor};
use ms_trace::{NullSink, SquashKind, StallReason, TraceEvent, TraceSink};
use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
struct TaskRecord {
    order: u64,
    unit: usize,
    entry: u32,
    /// Entered via sequencer prediction (vs. known actual successor).
    by_prediction: bool,
    ras_snap: (usize, usize),
    /// Set when the task's stop resolves.
    exit: Option<ExitKind>,
    /// The Return-target RAS pop for this task's successor already
    /// happened (at prediction time).
    ras_popped: bool,
    /// Successor check + predictor training performed.
    validated: bool,
    /// The speculative history shift made when this task was chosen:
    /// `(predecessor entry, pre-shift history, chosen index)`.
    hist: Option<(u32, u16, usize)>,
    /// Cycle at which the task was assigned (diagnostic snapshots).
    assigned_at: u64,
    /// The task's create mask, kept for stale-message detection on ring
    /// delivery (a message must not skip past a producer of its register).
    create: RegMask,
}

/// What the sequencer will assign next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    /// Derive from the last task (predict, or use its resolved exit).
    Unknown,
    /// A concrete entry to assign.
    Entry {
        /// Task entry address.
        pc: u32,
        /// Whether the choice came from prediction (counted for accuracy).
        by_prediction: bool,
        /// `(predecessor entry, chosen target index)` — shifted into the
        /// predictor history (speculatively) when the task is assigned.
        choice: Option<(u32, usize)>,
    },
    /// The program is (speculatively or definitely) over.
    Stop,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SquashCause {
    Control,
    Memory,
    ArbFull,
    /// Spurious squash injected by a fault plan (chaos testing).
    Chaos,
}

impl SquashCause {
    fn kind(self) -> SquashKind {
        match self {
            SquashCause::Control => SquashKind::Control,
            SquashCause::Memory => SquashKind::Memory,
            SquashCause::ArbFull => SquashKind::ArbFull,
            SquashCause::Chaos => SquashKind::Chaos,
        }
    }
}

/// Cycle period of the ARB occupancy samples emitted to the trace sink.
const ARB_OCCUPANCY_SAMPLE_PERIOD: u64 = 16;

/// The multiscalar processor simulator.
///
/// ```no_run
/// use ms_asm::{assemble, AsmMode};
/// use multiscalar::{Processor, SimConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = std::fs::read_to_string("program.s")?;
/// let prog = assemble(&src, AsmMode::Multiscalar)?;
/// let mut p = Processor::new(prog, SimConfig::multiscalar(8))?;
/// let stats = p.run()?;
/// println!("IPC {:.2}", stats.ipc());
/// # Ok(())
/// # }
/// ```
pub struct Processor<
    S: TraceSink = NullSink,
    F: FaultInjector = NoFaults,
    A: CycleAccountant = NoAccounting,
> {
    cfg: SimConfig,
    prog: PredecodedProgram,
    units: Vec<ProcessingUnit>,
    mem: Memory,
    bus: MemBus,
    banks: DataBanks,
    arb: Arb,
    ring: Ring,
    predictor: TaskPredictor,
    ras: ReturnAddressStack,
    desc_cache: DescriptorCache,

    active: VecDeque<TaskRecord>,
    next_unit: usize,
    next_order: u64,
    /// Per register: 1 + the dispatch order of the latest *retired* task
    /// whose create mask contains it (0 = none yet). A ring message is
    /// architecturally stale once a later producer has retired; a
    /// resident producer kills passing messages itself (create-mask kill
    /// in `receive`), but a producer that has left its unit cannot, so
    /// delivery checks this instead. Without it, a long-delayed message
    /// can outlive the producer's residency and deliver a stale value to
    /// a re-assigned unit.
    retired_creates: [u64; NUM_REGS],
    pending: Pending,
    seq_ready_at: u64,
    last_retired_unit: Option<usize>,
    boot_vals: [u64; NUM_REGS],
    halted: bool,
    now: u64,
    /// Cycle of the most recent retirement (0 before any); feeds the
    /// forward-progress watchdog and diagnostic snapshots.
    last_retire_cycle: u64,
    stats: RunStats,
    retirement_log: Vec<Retirement>,
    last_outcome: HashMap<u32, usize>,

    // Per-cycle scratch buffers, reused across `step` calls so the hot
    // loop allocates nothing. Each is taken (`std::mem::take`), used,
    // and put back within one `step`.
    scratch_arrivals: Vec<(usize, RingMsg)>,
    scratch_violations: Vec<usize>,
    scratch_exits: Vec<(usize, ExitKind)>,
    scratch_arb_stalled: Vec<usize>,
    scratch_sends: Vec<(Reg, u64)>,

    sink: S,
    /// Fault injector. With [`NoFaults`] (the default) every hook site
    /// compiles away, exactly like [`NullSink`] tracing.
    inject: F,
    /// Cycle accountant. With [`NoAccounting`] (the default) every charge
    /// site compiles away, exactly like [`NullSink`] tracing; with a live
    /// accountant every (unit, cycle) is charged to exactly one CPI-stack
    /// bucket and [`RunStats::cpi`] is populated.
    acct: A,
    /// Per unit: the last task on this unit was squashed and no new task
    /// has been assigned yet, so its idle cycles are squash *recovery*
    /// (charged to [`StallReason::SquashRecovery`]) rather than ordinary
    /// [`StallReason::NoTask`] idleness. Only maintained when accounting
    /// is live.
    recovering: Vec<bool>,
    /// Per-cycle scratch: which units were charged by the execute loop
    /// this cycle (the rest get an idle-bucket charge). Only used when
    /// accounting is live.
    scratch_occupied: Vec<bool>,
    /// Skip-ahead scratch: `(unit, reason)` per active unit whose quiet
    /// span was proven this step (reused so `try_skip` allocates
    /// nothing).
    scratch_quiet: Vec<(usize, StallReason)>,
    /// Whether the last `step()` issued at least one instruction on any
    /// unit. Gates the skip-ahead probe: a quiet span can only begin
    /// after a zero-issue cycle, so probing busy cycles would be pure
    /// overhead on the hot path.
    step_issued: bool,
    /// Host-side skip-ahead telemetry: (probes attempted, spans taken,
    /// cycles skipped). Deliberately *not* part of [`RunStats`] — the
    /// two stepping modes must stay byte-identical there.
    skip_telemetry: (u64, u64, u64),
    /// Always-on bounded flight recorder: periodic diagnostic snapshots,
    /// attached to [`SimError::Timeout`]/[`SimError::NoProgress`].
    flight: FlightRecorder,
    /// Legacy human-readable event logging to stderr (the old `MS_TRACE`
    /// behaviour), resolved once at construction instead of per cycle.
    log_events: bool,
}

/// One retired task, as recorded in [`Processor::retirement_log`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Retirement {
    /// Cycle at which the task retired.
    pub cycle: u64,
    /// Task entry address.
    pub entry: u32,
    /// Processing unit that executed it.
    pub unit: usize,
    /// Instructions the task committed.
    pub instructions: u64,
}

impl Processor {
    /// Builds a processor for `prog` (a multiscalar-annotated binary).
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] if the program has no text or no
    /// task descriptor at its entry point.
    pub fn new(prog: Program, cfg: SimConfig) -> Result<Processor, SimError> {
        Processor::with_sink(prog, cfg, NullSink)
    }
}

impl<S: TraceSink> Processor<S> {
    /// Builds a processor that reports [`TraceEvent`]s to `sink` as it
    /// runs. With [`NullSink`] (what [`Processor::new`] uses) the
    /// instrumentation monomorphizes away entirely.
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] if the program has no text or no
    /// task descriptor at its entry point.
    pub fn with_sink(prog: Program, cfg: SimConfig, sink: S) -> Result<Processor<S>, SimError> {
        Processor::with_sink_and_injector(prog, cfg, sink, NoFaults)
    }
}

impl<F: FaultInjector> Processor<NullSink, F> {
    /// Builds an untraced processor whose microarchitecture is perturbed
    /// by `injector` (chaos testing). Architectural results must be
    /// unaffected — see [`FaultInjector`].
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] if the program has no text or no
    /// task descriptor at its entry point.
    pub fn with_injector(
        prog: Program,
        cfg: SimConfig,
        injector: F,
    ) -> Result<Processor<NullSink, F>, SimError> {
        Processor::with_sink_and_injector(prog, cfg, NullSink, injector)
    }
}

impl<A: CycleAccountant> Processor<NullSink, NoFaults, A> {
    /// Builds an untraced, unperturbed processor whose cycles are charged
    /// to `acct` — the entry point for CPI profiling (see
    /// [`crate::CpiAccountant`]).
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] if the program has no text or no
    /// task descriptor at its entry point.
    pub fn with_accountant(
        prog: Program,
        cfg: SimConfig,
        acct: A,
    ) -> Result<Processor<NullSink, NoFaults, A>, SimError> {
        Processor::with_parts(prog, cfg, NullSink, NoFaults, acct)
    }
}

impl<S: TraceSink, F: FaultInjector> Processor<S, F> {
    /// Builds a processor with both a trace sink and a fault injector.
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] if the program has no text or no
    /// task descriptor at its entry point.
    pub fn with_sink_and_injector(
        prog: Program,
        cfg: SimConfig,
        sink: S,
        injector: F,
    ) -> Result<Processor<S, F>, SimError> {
        Processor::with_parts(prog, cfg, sink, injector, NoAccounting)
    }
}

impl<S: TraceSink, F: FaultInjector, A: CycleAccountant> Processor<S, F, A> {
    /// Builds a processor from all three instrumentation hooks: a trace
    /// sink, a fault injector and a cycle accountant. Each defaults to a
    /// no-op ([`NullSink`]/[`NoFaults`]/[`NoAccounting`]) that
    /// monomorphizes away.
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] if the program has no text or no
    /// task descriptor at its entry point.
    pub fn with_parts(
        prog: Program,
        cfg: SimConfig,
        sink: S,
        injector: F,
        mut acct: A,
    ) -> Result<Processor<S, F, A>, SimError> {
        if prog.text.is_empty() {
            return Err(SimError::BadProgram("empty text segment".into()));
        }
        if prog.task_at(prog.entry).is_none() {
            return Err(SimError::BadProgram(format!(
                "no task descriptor at entry {:#x}",
                prog.entry
            )));
        }
        let mut mem = Memory::new();
        for seg in &prog.data {
            mem.write_slice(seg.base, &seg.bytes);
        }
        let mut boot_vals = [0u64; NUM_REGS];
        boot_vals[Reg::SP.index()] = STACK_TOP as u64;
        let units: Vec<ProcessingUnit> = (0..cfg.units)
            .map(|i| {
                let mut u = ProcessingUnit::new(i, cfg.unit_config());
                // Unit parking shares the skip-ahead gate: off in ticked
                // mode, under a live trace sink (kept conservative), and
                // under fault injection (cycle-indexed perturbations).
                // With one unit the whole-machine skip in `run` already
                // covers every quiet span, so parking would only pay the
                // probe twice.
                u.set_parking(cfg.units > 1 && cfg.skip_ahead && !S::ENABLED && !F::ENABLED);
                u
            })
            .collect();
        let entry = prog.entry;
        let prog = PredecodedProgram::new(prog);
        if A::ENABLED {
            acct.begin(cfg.units);
        }
        Ok(Processor {
            units,
            mem,
            bus: MemBus::new(cfg.bus),
            banks: DataBanks::new(cfg.banks),
            arb: Arb::new(cfg.units, cfg.banks.nbanks, cfg.arb_capacity),
            ring: Ring::new(
                cfg.units,
                cfg.ring_width.unwrap_or(cfg.issue_width),
                cfg.ring_hop_latency,
            ),
            predictor: TaskPredictor::new(),
            ras: ReturnAddressStack::new(64),
            desc_cache: DescriptorCache::new(1024),
            active: VecDeque::new(),
            next_unit: 0,
            next_order: 0,
            retired_creates: [0; NUM_REGS],
            pending: Pending::Entry { pc: entry, by_prediction: false, choice: None },
            seq_ready_at: 0,
            last_retired_unit: None,
            boot_vals,
            halted: false,
            now: 0,
            last_retire_cycle: 0,
            stats: RunStats::default(),
            retirement_log: Vec::new(),
            last_outcome: HashMap::new(),
            scratch_arrivals: Vec::new(),
            scratch_violations: Vec::new(),
            scratch_exits: Vec::new(),
            scratch_arb_stalled: Vec::new(),
            scratch_sends: Vec::new(),
            sink,
            inject: injector,
            acct,
            recovering: vec![false; cfg.units],
            scratch_occupied: Vec::new(),
            scratch_quiet: Vec::new(),
            step_issued: false,
            skip_telemetry: (0, 0, 0),
            flight: FlightRecorder::new(),
            log_events: std::env::var_os("MS_TRACE").is_some(),
            prog,
            cfg,
        })
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the attached trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Finishes the trace sink and returns it, consuming the processor.
    pub fn into_sink(mut self) -> S {
        self.sink.finish();
        self.sink
    }

    /// Writes raw bytes into simulated memory (workload inputs), before or
    /// between runs.
    pub fn write_mem(&mut self, addr: u32, bytes: &[u8]) {
        self.mem.write_slice(addr, bytes);
    }

    /// The architectural memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.prog.program()
    }

    /// Architectural register values as of the last retired task
    /// (`None` before any retirement). Only registers that are live
    /// across task boundaries are meaningful — dead values need not be
    /// communicated (Section 2.2).
    pub fn final_regs(&self) -> Option<[u64; NUM_REGS]> {
        self.last_retired_unit.map(|u| *self.units[u].fwd_view().0)
    }

    /// Current cycle.
    pub fn cycles(&self) -> u64 {
        self.now
    }

    /// Every retired task, in retirement (sequential) order — the record
    /// of the sequencer's walk through the program CFG.
    pub fn retirement_log(&self) -> &[Retirement] {
        &self.retirement_log
    }

    /// Runs to completion.
    ///
    /// With [`SimConfig::skip_ahead`] on (the default) and no live trace
    /// sink or fault injector, the loop skips over provably quiet spans
    /// — the results are byte-identical to the ticked loop, just
    /// cheaper to compute (see DESIGN.md §13).
    ///
    /// ```
    /// use ms_asm::{assemble, AsmMode};
    /// use multiscalar::{Processor, SimConfig};
    ///
    /// let src = "
    /// main:
    /// .task targets=halt create=
    /// A:
    ///     addiu $2, $0, 41
    ///     addiu $2, $2, 1
    ///     halt
    /// ";
    /// let prog = assemble(src, AsmMode::Multiscalar).unwrap();
    /// let mut p = Processor::new(prog, SimConfig::multiscalar(4)).unwrap();
    /// let stats = p.run().unwrap();
    /// assert_eq!(stats.instructions, 3);
    /// assert_eq!(stats.tasks_retired, 1);
    /// ```
    ///
    /// # Errors
    /// Propagates unit faults, annotation errors, the cycle bound
    /// ([`SimError::Timeout`]) and the forward-progress watchdog
    /// ([`SimError::NoProgress`]); the latter two carry a
    /// [`DiagnosticSnapshot`] of the stuck machine.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        // Skip-ahead is compile-time disabled under a live trace sink
        // (per-cycle events must keep firing every cycle) or fault
        // injector (chaos plans are cycle-indexed; see DESIGN.md §13).
        let skip = self.cfg.skip_ahead && !S::ENABLED && !F::ENABLED;
        while !(self.halted && self.active.is_empty()) {
            // Always-on flight recorder: a bounded ring of periodic
            // snapshots, shipped with any timeout/watchdog failure so the
            // lead-up to the hang is visible, not just its endpoint.
            if self.flight.due(self.now) {
                let snap = self.snapshot();
                self.flight.record(self.now, snap);
            }
            if self.now >= self.cfg.max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.cfg.max_cycles,
                    snapshot: Some(Box::new(self.snapshot())),
                    history: self.flight.history(),
                });
            }
            if let Some(window) = self.cfg.watchdog {
                if self.now - self.last_retire_cycle >= window {
                    return Err(SimError::NoProgress {
                        window,
                        snapshot: Box::new(self.snapshot()),
                        history: self.flight.history(),
                    });
                }
            }
            self.step()?;
            // Probe only after a zero-issue cycle: a quiet span cannot
            // begin while instructions are still flowing, and the probe
            // itself must stay off the busy hot path.
            if skip && !self.step_issued {
                self.try_skip();
            }
        }
        self.finalize_stats();
        Ok(self.stats.clone())
    }

    /// Captures the current microarchitectural state for diagnosis: the
    /// payload of [`SimError::Timeout`], [`SimError::NoProgress`] and
    /// [`SimError::Internal`], also callable directly from debug tools.
    pub fn snapshot(&self) -> DiagnosticSnapshot {
        let arb_stats = self.arb.stats();
        DiagnosticSnapshot {
            cycle: self.now,
            last_retire_cycle: self.last_retire_cycle,
            tasks_retired: self.stats.tasks_retired,
            halted: self.halted,
            pending: format!("{:?}", self.pending),
            head: self.active.front().map(|r| HeadDiag {
                order: r.order,
                unit: r.unit,
                entry: r.entry,
                age: self.now.saturating_sub(r.assigned_at),
                validated: r.validated,
                exit_resolved: r.exit.is_some(),
            }),
            units: (0..self.cfg.units)
                .map(|u| {
                    let rec = self.active.iter().find(|r| r.unit == u);
                    UnitDiag {
                        unit: u,
                        active: self.units[u].is_active(),
                        order: rec.map(|r| r.order),
                        entry: rec.map(|r| r.entry),
                        complete: self.units[u].is_complete(self.now),
                        awaiting: self.units[u].awaiting_regs().len(),
                        stall: self.units[u].stall_reason(),
                        stall_hist: *self.units[u].stall_histogram(),
                    }
                })
                .collect(),
            ring_in_flight: self.ring.in_flight(),
            ring_queues: self.ring.occupancies(),
            arb_bank_occupancy: (0..self.cfg.banks.nbanks).map(|b| self.arb.occupancy(b)).collect(),
            arb_full_events: arb_stats.full_events,
            arb_violations: arb_stats.violations,
        }
    }

    /// Builds a [`SimError::Internal`] carrying the current snapshot.
    fn internal_error(&self, what: &str) -> SimError {
        SimError::Internal { what: what.to_string(), snapshot: Box::new(self.snapshot()) }
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self.now;
        self.stats.arb = self.arb.stats();
        self.stats.dcache = self.banks.stats();
        self.stats.bus = self.bus.stats();
        self.stats.descriptor_cache = self.desc_cache.stats();
        let mut ic = ms_memsys::CacheStats::default();
        for u in &self.units {
            ic.accesses += u.icache_stats().accesses;
            ic.misses += u.icache_stats().misses;
        }
        self.stats.icache = ic;
        self.stats.predictions = self.predictor.stats().predictions;
        self.stats.correct_predictions = self.predictor.stats().correct;
        if A::ENABLED {
            self.stats.cpi = self.acct.finish(self.now, self.stats.instructions);
        }
    }

    /// [`Ring::send`] with the injector's hop jitter applied; a plain
    /// send when injection is disabled.
    fn ring_send(&mut self, unit: usize, msg: RingMsg, now: u64) {
        if F::ENABLED {
            let extra = self.inject.ring_extra_delay(now, unit);
            self.ring.send_delayed(unit, msg, now, extra);
        } else {
            self.ring.send(unit, msg, now);
        }
    }

    /// Order of the active task on `unit`, if any.
    fn unit_order(&self, unit: usize) -> Option<u64> {
        self.active.iter().find(|r| r.unit == unit).map(|r| r.order)
    }

    /// A one-line summary of sequencer/task state for debugging.
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "pending={:?} active=[", self.pending);
        for r in &self.active {
            let u = &self.units[r.unit];
            let _ = write!(
                s,
                "{{#{} u{} @{:#x} exit={:?} val={} complete={} awaiting={} fwd21={}}} ",
                r.order,
                r.unit,
                r.entry,
                r.exit,
                r.validated,
                u.is_complete(self.now),
                u.awaiting_regs(),
                u.fwd_view().1.contains(ms_isa::Reg::int(21)),
            );
        }
        let _ = write!(
            s,
            "] halted={} ring={} seq_ready={} sq={}c+{}m",
            self.halted,
            self.ring.in_flight(),
            self.seq_ready_at,
            self.stats.control_squashes,
            self.stats.memory_squashes
        );
        s
    }

    /// Advances the simulation one cycle.
    ///
    /// # Errors
    /// See [`Processor::run`].
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.now;
        let n = self.cfg.units;

        // Chaos pressure windows: the injector may temporarily throttle
        // ring bandwidth or ARB capacity (both clamped so progress is
        // never starved). Compiles away under `NoFaults`.
        if F::ENABLED {
            let ring_cap = self.inject.ring_width_cap(now);
            self.ring.set_width_cap(ring_cap);
            let arb_cap = self.inject.arb_capacity_cap(now);
            self.arb.set_capacity_pressure(arb_cap);
        }

        // 1-2. Ring hop and delivery. A message travels forward until it
        // reaches (a) an older or equal task — it has wrapped all the way
        // around, or (b) the newest assigned task — every future task will
        // snapshot that unit's forwarded view, so the value need travel no
        // further. Idle units pass messages through (their successors may
        // hold later tasks that still need the value).
        let newest_order = self.active.back().map(|r| r.order);
        let trace = self.log_events;
        // Reused scratch buffer (taken so `self.ring.send` stays legal
        // inside the loop; restored — cleared — at the end of the pass).
        let mut arrivals = std::mem::take(&mut self.scratch_arrivals);
        self.ring.step_into(now, &mut arrivals, &mut self.sink);
        for (dest, msg) in arrivals.drain(..) {
            debug_assert!(msg.hops <= 4 * n, "ring message circulating: {msg:?}");
            // Stale-value kill: a later producer of this register already
            // retired, so no live or future task may consume this copy.
            if self.retired_creates[msg.reg.index()] > msg.sender_order + 1 {
                if trace {
                    eprintln!("[{now}] ring: {} stale at u{dest} {msg:?}", msg.reg);
                }
                if S::ENABLED {
                    self.sink.event(&TraceEvent::RingDie {
                        cycle: now,
                        unit: dest,
                        reg: msg.reg.index() as u8,
                        hops: msg.hops as u32,
                    });
                }
                continue;
            }
            match self.unit_order(dest) {
                Some(order) if order > msg.sender_order => {
                    // A live producer of this register sits between the
                    // sender and this task in program order. The message
                    // should have died at that producer's unit but slipped
                    // past while the unit was idle (a squash re-sequencing
                    // window can re-assign the producer after the message
                    // has gone by) — the value is stale here and for every
                    // later task, so kill it instead of delivering.
                    let skipped_producer = self.active.iter().any(|rec| {
                        rec.order > msg.sender_order
                            && rec.order < order
                            && rec.create.contains(msg.reg)
                    });
                    if skipped_producer {
                        if trace {
                            eprintln!(
                                "[{now}] ring: {} stale (skipped producer) at u{dest} {msg:?}",
                                msg.reg
                            );
                        }
                        if S::ENABLED {
                            self.sink.event(&TraceEvent::RingDie {
                                cycle: now,
                                unit: dest,
                                reg: msg.reg.index() as u8,
                                hops: msg.hops as u32,
                            });
                        }
                        continue;
                    }
                    let propagate = self.units[dest].receive(msg.reg, msg.val, now);
                    if trace {
                        eprintln!(
                            "[{now}] ring: {} -> u{dest} (order {order}) deliver prop={propagate} {msg:?}",
                            msg.reg
                        );
                    }
                    if S::ENABLED {
                        self.sink.event(&TraceEvent::RingDeliver {
                            cycle: now,
                            unit: dest,
                            reg: msg.reg.index() as u8,
                            hops: msg.hops as u32,
                            propagate,
                        });
                    }
                    if propagate && Some(order) != newest_order {
                        self.ring_send(dest, msg, now);
                    }
                }
                Some(order) => {
                    if trace {
                        eprintln!(
                            "[{now}] ring: {} dies at u{dest} (order {order}) {msg:?}",
                            msg.reg
                        );
                    }
                    if S::ENABLED {
                        self.sink.event(&TraceEvent::RingDie {
                            cycle: now,
                            unit: dest,
                            reg: msg.reg.index() as u8,
                            hops: msg.hops as u32,
                        });
                    }
                } // wrapped to the sender or older tasks: dies
                None => {
                    if !self.active.is_empty() {
                        self.ring_send(dest, msg, now); // pass through an idle unit
                    } else {
                        if trace {
                            eprintln!("[{now}] ring: {} dies at idle u{dest} {msg:?}", msg.reg);
                        }
                        if S::ENABLED {
                            self.sink.event(&TraceEvent::RingDie {
                                cycle: now,
                                unit: dest,
                                reg: msg.reg.index() as u8,
                                hops: msg.hops as u32,
                            });
                        }
                    }
                }
            }
        }

        self.scratch_arrivals = arrivals;

        // 3. Execute, head to tail (deterministic task-order memory refs).
        let mut violations = std::mem::take(&mut self.scratch_violations);
        let mut exits = std::mem::take(&mut self.scratch_exits);
        let mut arb_stalled = std::mem::take(&mut self.scratch_arb_stalled);
        let mut occupied = std::mem::take(&mut self.scratch_occupied);
        if A::ENABLED {
            occupied.clear();
            occupied.resize(n, false);
        }
        let active_len = self.active.len();
        let mut any_issue = false;
        for pos in 0..active_len {
            let unit_idx = self.active[pos].unit;
            let mut ports = MemPorts {
                mem: &mut self.mem,
                bus: &mut self.bus,
                banks: &mut self.banks,
                arb: Some(&mut self.arb),
                stage: unit_idx,
                active_ranks: active_len,
            };
            let out = self.units[unit_idx].tick_traced(now, &self.prog, &mut ports, &mut self.sink);
            if let Some(f) = self.units[unit_idx].fault() {
                return Err(SimError::Fault(f.to_owned()));
            }
            if out.issued > 0 {
                any_issue = true;
            }
            if A::ENABLED {
                // Conservation: exactly one bucket per (unit, cycle). The
                // unit just classified this cycle — issued, or the fine
                // stall reason it recorded.
                occupied[unit_idx] = true;
                if out.issued > 0 {
                    self.acct.charge_issued(unit_idx);
                } else {
                    let reason =
                        self.units[unit_idx].stall_reason().unwrap_or(StallReason::FetchEmpty);
                    self.acct.charge_stall(unit_idx, reason);
                }
            }
            violations.extend(out.violations);
            if out.stall == Some(ms_pipeline::StallClass::ArbFull) && pos > 0 {
                arb_stalled.push(pos);
            }
            if let Some(exit) = out.exit {
                exits.push((pos, exit));
            }
        }
        self.stats.breakdown.idle += (n - active_len) as u64;
        if A::ENABLED {
            // Units with no assigned task this cycle: squash recovery if
            // their last task was squashed and nothing new arrived yet,
            // plain no-task idleness otherwise.
            for (u, taken) in occupied.iter().enumerate() {
                if !taken {
                    let reason = if self.recovering[u] {
                        StallReason::SquashRecovery
                    } else {
                        StallReason::NoTask
                    };
                    self.acct.charge_stall(u, reason);
                }
            }
        }
        self.scratch_occupied = occupied;

        // 4. Collect new ring sends.
        let mut sends = std::mem::take(&mut self.scratch_sends);
        for pos in 0..self.active.len() {
            let rec_unit = self.active[pos].unit;
            let rec_order = self.active[pos].order;
            self.units[rec_unit].drain_sends_into(now, &mut sends);
            for (reg, val) in sends.drain(..) {
                if S::ENABLED {
                    self.sink.event(&TraceEvent::RingSend {
                        cycle: now,
                        unit: rec_unit,
                        reg: reg.index() as u8,
                        order: rec_order,
                    });
                }
                self.ring_send(
                    rec_unit,
                    RingMsg { reg, val, sender_order: rec_order, hops: 0 },
                    now,
                );
            }
        }
        self.scratch_sends = sends;

        // 5. Record exits, validate successors, process violations.
        for &(pos, exit) in &exits {
            self.active[pos].exit = Some(exit);
        }
        let mut squash: Option<(usize, Pending, SquashCause)> = None;
        let consider = |req: (usize, Pending, SquashCause), slot: &mut Option<_>| {
            let replace = match slot {
                None => true,
                Some((p, _, c)) => {
                    req.0 < *p
                        || (req.0 == *p
                            && req.2 == SquashCause::Control
                            && *c != SquashCause::Control)
                }
            };
            if replace {
                *slot = Some(req);
            }
        };
        // Memory violations: squash the earliest violated task.
        for v_unit in violations.drain(..) {
            if let Some(pos) = self.active.iter().position(|r| r.unit == v_unit) {
                let rec = &self.active[pos];
                let redirect = Pending::Entry {
                    pc: rec.entry,
                    by_prediction: rec.by_prediction,
                    choice: rec.hist.map(|(from, _, idx)| (from, idx)),
                };
                consider((pos, redirect, SquashCause::Memory), &mut squash);
            }
        }
        // Control validation, in task order.
        for pos in 0..self.active.len() {
            if self.active[pos].exit.is_none() || self.active[pos].validated {
                continue;
            }
            if let Some(req) = self.validate(pos)? {
                consider(req, &mut squash);
            }
        }
        // ARB-overflow policy: the paper's "simple solution is to free ARB
        // storage by squashing tasks" (vs. the default stall).
        if self.cfg.arb_full_policy == ArbFullPolicy::Squash {
            for pos in arb_stalled.drain(..) {
                if pos < self.active.len() {
                    let rec = &self.active[pos];
                    let redirect = Pending::Entry {
                        pc: rec.entry,
                        by_prediction: rec.by_prediction,
                        choice: rec.hist.map(|(from, _, idx)| (from, idx)),
                    };
                    consider((pos, redirect, SquashCause::ArbFull), &mut squash);
                }
            }
        }
        // Chaos: a fault plan may request a spurious squash at position
        // `k`. Recovery re-dispatches the squashed task itself (the
        // memory-violation redirect), so architectural results are
        // unchanged. The head (k = 0) is never squashed — as in the
        // paper, the head is non-speculative — and real squash causes at
        // earlier positions take precedence via `consider`.
        if F::ENABLED {
            if let Some(k) = self.inject.spurious_squash(now, self.active.len()) {
                if k >= 1 && k < self.active.len() {
                    let rec = &self.active[k];
                    let redirect = Pending::Entry {
                        pc: rec.entry,
                        by_prediction: rec.by_prediction,
                        choice: rec.hist.map(|(from, _, idx)| (from, idx)),
                    };
                    consider((k, redirect, SquashCause::Chaos), &mut squash);
                }
            }
        }
        if let Some((pos, redirect, cause)) = squash {
            self.squash_from(pos, redirect, cause)?;
        }
        exits.clear();
        arb_stalled.clear();
        self.scratch_violations = violations;
        self.scratch_exits = exits;
        self.scratch_arb_stalled = arb_stalled;

        // 6. Retire at the head (one per cycle).
        let retire = match self.active.front() {
            Some(head) => {
                let u = head.unit;
                (self.units[u].is_complete(now) && head.validated).then_some(u)
            }
            None => None,
        };
        if let Some(u) = retire {
            let Some(head) = self.active.pop_front() else {
                return Err(self.internal_error("retire: head task vanished mid-cycle"));
            };
            let lines = self.arb.drain_stage(u, &mut self.mem);
            for line in lines {
                self.banks.drain_store(now, line, &mut self.bus);
            }
            let c = self.units[u].counters();
            self.stats.instructions += c.instructions;
            self.stats.tasks_retired += 1;
            if A::ENABLED {
                self.acct.task_retire(u, c.instructions);
            }
            self.stats.breakdown.useful += c.busy_cycles;
            self.stats.breakdown.no_comp_inter_task += c.inter_task_cycles;
            self.stats.breakdown.no_comp_intra_task += c.intra_task_cycles;
            self.stats.breakdown.no_comp_wait_retire += c.wait_retire_cycles;
            self.stats.breakdown.no_comp_arb += c.arb_stall_cycles;
            self.retirement_log.push(Retirement {
                cycle: now,
                entry: head.entry,
                unit: u,
                instructions: c.instructions,
            });
            if S::ENABLED {
                self.sink.event(&TraceEvent::TaskRetire {
                    cycle: now,
                    order: head.order,
                    unit: u,
                    entry: head.entry,
                    instructions: c.instructions,
                });
            }
            self.units[u].retire(now);
            self.last_retired_unit = Some(u);
            self.last_retire_cycle = now;
            // Record this task as the latest retired producer of its
            // create-mask registers; in-flight messages from older tasks
            // carrying these registers are now stale (see the kill in
            // the arrivals loop).
            if let Some(desc) = self.prog.task_at(head.entry) {
                for r in desc.create.iter() {
                    self.retired_creates[r.index()] = head.order + 1;
                }
            }
            match self.active.front() {
                Some(next) => self.arb.set_head(next.unit),
                None => self.arb.set_head(self.next_unit),
            }
            if head.exit == Some(ExitKind::Halt) {
                self.halted = true;
            }
        }

        // 7. Assign at the tail.
        if !self.halted {
            self.assign_phase(now)?;
        }

        if S::ENABLED && now.is_multiple_of(ARB_OCCUPANCY_SAMPLE_PERIOD) {
            self.sink.event(&TraceEvent::ArbOccupancy {
                cycle: now,
                entries: self.arb.total_occupancy(),
            });
        }

        self.step_issued = any_issue;
        self.now += 1;
        Ok(())
    }

    /// Event-driven skip-ahead (DESIGN.md §13), called between steps
    /// when `cfg.skip_ahead` is on and neither tracing nor fault
    /// injection is live. Computes a conservative wake cycle `wake`
    /// such that every step in `[now, wake)` would be pure bookkeeping
    /// — no issue, fetch completion, memory response, ring arrival,
    /// sequencer action, retirement, or stall-classification change
    /// anywhere in the machine — then charges those cycles in bulk to
    /// the exact buckets the ticked loop would have used and jumps the
    /// clock. If any component might act at `now + 1`, it does nothing
    /// and the processor ticks normally. Observational
    /// indistinguishability (byte-identical `RunStats` and CPI stacks)
    /// is pinned by `tests/golden_stats.rs` and
    /// `tests/cpi_conservation.rs` running every workload both ways.
    fn try_skip(&mut self) {
        // The run is over (the loop condition is about to observe it):
        // jumping now would pad the tail of the run with phantom
        // stall cycles.
        if self.halted && self.active.is_empty() {
            return;
        }
        self.skip_telemetry.0 += 1;
        let from = self.now;

        // A retirable head is an event: only one task retires per
        // cycle, so a backlog of completed tasks must drain by ticking.
        if let Some(head) = self.active.front() {
            if head.validated && self.units[head.unit].is_complete(from) {
                return;
            }
        }

        let mut wake = u64::MAX;

        // Sequencer: only quiet when it is waiting on a known future
        // timestamp (a descriptor fill) or permanently idle (Stop, or
        // halted with the queue draining). While the next task is
        // Unknown the sequencer predicts every cycle — mutating
        // predictor state — so that is never skippable.
        if !self.halted && self.active.len() < self.cfg.units {
            match self.pending {
                Pending::Entry { .. } => {
                    if self.seq_ready_at <= from {
                        return;
                    }
                    wake = wake.min(self.seq_ready_at);
                }
                Pending::Unknown => return,
                Pending::Stop => {}
            }
        }

        // Forwarding ring: the next in-flight arrival is an event.
        if let Some(t) = self.ring.next_arrival() {
            if t <= from {
                return;
            }
            wake = wake.min(t);
        }

        // Units: each active unit must prove a quiet span and name the
        // stall reason the ticked loop would have charged throughout.
        let mut quiet = std::mem::take(&mut self.scratch_quiet);
        quiet.clear();
        for rec in &self.active {
            // A parked unit already holds a proven certificate — reuse
            // it rather than paying for a second probe.
            let u = &self.units[rec.unit];
            match u.parked_claim(from).or_else(|| u.quiet_until(from)) {
                Some((t, reason)) if t > from => {
                    wake = wake.min(t);
                    quiet.push((rec.unit, reason));
                }
                _ => {
                    self.scratch_quiet = quiet;
                    return;
                }
            }
        }

        // Observable cadence: flight-recorder samples, the cycle bound
        // and the watchdog must fire at identical cycles in both modes.
        wake = wake.min(self.flight.next_due());
        wake = wake.min(self.cfg.max_cycles);
        if let Some(window) = self.cfg.watchdog {
            wake = wake.min(self.last_retire_cycle + window);
        }
        if wake <= from {
            self.scratch_quiet = quiet;
            return;
        }

        // Charge the skipped span exactly as the ticked loop would have.
        let k = wake - from;
        for &(u, reason) in &quiet {
            self.units[u].skip_charge(k, reason);
            if A::ENABLED {
                self.acct.charge_stall_n(u, reason, k);
            }
        }
        if A::ENABLED {
            let mut occupied = std::mem::take(&mut self.scratch_occupied);
            occupied.clear();
            occupied.resize(self.cfg.units, false);
            for &(u, _) in &quiet {
                occupied[u] = true;
            }
            for (u, taken) in occupied.iter().enumerate() {
                if !taken {
                    let reason = if self.recovering[u] {
                        StallReason::SquashRecovery
                    } else {
                        StallReason::NoTask
                    };
                    self.acct.charge_stall_n(u, reason, k);
                }
            }
            self.scratch_occupied = occupied;
        }
        self.stats.breakdown.idle += (self.cfg.units - self.active.len()) as u64 * k;
        self.skip_telemetry.1 += 1;
        self.skip_telemetry.2 += k;
        self.now = wake;
        self.scratch_quiet = quiet;
    }

    /// Host-side skip-ahead telemetry: `(probes, spans, cycles
    /// skipped)`. Zero in ticked mode; never part of [`RunStats`], so
    /// the simulated results stay byte-identical across modes.
    pub fn skip_telemetry(&self) -> (u64, u64, u64) {
        self.skip_telemetry
    }

    /// Aggregated unit-parking telemetry: `(probes, parks, cycles
    /// replayed)` summed over all units (see
    /// [`ms_pipeline::ProcessingUnit::park_stats`]).
    pub fn unit_park_stats(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for u in &self.units {
            let s = u.park_stats();
            t.0 += s.0;
            t.1 += s.1;
            t.2 += s.2;
        }
        t
    }

    /// Validates the successor of the task at `pos`, training the
    /// predictor and maintaining the RAS. Returns a squash request if the
    /// successor on record is wrong.
    fn validate(&mut self, pos: usize) -> Result<Option<(usize, Pending, SquashCause)>, SimError> {
        let Some(exit) = self.active[pos].exit else {
            return Err(self.internal_error("validate: task has no resolved exit"));
        };
        let entry = self.active[pos].entry;
        let desc = self.prog.task_at(entry).ok_or(SimError::NoDescriptor { pc: entry })?;
        let actual_idx = actual_target_index(desc, exit)
            .ok_or_else(|| SimError::ExitNotInTargets { task: entry, exit: format!("{exit:?}") })?;
        // Train the pattern table at the history that preceded this
        // outcome. If the successor is already assigned, its record holds
        // the pre-shift history; otherwise no shift has happened yet and
        // the current history is the right one.
        let train_hist = match self.active.get(pos + 1).and_then(|s| s.hist) {
            Some((from, prev, _)) if from == entry => prev,
            _ => self.predictor.history(entry),
        };
        self.predictor.train(entry, train_hist, actual_idx);
        self.last_outcome.insert(entry, actual_idx);
        self.active[pos].validated = true;

        // RAS bookkeeping at resolution.
        match exit {
            ExitKind::Call { ret, .. } => self.ras.push(ret),
            ExitKind::Return(_) if !self.active[pos].ras_popped => {
                let _ = self.ras.pop();
                self.active[pos].ras_popped = true;
            }
            _ => {}
        }

        let actual_next = exit.next_pc();
        if pos + 1 < self.active.len() {
            // A successor is running: check it.
            let succ = &self.active[pos + 1];
            let correct = actual_next == Some(succ.entry);
            if succ.by_prediction {
                self.predictor.note_outcome(correct);
            }
            if S::ENABLED {
                self.sink.event(&TraceEvent::TaskValidate {
                    cycle: self.now,
                    entry,
                    actual_next,
                    correct,
                });
            }
            if !correct {
                let redirect = match actual_next {
                    Some(pc) => Pending::Entry {
                        pc,
                        by_prediction: false,
                        choice: Some((entry, actual_idx)),
                    },
                    None => Pending::Stop,
                };
                return Ok(Some((pos + 1, redirect, SquashCause::Control)));
            }
        } else {
            // No successor assigned yet: resolve the pending choice.
            let resolved = match actual_next {
                Some(pc) => {
                    Pending::Entry { pc, by_prediction: false, choice: Some((entry, actual_idx)) }
                }
                None => Pending::Stop,
            };
            let mut correct = true;
            match self.pending {
                Pending::Unknown => self.pending = resolved,
                Pending::Entry { pc: e, by_prediction: by_pred, .. } => {
                    correct = actual_next == Some(e);
                    if by_pred {
                        self.predictor.note_outcome(correct);
                    }
                    self.pending = resolved;
                }
                Pending::Stop => {
                    correct = actual_next.is_none();
                    self.predictor.note_outcome(correct);
                    if actual_next.is_some() {
                        self.pending = resolved;
                    }
                }
            }
            if S::ENABLED {
                self.sink.event(&TraceEvent::TaskValidate {
                    cycle: self.now,
                    entry,
                    actual_next,
                    correct,
                });
            }
        }
        Ok(None)
    }

    /// Squashes the task at `pos` and all its successors; the sequencer
    /// resumes from `redirect`.
    fn squash_from(
        &mut self,
        pos: usize,
        redirect: Pending,
        cause: SquashCause,
    ) -> Result<(), SimError> {
        debug_assert!(pos < self.active.len());
        let cutoff = self.active[pos].order;
        let depth = self.active.len() - pos;
        self.ras.restore(self.active[pos].ras_snap);
        while self.active.len() > pos {
            let Some(rec) = self.active.pop_back() else {
                return Err(self.internal_error("squash: active queue shrank mid-wave"));
            };
            let c = self.units[rec.unit].counters();
            if S::ENABLED {
                self.sink.event(&TraceEvent::TaskSquash {
                    cycle: self.now,
                    order: rec.order,
                    unit: rec.unit,
                    entry: rec.entry,
                    cause: cause.kind(),
                });
            }
            self.stats.tasks_squashed += 1;
            self.stats.squashed_instructions += c.instructions;
            self.stats.breakdown.non_useful += c.total_cycles();
            if A::ENABLED {
                self.recovering[rec.unit] = true;
                self.acct.task_squash(rec.unit);
            }
            self.units[rec.unit].clear();
            self.arb.free_stage(rec.unit);
            // Undo the speculative history shift (newest first, so
            // aliased first-level entries restore exactly).
            if let Some((from, prev, _)) = rec.hist {
                self.predictor.set_history(from, prev);
            }
        }
        // Deliberately skippable under the `chaos-broken-squash` feature:
        // leaving a squashed task's in-flight register messages on the
        // ring is a seeded bug the chaos campaign must catch (wrong-path
        // values deliver to re-dispatched tasks and corrupt results).
        #[cfg(not(feature = "chaos-broken-squash"))]
        self.ring.discard_if(|m| m.sender_order >= cutoff);
        #[cfg(feature = "chaos-broken-squash")]
        let _ = cutoff;
        if S::ENABLED {
            let redirect_pc = match redirect {
                Pending::Entry { pc, .. } => Some(pc),
                _ => None,
            };
            self.sink.event(&TraceEvent::SquashWave {
                cycle: self.now,
                cause: cause.kind(),
                depth,
                redirect: redirect_pc,
            });
        }
        match cause {
            SquashCause::Control => self.stats.control_squashes += 1,
            SquashCause::Memory => self.stats.memory_squashes += 1,
            SquashCause::ArbFull => self.stats.arb_squashes += 1,
            // Chaos waves reach the trace sink but deliberately touch no
            // `RunStats` counter: reported stats describe the modeled
            // machine, not the injected faults.
            SquashCause::Chaos => {}
        }
        self.next_unit = match self.active.back() {
            Some(last) => (last.unit + 1) % self.cfg.units,
            None => match self.last_retired_unit {
                Some(u) => (u + 1) % self.cfg.units,
                None => 0,
            },
        };
        if self.active.is_empty() {
            self.arb.set_head(self.next_unit);
        }
        self.pending = redirect;
        // Re-sequencing costs a cycle before the next assignment.
        self.seq_ready_at = self.now + 1;
        Ok(())
    }

    fn assign_phase(&mut self, now: u64) -> Result<(), SimError> {
        if now < self.seq_ready_at || self.active.len() >= self.cfg.units {
            return Ok(());
        }
        // Derive the next task if unknown.
        if self.pending == Pending::Unknown {
            let Some(last) = self.active.back() else {
                // Nothing active and nothing pending: the last retired
                // task's validation must have set pending; nothing to do.
                return Ok(());
            };
            if last.exit.is_none() {
                // Predict the successor of the last assigned task.
                let desc = self
                    .prog
                    .task_at(last.entry)
                    .ok_or(SimError::NoDescriptor { pc: last.entry })?;
                let idx = match self.cfg.predictor {
                    PredictorKind::Pas => self.predictor.predict_traced(
                        now,
                        last.entry,
                        desc.targets.len(),
                        &mut self.sink,
                    ),
                    PredictorKind::StaticFirstTarget => 0,
                    PredictorKind::LastOutcome => self
                        .last_outcome
                        .get(&last.entry)
                        .copied()
                        .filter(|&i| i < desc.targets.len())
                        .unwrap_or(0),
                };
                // Chaos: a fault plan may force a different target
                // choice. The pick is still `by_prediction`, so normal
                // successor validation detects and recovers from it.
                let idx = if F::ENABLED {
                    self.inject
                        .override_prediction(now, last.order, last.entry, desc.targets.len(), idx)
                        .min(desc.targets.len().saturating_sub(1))
                } else {
                    idx
                };
                let from = last.entry;
                match desc.targets[idx].kind {
                    TargetKind::Addr(a) => {
                        self.pending =
                            Pending::Entry { pc: a, by_prediction: true, choice: Some((from, idx)) }
                    }
                    TargetKind::Halt => self.pending = Pending::Stop,
                    TargetKind::Return => {
                        if let Some(pc) = self.ras.pop() {
                            if self.prog.task_at(pc).is_some() {
                                let Some(last) = self.active.back_mut() else {
                                    return Err(
                                        self.internal_error("assign: predicted task vanished")
                                    );
                                };
                                last.ras_popped = true;
                                self.pending = Pending::Entry {
                                    pc,
                                    by_prediction: true,
                                    choice: Some((from, idx)),
                                };
                            } else {
                                // Bad speculative pop: undo and wait for
                                // the actual exit.
                                self.ras.push(pc);
                                return Ok(());
                            }
                        } else {
                            return Ok(()); // RAS empty: wait for actual
                        }
                    }
                }
            }
            // If the exit is known but validation hasn't run yet (same
            // cycle), wait: validation will set pending.
        }
        let Pending::Entry { pc: entry, by_prediction, choice } = self.pending else {
            return Ok(());
        };
        let Some(desc) = self.prog.task_at(entry) else {
            if by_prediction {
                // A mispredicted path led outside the annotation; treat as
                // an unpredictable successor and wait for the actual exit.
                self.pending = Pending::Unknown;
                return Ok(());
            }
            return Err(SimError::NoDescriptor { pc: entry });
        };
        let create = desc.create;
        // Descriptor fetch: on a miss the descriptor travels the bus.
        let desc_hit = self.desc_cache.access(entry);
        if S::ENABLED {
            self.sink.event(&TraceEvent::DescriptorFetch { cycle: now, entry, hit: desc_hit });
        }
        if !desc_hit {
            self.seq_ready_at = self.bus.request_traced(now, 4, &mut self.sink) + 1;
            return Ok(());
        }
        let unit_idx = self.next_unit;
        debug_assert!(!self.units[unit_idx].is_active(), "tail unit busy");

        let (vals, known) = match self.active.back().map(|r| r.unit).or(self.last_retired_unit) {
            Some(u) => {
                let (v, k) = self.units[u].fwd_view();
                (*v, k)
            }
            None => (self.boot_vals, RegMask::from_bits(!0)),
        };
        let awaiting = RegMask::from_bits(!known.bits());
        if self.log_events {
            eprintln!(
                "[{now}] assign: #{} -> u{unit_idx} @{entry:#x} awaiting={} (pred {:?})",
                self.next_order,
                awaiting.difference(RegMask::from_bits(1)),
                self.active
                    .back()
                    .map(|r| (r.order, r.unit))
                    .or(self.last_retired_unit.map(|u| (u64::MAX, u))),
            );
        }
        self.units[unit_idx].assign_task(entry, create, &vals, awaiting, now);

        let order = self.next_order;
        self.next_order += 1;
        if A::ENABLED {
            self.recovering[unit_idx] = false;
            self.acct.task_assign(unit_idx, order, entry);
        }
        if S::ENABLED {
            self.sink.event(&TraceEvent::TaskAssign {
                cycle: now,
                order,
                unit: unit_idx,
                entry,
                by_prediction,
            });
        }
        if self.active.is_empty() {
            self.arb.set_head(unit_idx);
        }
        // Speculative history update: shift the chosen target index into
        // the predecessor's history now, remembering the pre-shift value
        // for squash repair.
        let hist = choice.map(|(from, idx)| {
            let prev = self.predictor.shift(from, idx);
            (from, prev, idx)
        });
        self.active.push_back(TaskRecord {
            order,
            unit: unit_idx,
            entry,
            by_prediction,
            ras_snap: self.ras.snapshot(),
            exit: None,
            ras_popped: false,
            validated: false,
            hist,
            assigned_at: now,
            create,
        });
        self.next_unit = (unit_idx + 1) % self.cfg.units;
        self.pending = Pending::Unknown;
        self.seq_ready_at = now + 1; // one assignment per cycle
        Ok(())
    }
}

/// Maps an actual task exit to the descriptor target index it matches.
fn actual_target_index(desc: &TaskDescriptor, exit: ExitKind) -> Option<usize> {
    match exit {
        ExitKind::Halt => desc.targets.iter().position(|t| t.kind == TargetKind::Halt),
        ExitKind::Return(pc) => desc
            .targets
            .iter()
            .position(|t| t.kind == TargetKind::Return)
            .or_else(|| desc.target_index_for(pc)),
        ExitKind::Call { target, .. } => desc.target_index_for(target),
        ExitKind::Jump(pc) | ExitKind::Fall(pc) => desc.target_index_for(pc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actual_index_maps_exits() {
        use ms_isa::TaskTarget;
        let desc = TaskDescriptor::new(
            0x1000,
            RegMask::EMPTY,
            vec![TaskTarget::addr(0x1000), TaskTarget::ret(), TaskTarget::halt()],
        );
        assert_eq!(actual_target_index(&desc, ExitKind::Jump(0x1000)), Some(0));
        assert_eq!(actual_target_index(&desc, ExitKind::Fall(0x1000)), Some(0));
        assert_eq!(actual_target_index(&desc, ExitKind::Return(0x5555)), Some(1));
        assert_eq!(actual_target_index(&desc, ExitKind::Halt), Some(2));
        assert_eq!(actual_target_index(&desc, ExitKind::Jump(0x2000)), None);
        assert_eq!(actual_target_index(&desc, ExitKind::Call { target: 0x1000, ret: 0 }), Some(0));
    }
}
