//! Design-space knobs for ablation studies.
//!
//! The paper discusses several design alternatives without evaluating
//! them: static vs. dynamic task prediction (Section 2.3), squashing vs.
//! stalling on ARB overflow (Section 2.3), and the ring as the register
//! communication fabric (Section 2.1, with latency set by implementation
//! technology). These knobs expose those alternatives so the bench
//! harness can quantify them.

/// How the sequencer predicts the successor of a task.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// The paper's PAs two-level predictor (Section 5.1).
    #[default]
    Pas,
    /// Static prediction: always the first descriptor target (the paper's
    /// "static … prediction scheme" baseline).
    StaticFirstTarget,
    /// Predict whatever this task did last time (a 1-entry-per-task
    /// last-outcome predictor).
    LastOutcome,
}

/// What to do when a speculative task cannot allocate ARB space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ArbFullPolicy {
    /// "A less drastic alternative is to stall all processing units but
    /// the head. As the head advances, entries are reclaimed and the
    /// stall lifted." (The paper's preferred approach; our default.)
    #[default]
    Stall,
    /// "A simple solution is to free ARB storage by squashing tasks.
    /// This strategy guarantees space in the ARB and forward progress."
    Squash,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_configuration() {
        assert_eq!(PredictorKind::default(), PredictorKind::Pas);
        assert_eq!(ArbFullPolicy::default(), ArbFullPolicy::Stall);
    }
}
