//! The always-on flight recorder: a bounded ring of periodic
//! [`DiagnosticSnapshot`] samples.
//!
//! A failure snapshot shows the *final* frame of a stuck machine; by the
//! time a watchdog or cycle bound fires, the interesting part — how the
//! machine got there — is gone. The flight recorder samples the full
//! diagnostic state every [`FlightRecorder::PERIOD`] cycles into a ring
//! of at most [`FlightRecorder::CAP`] frames, and the processor attaches
//! the ring's contents to [`crate::SimError::Timeout`] and
//! [`crate::SimError::NoProgress`] so failures carry history.
//!
//! Cost: one snapshot (a few hundred bytes, one allocation burst) every
//! 4096 cycles — amortized noise, which is why it is on unconditionally
//! rather than gated like tracing or cycle accounting. It is purely
//! observational and is never consulted by the machine, so simulated
//! behaviour (and the golden stats) cannot depend on it.

use crate::diag::DiagnosticSnapshot;
use std::collections::VecDeque;

/// Bounded ring buffer of periodic diagnostic samples.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    samples: VecDeque<DiagnosticSnapshot>,
    next_due: u64,
}

impl FlightRecorder {
    /// Cycles between samples.
    pub const PERIOD: u64 = 4096;
    /// Maximum retained samples (oldest evicted first).
    pub const CAP: usize = 32;

    /// A fresh recorder; the first sample is due at cycle 0.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Whether a sample is due at `now`.
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_due
    }

    /// The cycle at which the next sample is due. The skip-ahead
    /// scheduler clamps its clock jumps here so snapshots are taken at
    /// exactly the same cycles as a fully ticked run.
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Records `snap` (taken at `now`), evicting the oldest frame at
    /// capacity, and schedules the next sample.
    pub fn record(&mut self, now: u64, snap: DiagnosticSnapshot) {
        if self.samples.len() == Self::CAP {
            self.samples.pop_front();
        }
        self.samples.push_back(snap);
        self.next_due = now + Self::PERIOD;
    }

    /// The retained history, oldest first.
    pub fn history(&self) -> Vec<DiagnosticSnapshot> {
        self.samples.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(cycle: u64) -> DiagnosticSnapshot {
        DiagnosticSnapshot {
            cycle,
            last_retire_cycle: 0,
            tasks_retired: 0,
            halted: false,
            pending: String::new(),
            head: None,
            units: Vec::new(),
            ring_in_flight: 0,
            ring_queues: Vec::new(),
            arb_bank_occupancy: Vec::new(),
            arb_full_events: 0,
            arb_violations: 0,
        }
    }

    #[test]
    fn samples_on_period_and_bounds_memory() {
        let mut fr = FlightRecorder::new();
        assert!(fr.due(0));
        let mut recorded = 0u64;
        for now in 0..(FlightRecorder::PERIOD * (FlightRecorder::CAP as u64 + 8)) {
            if fr.due(now) {
                fr.record(now, frame(now));
                recorded += 1;
            }
        }
        assert_eq!(recorded, FlightRecorder::CAP as u64 + 8);
        let hist = fr.history();
        assert_eq!(hist.len(), FlightRecorder::CAP);
        // Oldest first, newest retained.
        assert!(hist.windows(2).all(|w| w[0].cycle < w[1].cycle));
        assert_eq!(
            hist.last().unwrap().cycle,
            FlightRecorder::PERIOD * (FlightRecorder::CAP as u64 + 7)
        );
    }
}
