//! The unidirectional register-forwarding ring.
//!
//! "At the time a register value in the create mask is produced, it is
//! forwarded to later tasks … via a circular unidirectional ring" (paper
//! Section 2.1). Each hop costs `hop_latency` cycles (1 in the paper's
//! configuration) and the ring width matches the unit issue width
//! (Section 5.1): at most `width` messages advance per hop per cycle;
//! excess messages queue.

use ms_isa::Reg;
use std::collections::VecDeque;

/// One register value in flight on the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingMsg {
    /// The register being forwarded.
    pub reg: Reg,
    /// Its value.
    pub val: u64,
    /// Dispatch order of the sending task (for validity and direction
    /// checks).
    pub sender_order: u64,
    /// Hops traveled so far.
    pub hops: usize,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    msg: RingMsg,
    /// First cycle at which this message may complete its current hop.
    available_from: u64,
}

/// The ring interconnect.
#[derive(Clone, Debug)]
pub struct Ring {
    width: usize,
    hop_latency: u64,
    /// Temporary back-pressure cap on the effective width (chaos
    /// injection); `None` in normal operation.
    width_cap: Option<usize>,
    queues: Vec<VecDeque<InFlight>>,
}

impl Ring {
    /// A ring over `n` units moving up to `width` messages per hop per
    /// cycle, each hop taking `hop_latency` cycles.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(n: usize, width: usize, hop_latency: u64) -> Ring {
        assert!(n > 0 && width > 0 && hop_latency > 0);
        Ring { width, hop_latency, width_cap: None, queues: vec![VecDeque::new(); n] }
    }

    /// Enqueues a message at `unit`'s output port at cycle `now`; it can
    /// arrive at `unit + 1` once the hop latency elapses.
    pub fn send(&mut self, unit: usize, msg: RingMsg, now: u64) {
        self.queues[unit].push_back(InFlight { msg, available_from: now + self.hop_latency });
    }

    /// [`Ring::send`] with `extra` additional cycles of hop delay (chaos
    /// jitter injection).
    pub fn send_delayed(&mut self, unit: usize, msg: RingMsg, now: u64, extra: u64) {
        self.queues[unit]
            .push_back(InFlight { msg, available_from: now + self.hop_latency + extra });
    }

    /// Applies (or with `None` lifts) a back-pressure cap on messages
    /// advanced per hop per cycle. The effective width never drops below
    /// 1, so delivery always makes progress.
    pub fn set_width_cap(&mut self, cap: Option<usize>) {
        self.width_cap = cap;
    }

    fn effective_width(&self) -> usize {
        match self.width_cap {
            Some(cap) => self.width.min(cap).max(1),
            None => self.width,
        }
    }

    /// Advances to cycle `now`: up to `width` due messages leave each
    /// unit's output queue. Returns `(destination_unit, message)` pairs
    /// arriving this cycle.
    pub fn step(&mut self, now: u64) -> Vec<(usize, RingMsg)> {
        let mut arrivals = Vec::new();
        self.step_into(now, &mut arrivals, &mut ms_trace::NullSink);
        arrivals
    }

    /// [`Ring::step`] with trace instrumentation: emits a `RingHop` per
    /// arriving message.
    pub fn step_traced<S: ms_trace::TraceSink>(
        &mut self,
        now: u64,
        sink: &mut S,
    ) -> Vec<(usize, RingMsg)> {
        let mut arrivals = Vec::new();
        self.step_into(now, &mut arrivals, sink);
        arrivals
    }

    /// The allocation-free form of [`Ring::step_traced`]: appends this
    /// cycle's arrivals into a caller-owned buffer (the per-cycle
    /// processor step reuses one across cycles).
    pub fn step_into<S: ms_trace::TraceSink>(
        &mut self,
        now: u64,
        arrivals: &mut Vec<(usize, RingMsg)>,
        sink: &mut S,
    ) {
        let n = self.queues.len();
        let width = self.effective_width();
        for u in 0..n {
            for _ in 0..width {
                // Single panic-free pop: a not-yet-due message goes back
                // to the front (queues are ordered by availability).
                match self.queues[u].pop_front() {
                    Some(f) if f.available_from <= now => {
                        let mut msg = f.msg;
                        msg.hops += 1;
                        let dest = (u + 1) % n;
                        if S::ENABLED {
                            sink.event(&ms_trace::TraceEvent::RingHop {
                                cycle: now,
                                from: u,
                                to: dest,
                                reg: msg.reg.index() as u8,
                                hops: msg.hops as u32,
                            });
                        }
                        arrivals.push((dest, msg));
                    }
                    Some(f) => {
                        self.queues[u].push_front(f);
                        break;
                    }
                    None => break,
                }
            }
        }
    }

    /// The earliest cycle at which any in-flight message can complete
    /// its current hop (`None` when the ring is idle). The skip-ahead
    /// scheduler treats this as a wake bound: no delivery — and hence no
    /// ring-driven state change anywhere — can happen before it.
    pub fn next_arrival(&self) -> Option<u64> {
        self.queues.iter().flatten().map(|f| f.available_from).min()
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Per-unit output-queue depth (diagnostic snapshots).
    pub fn occupancies(&self) -> Vec<usize> {
        self.queues.iter().map(VecDeque::len).collect()
    }

    /// Number of units on the ring.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether the ring is empty of traffic.
    pub fn is_empty(&self) -> bool {
        self.in_flight() == 0
    }

    /// Discards every in-flight message for which `pred` returns true.
    pub fn discard_if(&mut self, mut pred: impl FnMut(&RingMsg) -> bool) {
        for q in &mut self.queues {
            q.retain(|m| !pred(&m.msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(order: u64) -> RingMsg {
        RingMsg { reg: Reg::int(4), val: 7, sender_order: order, hops: 0 }
    }

    #[test]
    fn one_hop_per_cycle() {
        let mut ring = Ring::new(4, 1, 1);
        ring.send(1, msg(0), 0);
        let arr = ring.step(1);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].0, 2);
        assert_eq!(arr[0].1.hops, 1);
        assert!(ring.is_empty());
    }

    #[test]
    fn hop_latency_delays_delivery() {
        let mut ring = Ring::new(4, 1, 3);
        ring.send(0, msg(0), 10);
        assert!(ring.step(11).is_empty());
        assert!(ring.step(12).is_empty());
        let arr = ring.step(13);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].0, 1);
    }

    #[test]
    fn width_limits_throughput() {
        let mut ring = Ring::new(2, 1, 1);
        ring.send(0, msg(0), 0);
        ring.send(0, msg(1), 0);
        let arr = ring.step(1);
        assert_eq!(arr.len(), 1, "width-1 ring moves one message per hop");
        let arr = ring.step(2);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].1.sender_order, 1);
    }

    #[test]
    fn wide_ring_moves_messages_together() {
        let mut ring = Ring::new(2, 2, 1);
        ring.send(0, msg(0), 0);
        ring.send(0, msg(1), 0);
        assert_eq!(ring.step(1).len(), 2);
    }

    #[test]
    fn wraps_around() {
        let mut ring = Ring::new(3, 2, 1);
        ring.send(2, msg(0), 0);
        let arr = ring.step(1);
        assert_eq!(arr[0].0, 0);
    }

    #[test]
    fn delayed_send_adds_jitter() {
        let mut ring = Ring::new(4, 1, 1);
        ring.send_delayed(0, msg(0), 0, 2);
        assert!(ring.step(1).is_empty());
        assert!(ring.step(2).is_empty());
        assert_eq!(ring.step(3).len(), 1);
    }

    #[test]
    fn width_cap_throttles_and_lifts() {
        let mut ring = Ring::new(2, 2, 1);
        ring.send(0, msg(0), 0);
        ring.send(0, msg(1), 0);
        ring.set_width_cap(Some(1));
        assert_eq!(ring.step(1).len(), 1, "capped to one message per hop");
        ring.set_width_cap(None);
        assert_eq!(ring.step(2).len(), 1);
        // A zero cap clamps to 1: progress is never starved.
        ring.send(0, msg(2), 2);
        ring.send(0, msg(3), 2);
        ring.set_width_cap(Some(0));
        assert_eq!(ring.step(3).len(), 1);
    }

    #[test]
    fn discard_drops_squashed_senders() {
        let mut ring = Ring::new(2, 2, 1);
        ring.send(0, msg(5), 0);
        ring.send(0, msg(6), 0);
        ring.discard_if(|m| m.sender_order >= 6);
        assert_eq!(ring.in_flight(), 1);
        let arr = ring.step(1);
        assert_eq!(arr[0].1.sender_order, 5);
    }
}
