//! Run statistics and the Section-3 cycle-distribution taxonomy.

use ms_memsys::{ArbStats, BusStats, CacheStats};
use ms_trace::CpiStack;
use std::fmt;

/// Distribution of processing-unit cycles, following the paper's
/// Section 3: useful computation, non-useful computation (work ultimately
/// squashed), no-computation (stalled with an assigned task), and idle (no
/// assigned task).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles issuing instructions in tasks that retired.
    pub useful: u64,
    /// All cycles spent in tasks that were squashed.
    pub non_useful: u64,
    /// Stalled waiting for a value from a predecessor task (retired tasks).
    pub no_comp_inter_task: u64,
    /// Stalled on intra-task dependences, caches, FUs (retired tasks).
    pub no_comp_intra_task: u64,
    /// Task complete, waiting to be retired at the head (load balancing).
    pub no_comp_wait_retire: u64,
    /// Stalled on ARB capacity.
    pub no_comp_arb: u64,
    /// No assigned task.
    pub idle: u64,
}

impl CycleBreakdown {
    /// Total unit-cycles accounted.
    pub fn total(&self) -> u64 {
        self.useful
            + self.non_useful
            + self.no_comp_inter_task
            + self.no_comp_intra_task
            + self.no_comp_wait_retire
            + self.no_comp_arb
            + self.idle
    }

    /// Percentage helper.
    fn pct(part: u64, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            100.0 * part as f64 / total as f64
        }
    }
}

impl fmt::Display for CycleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        writeln!(f, "unit-cycle distribution ({t} unit-cycles):")?;
        writeln!(f, "  useful computation   {:6.2}%", Self::pct(self.useful, t))?;
        writeln!(f, "  non-useful (squashed){:6.2}%", Self::pct(self.non_useful, t))?;
        writeln!(f, "  no comp: inter-task  {:6.2}%", Self::pct(self.no_comp_inter_task, t))?;
        writeln!(f, "  no comp: intra-task  {:6.2}%", Self::pct(self.no_comp_intra_task, t))?;
        writeln!(f, "  no comp: wait-retire {:6.2}%", Self::pct(self.no_comp_wait_retire, t))?;
        writeln!(f, "  no comp: ARB full    {:6.2}%", Self::pct(self.no_comp_arb, t))?;
        write!(f, "  idle                 {:6.2}%", Self::pct(self.idle, t))
    }
}

/// Statistics from a complete simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Committed (retired-task) instructions — the paper's dynamic
    /// instruction count.
    pub instructions: u64,
    /// Instructions issued in tasks that were later squashed.
    pub squashed_instructions: u64,
    /// Tasks retired.
    pub tasks_retired: u64,
    /// Task dispatches squashed.
    pub tasks_squashed: u64,
    /// Squashes caused by control (task) misprediction.
    pub control_squashes: u64,
    /// Squashes caused by memory-order violations.
    pub memory_squashes: u64,
    /// Squashes caused by the ARB-overflow squash policy (zero under the
    /// default stall policy).
    pub arb_squashes: u64,
    /// Task predictions made.
    pub predictions: u64,
    /// Task predictions that were correct.
    pub correct_predictions: u64,
    /// Cycle distribution.
    pub breakdown: CycleBreakdown,
    /// ARB statistics.
    pub arb: ArbStats,
    /// Data-cache statistics (all banks).
    pub dcache: CacheStats,
    /// Instruction-cache statistics (all units).
    pub icache: CacheStats,
    /// Memory-bus statistics.
    pub bus: BusStats,
    /// Task-descriptor cache `(accesses, misses)`.
    pub descriptor_cache: (u64, u64),
    /// The conservation-checked CPI stack, present only when the run was
    /// made with a live [`crate::CycleAccountant`] (e.g. via `msprof` or
    /// a `--cpi` sweep). `None` on ordinary runs — deliberately excluded
    /// from the golden stats serialization and the sweep cache format.
    pub cpi: Option<CpiStack>,
}

impl RunStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Task-prediction accuracy in `[0, 1]` (1.0 when no predictions).
    pub fn prediction_accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct_predictions as f64 / self.predictions as f64
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions in {} cycles (IPC {:.3})",
            self.instructions,
            self.cycles,
            self.ipc()
        )?;
        writeln!(
            f,
            "tasks: {} retired, {} squashed ({} control, {} memory); prediction {:.1}%",
            self.tasks_retired,
            self.tasks_squashed,
            self.control_squashes,
            self.memory_squashes,
            100.0 * self.prediction_accuracy()
        )?;
        write!(f, "{}", self.breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_accuracy() {
        let s = RunStats {
            cycles: 100,
            instructions: 250,
            predictions: 10,
            correct_predictions: 9,
            ..RunStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.prediction_accuracy() - 0.9).abs() < 1e-12);
        let empty = RunStats::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.prediction_accuracy(), 1.0);
    }

    #[test]
    fn breakdown_display_sums() {
        let b = CycleBreakdown {
            useful: 50,
            non_useful: 10,
            no_comp_inter_task: 15,
            no_comp_intra_task: 10,
            no_comp_wait_retire: 5,
            no_comp_arb: 0,
            idle: 10,
        };
        assert_eq!(b.total(), 100);
        let s = b.to_string();
        assert!(s.contains("useful computation"), "{s}");
        assert!(s.contains("50.00%"), "{s}");
    }
}
