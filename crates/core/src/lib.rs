//! # multiscalar — the multiscalar processor simulator
//!
//! A from-scratch reproduction of the processor described in *Multiscalar
//! Processors* (G. S. Sohi, S. E. Breach, T. N. Vijaykumar, Proc. 22nd
//! ISCA, 1995): a collection of processing units walked over the program
//! control-flow graph task-by-task by a sequencer, with register results
//! forwarded over a unidirectional ring and speculative memory resolved by
//! an Address Resolution Buffer.
//!
//! * [`Processor`] — the multiscalar processor (sequencer, circular unit
//!   queue, ring, ARB, banked caches, squash/retire, Section-3 cycle
//!   accounting).
//! * [`ScalarProcessor`] — the paper's scalar baseline: one identical
//!   unit, non-speculative memory, 1-cycle cache hits.
//! * [`SimConfig`] — the Section-5.1 machine parameters, with builders for
//!   the 4-/8-unit, 1-/2-way, in-order/out-of-order design points of
//!   Tables 3 and 4.
//! * [`RunStats`]/[`CycleBreakdown`] — results, including the cycle
//!   distribution taxonomy of Section 3.
//! * [`FaultInjector`]/[`DiagnosticSnapshot`] — chaos-testing hooks that
//!   perturb the microarchitecture without changing architectural
//!   results, and the structured machine-state dump attached to
//!   [`SimError::Timeout`], [`SimError::NoProgress`] and
//!   [`SimError::Internal`] failures (see the `ms-chaos` crate).
//!
//! ## Quick start
//!
//! ```
//! use ms_asm::{assemble, AsmMode};
//! use multiscalar::{Processor, ScalarProcessor, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! main:
//! .task targets=INIT2 create=$16
//!     li!f $16, 50
//!     b!s  INIT2
//! .task targets=LOOP create=$2
//! INIT2:
//!     li!f $2, 0
//!     b!s  LOOP
//! .task targets=LOOP,DONE create=$2
//! LOOP:
//!     addiu!f $2, $2, 1
//!     bne!s   $2, $16, LOOP
//! .task targets=halt create=
//! DONE:
//!     halt
//! ";
//! // Same source, two binaries (paper Table 2).
//! let ms = assemble(src, AsmMode::Multiscalar)?;
//! let sc = assemble(src, AsmMode::Scalar)?;
//!
//! let mut scalar = ScalarProcessor::new(sc, SimConfig::scalar())?;
//! let s = scalar.run()?;
//!
//! let mut multi = Processor::new(ms, SimConfig::multiscalar(4))?;
//! let m = multi.run()?;
//! assert_eq!(multi.final_regs().unwrap()[2], scalar.reg(ms_isa::Reg::int(2)));
//! println!("speedup {:.2}", s.cycles as f64 / m.cycles as f64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ablation;
mod acct;
mod config;
mod diag;
mod error;
mod flight;
mod inject;
mod processor;
mod ring;
mod scalar;
mod stats;

pub use ablation::{ArbFullPolicy, PredictorKind};
pub use acct::{CpiAccountant, CycleAccountant, NoAccounting};
pub use config::SimConfig;
pub use diag::{DiagnosticSnapshot, HeadDiag, UnitDiag};
pub use error::SimError;
pub use flight::FlightRecorder;
pub use inject::{FaultInjector, NoFaults};
pub use processor::{Processor, Retirement};
pub use ring::{Ring, RingMsg};
pub use scalar::ScalarProcessor;
pub use stats::{CycleBreakdown, RunStats};

/// The structured trace layer (re-exported from `ms-trace`): attach a
/// [`trace::TraceSink`] via [`Processor::with_sink`] to observe per-cycle
/// [`trace::TraceEvent`]s instead of (or in addition to) aggregate stats.
pub use ms_trace as trace;

#[cfg(test)]
mod tests {
    use super::*;
    use ms_asm::{assemble, AsmMode};
    use ms_isa::Reg;

    /// A counted loop where each iteration is a task (the canonical
    /// multiscalar shape): $2 counts up to $16 = 100.
    const COUNT_LOOP: &str = "
main:
.task targets=INIT2 create=$16
INIT:
    li!f $16, 100
    b!s  INIT2
.task targets=LOOP create=$2
INIT2:
    li!f $2, 0
    b!s  LOOP
.task targets=LOOP,DONE create=$2
LOOP:
    addiu!f $2, $2, 1
    bne!s   $2, $16, LOOP
.task targets=halt create=
DONE:
    halt
";

    #[test]
    fn counted_loop_runs_multiscalar() {
        let prog = assemble(COUNT_LOOP, AsmMode::Multiscalar).unwrap();
        let mut p = Processor::new(prog, SimConfig::multiscalar(4)).unwrap();
        let stats = p.run().expect("run");
        assert_eq!(p.final_regs().unwrap()[2], 100);
        assert_eq!(stats.tasks_retired, 3 + 100);
        assert!(stats.ipc() > 0.0);
        // The loop back-edge should be predicted nearly always.
        assert!(stats.prediction_accuracy() > 0.9, "{}", stats.prediction_accuracy());
    }

    #[test]
    fn multiscalar_matches_scalar_result() {
        let ms = assemble(COUNT_LOOP, AsmMode::Multiscalar).unwrap();
        let sc = assemble(COUNT_LOOP, AsmMode::Scalar).unwrap();
        let mut p = Processor::new(ms, SimConfig::multiscalar(8)).unwrap();
        p.run().unwrap();
        let mut s = ScalarProcessor::new(sc, SimConfig::scalar()).unwrap();
        s.run().unwrap();
        assert_eq!(p.final_regs().unwrap()[2], s.reg(Reg::int(2)));
    }

    #[test]
    fn independent_iterations_speed_up() {
        // Each task does a chunk of independent work; only the induction
        // variable crosses tasks, forwarded early.
        let src = "
main:
.task targets=LOOP create=$2
INIT:
    li!f $2, 0
    b!s  LOOP
.task targets=LOOP,DONE create=$2,$10,$11,$12,$13
LOOP:
    addiu!f $2, $2, 1
    addiu $10, $0, 1
    mul   $11, $10, $10
    mul   $12, $11, $11
    mul   $13, $12, $12
    addiu $10, $13, 1
    mul   $11, $10, $10
    mul   $12, $11, $11
    release $10, $11, $12, $13
    slti  $1, $2, 60
    bne!s $1, $0, LOOP
.task targets=halt create=
DONE:
    halt
";
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let sc = assemble(src, AsmMode::Scalar).unwrap();
        let mut s = ScalarProcessor::new(sc, SimConfig::scalar()).unwrap();
        let sstats = s.run().unwrap();
        let mut p = Processor::new(ms.clone(), SimConfig::multiscalar(8)).unwrap();
        let mstats = p.run().unwrap();
        let speedup = sstats.cycles as f64 / mstats.cycles as f64;
        assert!(speedup > 1.5, "expected speedup, got {speedup:.2}");
        // Dead $10-$13 values are released; $2 forwarded: no deadlock and
        // correct final count.
        assert_eq!(p.final_regs().unwrap()[2], 60);
    }

    #[test]
    fn memory_violation_squashes_and_recovers() {
        // Each task increments a memory cell: a serial chain through
        // memory. Later tasks may load prematurely, so the ARB must
        // detect violations and recovery must still produce 30.
        let src = "
.data
cell: .word 0
.text
main:
.task targets=LOOP create=$2,$16
INIT:
    li!f $2, 0
    li!f $16, 30
    b!s  LOOP
.task targets=LOOP,DONE create=$2,$3,$5
LOOP:
    la   $5, cell
    lw   $3, 0($5)
    addiu $3, $3, 1
    sw   $3, 0($5)
    addiu!f $2, $2, 1
    release $3, $5
    bne!s $2, $16, LOOP
.task targets=halt create=
DONE:
    halt
";
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let sc = assemble(src, AsmMode::Scalar).unwrap();
        let mut p = Processor::new(ms.clone(), SimConfig::multiscalar(4)).unwrap();
        let mstats = p.run().unwrap();
        let mut s = ScalarProcessor::new(sc, SimConfig::scalar()).unwrap();
        s.run().unwrap();
        let cell = ms.symbol("cell").unwrap();
        assert_eq!(p.memory().read_le(cell, 4), 30);
        assert_eq!(s.memory().read_le(cell, 4), 30);
        assert!(
            mstats.memory_squashes > 0,
            "serial chain through memory should violate at least once"
        );
    }

    #[test]
    fn more_units_never_change_results() {
        let mut finals = Vec::new();
        for units in [1usize, 2, 4, 8] {
            let ms = assemble(COUNT_LOOP, AsmMode::Multiscalar).unwrap();
            let mut p = Processor::new(ms, SimConfig::multiscalar(units)).unwrap();
            p.run().unwrap();
            finals.push(p.final_regs().unwrap()[2]);
        }
        assert!(finals.iter().all(|&v| v == 100), "{finals:?}");
    }

    #[test]
    fn determinism() {
        let run = || {
            let ms = assemble(COUNT_LOOP, AsmMode::Multiscalar).unwrap();
            let mut p = Processor::new(ms, SimConfig::multiscalar(8).issue(2)).unwrap();
            let st = p.run().unwrap();
            (st.cycles, st.instructions, st.tasks_squashed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_unannotated_program() {
        let sc = assemble("main: halt\n", AsmMode::Scalar).unwrap();
        match Processor::new(sc, SimConfig::multiscalar(4)) {
            Err(e) => assert!(matches!(e, SimError::BadProgram(_))),
            Ok(_) => panic!("unannotated program should be rejected"),
        }
    }

    #[test]
    fn timeout_guard_fires() {
        let src = "
main:
.task targets=LOOP create=$2
LOOP:
    addiu!f $2, $2, 1
    b!s LOOP
";
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let mut p = Processor::new(ms, SimConfig::multiscalar(2).max_cycles(10_000)).unwrap();
        assert!(matches!(p.run(), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn watchdog_reports_livelock_with_snapshot() {
        // The task never reaches its stop instruction (an intra-task
        // infinite loop), so the head never completes and nothing ever
        // retires: a livelock. The watchdog must fail fast with a
        // populated snapshot instead of grinding to the cycle bound.
        let src = "
main:
.task targets=DONE create=$2
SPIN:
    addiu $2, $2, 1
    b SPIN
.task targets=halt create=
DONE:
    halt
";
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let mut p = Processor::new(ms, SimConfig::multiscalar(2).watchdog(Some(50_000))).unwrap();
        match p.run() {
            Err(SimError::NoProgress { window, snapshot, history }) => {
                assert_eq!(window, 50_000);
                assert_eq!(snapshot.tasks_retired, 0);
                let head = snapshot.head.expect("a task is in flight");
                assert_eq!(head.order, 0);
                assert!(head.age > 49_000, "{}", head.age);
                assert!(!snapshot.units.is_empty());
                let text = snapshot.to_string();
                assert!(text.contains("head: task #0"), "{text}");
                assert!(snapshot.to_json().starts_with("{\"cycle\":"), "{}", snapshot.to_json());
                // The always-on flight recorder sampled state on the way
                // to the failure, oldest first.
                assert!(!history.is_empty());
                assert!(history.windows(2).all(|w| w[0].cycle < w[1].cycle));
                assert!(history.last().unwrap().cycle <= snapshot.cycle);
            }
            other => panic!("expected NoProgress, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_spares_healthy_runs() {
        // A tight window must not fire as long as tasks keep retiring.
        let prog = assemble(COUNT_LOOP, AsmMode::Multiscalar).unwrap();
        let mut p = Processor::new(prog, SimConfig::multiscalar(4).watchdog(Some(1_000))).unwrap();
        let stats = p.run().expect("healthy run must not trip the watchdog");
        assert_eq!(p.final_regs().unwrap()[2], 100);
        assert_eq!(stats.tasks_retired, 103);
    }

    #[test]
    fn function_call_tasks_use_ras() {
        // Caller task ends in jal (Call exit); callee task returns (Return
        // exit) through the sequencer's RAS.
        let src = "
main:
.task targets=FN create=$4,$31
CALLER:
    li!f $4, 21
    jal!f!s FN
.task targets=halt create=
BACK:
    halt
.task targets=ret create=$2
FN:
    addu!f $2, $4, $4
    jr!s  $31
";
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let mut p = Processor::new(ms, SimConfig::multiscalar(4)).unwrap();
        let stats = p.run().unwrap();
        assert_eq!(p.final_regs().unwrap()[2], 42);
        assert_eq!(stats.tasks_retired, 3);
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use ms_asm::{assemble, AsmMode};

    /// A loop whose iterations communicate a register chain — sensitive to
    /// ring latency.
    const CHAIN: &str = "
main:
.task targets=LOOP create=$2,$16
INIT:
    li!f $16, 60
    li!f $2, 0
    b!s  LOOP
.task targets=LOOP,DONE create=$2
LOOP:
    addiu!f $2, $2, 1
    bne!s $2, $16, LOOP
.task targets=halt create=
DONE:
    halt
";

    /// A loop with a data-dependent successor alternating every
    /// iteration — learnable by PAs, hopeless for static prediction.
    const ALTERNATE: &str = "
main:
.task targets=STEP create=$16,$20
INIT:
    li!f $16, 64
    li!f $20, 0
    b!s  STEP
.task targets=EVEN,ODD create=$20
STEP:
    addiu!f $20, $20, 1
    andi $9, $20, 1
    bne!st $9, $0, ODD
    j!s  EVEN
.task targets=STEP,FIN create=
EVEN:
    bne!st $20, $16, STEP
    j!s FIN
.task targets=STEP,FIN create=
ODD:
    bne!st $20, $16, STEP
    j!s FIN
.task targets=halt create=
FIN:
    halt
";

    fn cycles_with(src: &str, cfg: SimConfig) -> u64 {
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let mut p = Processor::new(ms, cfg).unwrap();
        p.run().unwrap().cycles
    }

    #[test]
    fn slower_ring_slows_register_chains() {
        let fast = cycles_with(CHAIN, SimConfig::multiscalar(4));
        let slow = cycles_with(CHAIN, SimConfig::multiscalar(4).ring_latency(4));
        assert!(slow > fast, "ring latency 4 ({slow}) should exceed 1 ({fast})");
    }

    #[test]
    fn static_prediction_loses_on_alternating_successors() {
        let ms = assemble(ALTERNATE, AsmMode::Multiscalar).unwrap();
        let mut pas = Processor::new(ms.clone(), SimConfig::multiscalar(4)).unwrap();
        let pas_stats = pas.run().unwrap();
        let mut stat = Processor::new(
            ms,
            SimConfig::multiscalar(4).predictor(PredictorKind::StaticFirstTarget),
        )
        .unwrap();
        let stat_stats = stat.run().unwrap();
        assert!(
            stat_stats.control_squashes > pas_stats.control_squashes,
            "static {} vs pas {}",
            stat_stats.control_squashes,
            pas_stats.control_squashes
        );
        // Both still compute the same architectural result.
        assert_eq!(pas_stats.instructions, stat_stats.instructions);
    }

    #[test]
    fn last_outcome_predictor_runs_correctly() {
        let c =
            cycles_with(ALTERNATE, SimConfig::multiscalar(4).predictor(PredictorKind::LastOutcome));
        assert!(c > 0);
    }

    #[test]
    fn arb_squash_policy_makes_forward_progress() {
        // Wide store footprints with a tiny ARB: both policies must
        // complete with identical architectural results.
        let src = "
.data
buf: .space 2048
.text
main:
.task targets=LOOP create=$16,$20,$22
INIT:
    li!f $16, 8
    li!f $20, 0
    la!f $22, buf
    b!s  LOOP
.task targets=LOOP,FIN create=$20,$22
LOOP:
    addiu!f $20, $20, 1
    move    $8, $22
    addiu!f $22, $22, 256
    li   $9, 0
FILL:
    addu $10, $8, $9
    sw   $20, 0($10)
    addiu $9, $9, 4
    slti $11, $9, 256
    bne  $11, $0, FILL
    bne!s $20, $16, LOOP
.task targets=halt create=
FIN:
    halt
";
        let ms = assemble(src, AsmMode::Multiscalar).unwrap();
        let mut stall_cfg = SimConfig::multiscalar(4);
        stall_cfg.arb_capacity = 4;
        let mut squash_cfg = stall_cfg.arb_policy(ArbFullPolicy::Squash);
        squash_cfg.arb_capacity = 4;

        let mut p1 = Processor::new(ms.clone(), stall_cfg).unwrap();
        let s1 = p1.run().unwrap();
        let mut p2 = Processor::new(ms.clone(), squash_cfg).unwrap();
        let s2 = p2.run().unwrap();
        assert!(s2.arb_squashes > 0, "squash policy should squash on overflow");
        assert_eq!(s1.arb_squashes, 0, "stall policy never squashes on overflow");
        let buf = ms.symbol("buf").unwrap();
        for off in (0..2048u32).step_by(4) {
            assert_eq!(
                p1.memory().read_le(buf + off, 4),
                p2.memory().read_le(buf + off, 4),
                "policies diverge at {off}"
            );
        }
    }

    #[test]
    fn ring_width_override_is_respected() {
        let narrow = cycles_with(CHAIN, SimConfig::multiscalar(8).issue(2).ring_width(1));
        let wide = cycles_with(CHAIN, SimConfig::multiscalar(8).issue(2).ring_width(4));
        assert!(narrow >= wide, "narrow {narrow} vs wide {wide}");
    }
}
