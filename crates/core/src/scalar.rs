//! The scalar baseline processor.
//!
//! "The speedups are for a multiscalar processor compared to a scalar
//! processor, in which both use identical processing units" (Section 5.3).
//! This runs one [`ProcessingUnit`] over the *scalar* binary (no task
//! descriptors, no tag bits, no releases), with direct non-speculative
//! memory (no ARB) and the paper's 1-cycle data-cache hit time.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::stats::RunStats;
use ms_isa::{PredecodedProgram, Program, Reg, RegMask, NUM_REGS, STACK_TOP};
use ms_memsys::{DataBanks, MemBus, Memory};
use ms_pipeline::{ExitKind, MemPorts, ProcessingUnit};

/// The scalar baseline.
pub struct ScalarProcessor {
    cfg: SimConfig,
    prog: PredecodedProgram,
    unit: ProcessingUnit,
    mem: Memory,
    bus: MemBus,
    banks: DataBanks,
    now: u64,
    done: bool,
}

impl ScalarProcessor {
    /// Builds a scalar processor for `prog` (assembled in scalar mode).
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] for an empty program.
    pub fn new(prog: Program, cfg: SimConfig) -> Result<ScalarProcessor, SimError> {
        if prog.text.is_empty() {
            return Err(SimError::BadProgram("empty text segment".into()));
        }
        let mut mem = Memory::new();
        for seg in &prog.data {
            mem.write_slice(seg.base, &seg.bytes);
        }
        let mut unit = ProcessingUnit::new(0, cfg.unit_config());
        let mut boot = [0u64; NUM_REGS];
        boot[Reg::SP.index()] = STACK_TOP as u64;
        unit.assign_task(prog.entry, RegMask::EMPTY, &boot, RegMask::EMPTY, 0);
        let prog = PredecodedProgram::new(prog);
        Ok(ScalarProcessor {
            unit,
            mem,
            bus: MemBus::new(cfg.bus),
            banks: DataBanks::new(cfg.banks),
            now: 0,
            done: false,
            prog,
            cfg,
        })
    }

    /// Writes raw bytes into simulated memory (workload inputs).
    pub fn write_mem(&mut self, addr: u32, bytes: &[u8]) {
        self.mem.write_slice(addr, bytes);
    }

    /// The architectural memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.prog.program()
    }

    /// Reads a register (after a run, the final architectural value).
    pub fn reg(&self, r: Reg) -> u64 {
        self.unit.reg(r)
    }

    /// Runs to the `halt` instruction.
    ///
    /// # Errors
    /// Propagates unit faults and the cycle bound.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        assert!(!self.done, "scalar processor already ran");
        let mut halted = false;
        loop {
            if self.now >= self.cfg.max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.cfg.max_cycles,
                    snapshot: None,
                    history: Vec::new(),
                });
            }
            let mut ports = MemPorts {
                mem: &mut self.mem,
                bus: &mut self.bus,
                banks: &mut self.banks,
                arb: None,
                stage: 0,
                active_ranks: 1,
            };
            let out = self.unit.tick(self.now, &self.prog, &mut ports);
            if let Some(f) = self.unit.fault() {
                return Err(SimError::Fault(f.to_owned()));
            }
            if out.exit == Some(ExitKind::Halt) {
                halted = true;
            }
            if halted && self.unit.is_complete(self.now) {
                break;
            }
            self.now += 1;
        }
        self.done = true;
        let c = self.unit.counters();
        let mut stats = RunStats {
            cycles: self.now + 1,
            instructions: c.instructions,
            tasks_retired: 1,
            ..RunStats::default()
        };
        stats.breakdown.useful = c.busy_cycles;
        stats.breakdown.no_comp_inter_task = c.inter_task_cycles;
        stats.breakdown.no_comp_intra_task = c.intra_task_cycles;
        stats.breakdown.no_comp_wait_retire = c.wait_retire_cycles;
        stats.dcache = self.banks.stats();
        stats.icache = self.unit.icache_stats();
        stats.bus = self.bus.stats();
        Ok(stats)
    }
}
