//! The scalar baseline processor.
//!
//! "The speedups are for a multiscalar processor compared to a scalar
//! processor, in which both use identical processing units" (Section 5.3).
//! This runs one [`ProcessingUnit`] over the *scalar* binary (no task
//! descriptors, no tag bits, no releases), with direct non-speculative
//! memory (no ARB) and the paper's 1-cycle data-cache hit time.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::stats::RunStats;
use ms_isa::{MemWidth, PredecodedProgram, Program, Reg, RegMask, NUM_REGS, STACK_TOP};
use ms_memsys::{DataBanks, MemBus, Memory};
use ms_pipeline::{execute, extend_load, ExitKind, MemPorts, ProcessingUnit};

/// The scalar baseline.
pub struct ScalarProcessor {
    cfg: SimConfig,
    prog: PredecodedProgram,
    unit: ProcessingUnit,
    mem: Memory,
    bus: MemBus,
    banks: DataBanks,
    now: u64,
    done: bool,
    /// Final register file of a [`ScalarProcessor::run_fast`] run (the
    /// fast path executes outside the pipeline's register file).
    fast_regs: Option<[u64; NUM_REGS]>,
}

impl ScalarProcessor {
    /// Builds a scalar processor for `prog` (assembled in scalar mode).
    ///
    /// # Errors
    /// Returns [`SimError::BadProgram`] for an empty program.
    pub fn new(prog: Program, cfg: SimConfig) -> Result<ScalarProcessor, SimError> {
        if prog.text.is_empty() {
            return Err(SimError::BadProgram("empty text segment".into()));
        }
        let mut mem = Memory::new();
        for seg in &prog.data {
            mem.write_slice(seg.base, &seg.bytes);
        }
        let mut unit = ProcessingUnit::new(0, cfg.unit_config());
        // No per-unit parking here: the run loop's whole-machine skip
        // subsumes it (the unit *is* the machine), so parking would
        // only double the probe cost.
        unit.set_parking(false);
        let mut boot = [0u64; NUM_REGS];
        boot[Reg::SP.index()] = STACK_TOP as u64;
        unit.assign_task(prog.entry, RegMask::EMPTY, &boot, RegMask::EMPTY, 0);
        let prog = PredecodedProgram::new(prog);
        Ok(ScalarProcessor {
            unit,
            mem,
            bus: MemBus::new(cfg.bus),
            banks: DataBanks::new(cfg.banks),
            now: 0,
            done: false,
            fast_regs: None,
            prog,
            cfg,
        })
    }

    /// Writes raw bytes into simulated memory (workload inputs).
    pub fn write_mem(&mut self, addr: u32, bytes: &[u8]) {
        self.mem.write_slice(addr, bytes);
    }

    /// The architectural memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.prog.program()
    }

    /// Reads a register (after a run, the final architectural value).
    pub fn reg(&self, r: Reg) -> u64 {
        match &self.fast_regs {
            Some(regs) => {
                if r.is_zero() {
                    0
                } else {
                    regs[r.index()]
                }
            }
            None => self.unit.reg(r),
        }
    }

    /// Runs to the `halt` instruction.
    ///
    /// # Errors
    /// Propagates unit faults and the cycle bound.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        assert!(!self.done, "scalar processor already ran");
        let mut halted = false;
        // Probe cooldown: cycles to sit out after a failed skip probe.
        // Scalar stalls are mostly 1–2-cycle local dependences, so most
        // probes fail; backing off a few cycles cuts probe waste ~4×
        // while a genuinely long span (miss fill, drain) still gets
        // skipped within a few cycles of starting. Purely a host-time
        // heuristic — skipping later never changes simulated state.
        let mut probe_debt: u32 = 0;
        loop {
            if self.now >= self.cfg.max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.cfg.max_cycles,
                    snapshot: None,
                    history: Vec::new(),
                });
            }
            let mut ports = MemPorts {
                mem: &mut self.mem,
                bus: &mut self.bus,
                banks: &mut self.banks,
                arb: None,
                stage: 0,
                active_ranks: 1,
            };
            let out = self.unit.tick(self.now, &self.prog, &mut ports);
            if let Some(f) = self.unit.fault() {
                return Err(SimError::Fault(f.to_owned()));
            }
            if out.exit == Some(ExitKind::Halt) {
                halted = true;
            }
            if halted && self.unit.is_complete(self.now) {
                break;
            }
            self.now += 1;
            // Event-driven skip-ahead (DESIGN.md §13): when the unit is
            // provably quiet until `wake`, jump the clock and charge the
            // skipped cycles in bulk. There is no ring or sequencer in
            // scalar mode, so the unit's own probe is the whole machine;
            // clamping to `max_cycles` keeps the timeout cycle-exact.
            // Probe only stall reasons that produce multi-cycle waits
            // (FU latency, miss fills, the final drain): FetchEmpty
            // resolves next cycle, so probing it can never win.
            if self.cfg.skip_ahead
                && out.issued == 0
                && matches!(
                    self.unit.stall_reason(),
                    Some(
                        ms_trace::StallReason::LocalDep
                            | ms_trace::StallReason::CacheMiss
                            | ms_trace::StallReason::Drain
                            | ms_trace::StallReason::WaitRetire
                    )
                )
            {
                if probe_debt > 0 {
                    probe_debt -= 1;
                } else {
                    let mut skipped = false;
                    if let Some((wake, reason)) = self.unit.quiet_until(self.now) {
                        let wake = wake.min(self.cfg.max_cycles);
                        if wake > self.now {
                            self.unit.skip_charge(wake - self.now, reason);
                            self.now = wake;
                            skipped = true;
                        }
                    }
                    if !skipped {
                        probe_debt = 3;
                    }
                }
            }
        }
        self.done = true;
        let c = self.unit.counters();
        let mut stats = RunStats {
            cycles: self.now + 1,
            instructions: c.instructions,
            tasks_retired: 1,
            ..RunStats::default()
        };
        stats.breakdown.useful = c.busy_cycles;
        stats.breakdown.no_comp_inter_task = c.inter_task_cycles;
        stats.breakdown.no_comp_intra_task = c.intra_task_cycles;
        stats.breakdown.no_comp_wait_retire = c.wait_retire_cycles;
        stats.dcache = self.banks.stats();
        stats.icache = self.unit.icache_stats();
        stats.bus = self.bus.stats();
        Ok(stats)
    }

    /// Greedy fast-forward run: executes the program architecturally —
    /// one instruction per loop iteration, no pipeline, cache, or bus
    /// modelling — and reports only what the differential oracle
    /// consumes: the final memory image, the final register file
    /// (served through [`ScalarProcessor::reg`]), and the exact retired
    /// instruction count.
    ///
    /// The timing fields of the returned [`RunStats`] are **not**
    /// meaningful (`cycles` equals `instructions`); anything that
    /// compares cycle counts — the benchmark tables, the CPI stacks —
    /// must use [`ScalarProcessor::run`]. `ms-fuzz`'s differential
    /// oracle is the intended caller: it only compares memory, registers
    /// and instruction counts, so the reference side can skip the
    /// microarchitecture entirely.
    ///
    /// # Errors
    /// Faults on fetch outside the text segment; times out after
    /// `max_cycles` *instructions* (the ticked bound is always at least
    /// as tight, since each instruction costs ≥ 1 cycle).
    pub fn run_fast(&mut self) -> Result<RunStats, SimError> {
        assert!(!self.done, "scalar processor already ran");
        let mut regs = [0u64; NUM_REGS];
        regs[Reg::SP.index()] = STACK_TOP as u64;
        let mut pc = self.prog.entry;
        let mut instructions = 0u64;
        loop {
            if instructions >= self.cfg.max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.cfg.max_cycles,
                    snapshot: None,
                    history: Vec::new(),
                });
            }
            let Some((instr, _meta)) = self.prog.fetch(pc) else {
                return Err(SimError::Fault(format!(
                    "unit 0: instruction fetch outside text segment at {pc:#x}"
                )));
            };
            let outcome = execute(&instr, pc, |r| if r.is_zero() { 0 } else { regs[r.index()] });
            instructions += 1;
            if let Some((rd, v)) = outcome.writeback {
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
            }
            if let Some(req) = outcome.mem {
                if req.is_store {
                    self.mem.write_le(req.addr, req.size, req.value);
                } else {
                    let raw = self.mem.read_le(req.addr, req.size);
                    let width = match req.size {
                        1 => MemWidth::B,
                        2 => MemWidth::H,
                        4 => MemWidth::W,
                        _ => MemWidth::D,
                    };
                    let v = extend_load(width, req.signed, raw);
                    let rd = req.dest.expect("loads have destinations");
                    if !rd.is_zero() {
                        regs[rd.index()] = v;
                    }
                }
            }
            if outcome.halt {
                break;
            }
            pc = match outcome.control {
                Some(c) => c.next_pc,
                None => pc + 4,
            };
        }
        self.done = true;
        self.fast_regs = Some(regs);
        Ok(RunStats { cycles: instructions, instructions, tasks_retired: 1, ..RunStats::default() })
    }
}
