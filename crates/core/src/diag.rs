//! Structured machine-state snapshots for failure diagnosis.
//!
//! When a run fails — cycle bound hit, forward-progress watchdog fired,
//! or an internal invariant broke — the error carries a
//! [`DiagnosticSnapshot`] of the microarchitectural state at the point of
//! failure: per-unit pipeline activity and stall reason, ring queue
//! occupancy, ARB bank fill/violation counters, and the head task's
//! identity and age. The snapshot [`Display`](std::fmt::Display)s as a
//! readable dump and serializes to JSON (fixed field order) for
//! `mstrace`-style tooling.
//!
//! Snapshots taken under skip-ahead are identical to ticked ones: the
//! timeout/watchdog cycle is pinned by the scheduler's wake clamps
//! (DESIGN.md §13.2), and the per-unit stall reason a parked unit
//! reports is the one its quiet certificate proved constant.

use ms_trace::{json, StallReason};
use std::fmt;

/// Per-unit state at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitDiag {
    /// Unit index.
    pub unit: usize,
    /// Whether a task is assigned.
    pub active: bool,
    /// Dispatch order of the assigned task, if any.
    pub order: Option<u64>,
    /// Entry address of the assigned task, if any.
    pub entry: Option<u32>,
    /// Whether the assigned task has fully completed.
    pub complete: bool,
    /// Registers still awaiting inter-task delivery.
    pub awaiting: u32,
    /// Why the unit issued nothing on its last stalled cycle (`None`
    /// while issuing, or before the first stall).
    pub stall: Option<StallReason>,
    /// Cumulative stalled cycles per reason over the unit's lifetime
    /// (across task assignments), indexed by [`StallReason::index`]. The
    /// last-stall field above is one frame; this is the whole film.
    pub stall_hist: [u64; StallReason::COUNT],
}

/// The head (oldest in-flight) task at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeadDiag {
    /// Dispatch order.
    pub order: u64,
    /// Processing unit.
    pub unit: usize,
    /// Task entry address.
    pub entry: u32,
    /// Cycles since assignment.
    pub age: u64,
    /// Whether the successor check already ran.
    pub validated: bool,
    /// Whether the task's stop has resolved.
    pub exit_resolved: bool,
}

/// A structured dump of simulator state at the moment of a failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagnosticSnapshot {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Cycle of the most recent task retirement (0 if none yet).
    pub last_retire_cycle: u64,
    /// Tasks retired so far.
    pub tasks_retired: u64,
    /// Whether the sequencer has halted.
    pub halted: bool,
    /// Sequencer pending-assignment state (debug rendering).
    pub pending: String,
    /// The head task, if any are in flight.
    pub head: Option<HeadDiag>,
    /// One entry per processing unit.
    pub units: Vec<UnitDiag>,
    /// Ring messages in flight, total.
    pub ring_in_flight: usize,
    /// Ring output-queue depth per unit.
    pub ring_queues: Vec<usize>,
    /// Live ARB entries per bank.
    pub arb_bank_occupancy: Vec<usize>,
    /// ARB allocation failures so far.
    pub arb_full_events: u64,
    /// ARB memory-order violations so far.
    pub arb_violations: u64,
}

impl DiagnosticSnapshot {
    /// One-line summary (head task + last-retire cycle) for error
    /// `Display` impls.
    pub fn summary(&self) -> String {
        match self.head {
            Some(h) => format!(
                "head #{} u{} @{:#x} age {} cycles, last retire at cycle {}",
                h.order, h.unit, h.entry, h.age, self.last_retire_cycle
            ),
            None => format!(
                "no task in flight (halted={}), last retire at cycle {}",
                self.halted, self.last_retire_cycle
            ),
        }
    }

    /// Serializes the snapshot as a JSON object with a fixed field order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let field = |out: &mut String, name: &str, val: String| {
            if out.len() > 1 {
                out.push(',');
            }
            json::push_str(out, name);
            out.push(':');
            out.push_str(&val);
        };
        field(&mut out, "cycle", self.cycle.to_string());
        field(&mut out, "last_retire_cycle", self.last_retire_cycle.to_string());
        field(&mut out, "tasks_retired", self.tasks_retired.to_string());
        field(&mut out, "halted", self.halted.to_string());
        field(&mut out, "pending", json::string(&self.pending));
        let head = match &self.head {
            Some(h) => format!(
                "{{\"order\":{},\"unit\":{},\"entry\":{},\"age\":{},\"validated\":{},\"exit_resolved\":{}}}",
                h.order, h.unit, h.entry, h.age, h.validated, h.exit_resolved
            ),
            None => "null".into(),
        };
        field(&mut out, "head", head);
        let mut units = String::from("[");
        for (i, u) in self.units.iter().enumerate() {
            if i > 0 {
                units.push(',');
            }
            let stall = match u.stall {
                Some(r) => json::string(r.as_str()),
                None => "null".into(),
            };
            let mut hist = String::from("{");
            for (ri, r) in StallReason::ALL.iter().enumerate() {
                if ri > 0 {
                    hist.push(',');
                }
                json::push_str(&mut hist, r.as_str());
                hist.push(':');
                hist.push_str(&u.stall_hist[ri].to_string());
            }
            hist.push('}');
            units.push_str(&format!(
                "{{\"unit\":{},\"active\":{},\"order\":{},\"entry\":{},\"complete\":{},\"awaiting\":{},\"stall\":{},\"stall_hist\":{}}}",
                u.unit,
                u.active,
                u.order.map_or("null".into(), |o| o.to_string()),
                u.entry.map_or("null".into(), |e| e.to_string()),
                u.complete,
                u.awaiting,
                stall,
                hist,
            ));
        }
        units.push(']');
        field(&mut out, "units", units);
        field(&mut out, "ring_in_flight", self.ring_in_flight.to_string());
        field(&mut out, "ring_queues", join_usize(&self.ring_queues));
        field(&mut out, "arb_bank_occupancy", join_usize(&self.arb_bank_occupancy));
        field(&mut out, "arb_full_events", self.arb_full_events.to_string());
        field(&mut out, "arb_violations", self.arb_violations.to_string());
        out.push('}');
        out
    }
}

fn join_usize(v: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}

impl fmt::Display for DiagnosticSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== diagnostic snapshot @ cycle {} (retired {}, last retire @ {}, halted {}) ===",
            self.cycle, self.tasks_retired, self.last_retire_cycle, self.halted
        )?;
        writeln!(f, "sequencer: pending={}", self.pending)?;
        match &self.head {
            Some(h) => writeln!(
                f,
                "head: task #{} on u{} @{:#x}, age {} cycles, validated={} exit_resolved={}",
                h.order, h.unit, h.entry, h.age, h.validated, h.exit_resolved
            )?,
            None => writeln!(f, "head: none")?,
        }
        for u in &self.units {
            if u.active {
                write!(
                    f,
                    "u{}: #{} @{:#x} complete={} awaiting={} stall={}",
                    u.unit,
                    u.order.unwrap_or(u64::MAX),
                    u.entry.unwrap_or(0),
                    u.complete,
                    u.awaiting,
                    u.stall.map_or("-", StallReason::as_str),
                )?;
            } else {
                write!(f, "u{}: idle", u.unit)?;
            }
            // Cumulative per-reason stall counts (nonzero entries only).
            if u.stall_hist.iter().any(|&c| c > 0) {
                write!(f, " stalls{{")?;
                let mut first = true;
                for r in StallReason::ALL {
                    let c = u.stall_hist[r.index()];
                    if c > 0 {
                        if !first {
                            write!(f, ",")?;
                        }
                        write!(f, "{}:{c}", r.as_str())?;
                        first = false;
                    }
                }
                write!(f, "}}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "ring: {} in flight, queues {:?}", self.ring_in_flight, self.ring_queues)?;
        write!(
            f,
            "arb: bank occupancy {:?}, {} full events, {} violations",
            self.arb_bank_occupancy, self.arb_full_events, self.arb_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiagnosticSnapshot {
        DiagnosticSnapshot {
            cycle: 100,
            last_retire_cycle: 40,
            tasks_retired: 3,
            halted: false,
            pending: "Unknown".into(),
            head: Some(HeadDiag {
                order: 3,
                unit: 1,
                entry: 0x400,
                age: 60,
                validated: false,
                exit_resolved: false,
            }),
            units: vec![
                UnitDiag {
                    unit: 0,
                    active: false,
                    order: None,
                    entry: None,
                    complete: false,
                    awaiting: 0,
                    stall: None,
                    stall_hist: [0; StallReason::COUNT],
                },
                UnitDiag {
                    unit: 1,
                    active: true,
                    order: Some(3),
                    entry: Some(0x400),
                    complete: false,
                    awaiting: 2,
                    stall: Some(StallReason::RemoteDep),
                    stall_hist: {
                        let mut h = [0; StallReason::COUNT];
                        h[StallReason::RemoteDep.index()] = 12;
                        h[StallReason::FetchEmpty.index()] = 3;
                        h
                    },
                },
            ],
            ring_in_flight: 1,
            ring_queues: vec![0, 1],
            arb_bank_occupancy: vec![4, 0],
            arb_full_events: 0,
            arb_violations: 2,
        }
    }

    #[test]
    fn display_mentions_head_and_stalls() {
        let s = sample().to_string();
        assert!(s.contains("task #3 on u1 @0x400"), "{s}");
        assert!(s.contains("stall=remote_dep"), "{s}");
        assert!(s.contains("u0: idle"), "{s}");
        // Cumulative histogram: nonzero reasons only, in index order.
        assert!(s.contains("stalls{fetch_empty:3,remote_dep:12}"), "{s}");
    }

    #[test]
    fn json_has_fixed_shape() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"cycle\":100,\"last_retire_cycle\":40,"), "{j}");
        assert!(j.contains("\"stall\":\"remote_dep\""), "{j}");
        assert!(j.contains("\"stall_hist\":{\"fetch_empty\":3,"), "{j}");
        assert!(j.contains("\"remote_dep\":12"), "{j}");
        assert!(j.contains("\"ring_queues\":[0,1]"), "{j}");
        assert!(j.ends_with('}'));
    }

    #[test]
    fn summary_is_one_line() {
        let s = sample().summary();
        assert!(!s.contains('\n'));
        assert!(s.contains("head #3"));
    }
}
