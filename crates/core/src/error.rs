//! Simulation errors.

use std::fmt;

/// A fatal simulation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The sequencer needed a task descriptor at `pc` and found none —
    /// the program's task annotation does not cover this control path.
    NoDescriptor {
        /// The uncovered entry address.
        pc: u32,
    },
    /// A processing unit faulted (e.g. fetch outside the text segment).
    Fault(String),
    /// The run exceeded the configured cycle bound.
    Timeout {
        /// The bound that was hit.
        cycles: u64,
    },
    /// The program is malformed (e.g. no instructions, bad entry).
    BadProgram(String),
    /// A task's actual exit address is not among its descriptor's targets
    /// — the annotation is inconsistent with the code.
    ExitNotInTargets {
        /// The task entry.
        task: u32,
        /// Where it actually went.
        exit: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoDescriptor { pc } => {
                write!(
                    f,
                    "no task descriptor at {pc:#x}; the task annotation does not cover this path"
                )
            }
            SimError::Fault(msg) => write!(f, "processing unit fault: {msg}"),
            SimError::Timeout { cycles } => write!(f, "simulation exceeded {cycles} cycles"),
            SimError::BadProgram(msg) => write!(f, "malformed program: {msg}"),
            SimError::ExitNotInTargets { task, exit } => {
                write!(
                    f,
                    "task at {task:#x} exited to {exit}, which is not among its descriptor targets"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
