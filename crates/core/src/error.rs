//! Simulation errors.

use crate::diag::DiagnosticSnapshot;
use std::fmt;

/// A fatal simulation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The sequencer needed a task descriptor at `pc` and found none —
    /// the program's task annotation does not cover this control path.
    NoDescriptor {
        /// The uncovered entry address.
        pc: u32,
    },
    /// A processing unit faulted (e.g. fetch outside the text segment).
    Fault(String),
    /// The run exceeded the configured cycle bound.
    Timeout {
        /// The bound that was hit.
        cycles: u64,
        /// Machine state at the bound (`None` for the scalar baseline,
        /// which has no multiscalar state to report).
        snapshot: Option<Box<DiagnosticSnapshot>>,
        /// Flight-recorder history: periodic snapshots leading up to the
        /// bound, oldest first (empty for the scalar baseline).
        history: Vec<DiagnosticSnapshot>,
    },
    /// No task retired for a full watchdog window — the machine is
    /// livelocked or deadlocked (see [`crate::SimConfig::watchdog`]).
    NoProgress {
        /// The watchdog window that elapsed without a retirement.
        window: u64,
        /// Machine state when the watchdog fired.
        snapshot: Box<DiagnosticSnapshot>,
        /// Flight-recorder history: periodic snapshots leading up to the
        /// failure, oldest first.
        history: Vec<DiagnosticSnapshot>,
    },
    /// An internal simulator invariant broke. Carries the machine state
    /// instead of panicking, so the break is diagnosable post-mortem.
    Internal {
        /// Which invariant broke.
        what: String,
        /// Machine state at the break.
        snapshot: Box<DiagnosticSnapshot>,
    },
    /// The program is malformed (e.g. no instructions, bad entry).
    BadProgram(String),
    /// A task's actual exit address is not among its descriptor's targets
    /// — the annotation is inconsistent with the code.
    ExitNotInTargets {
        /// The task entry.
        task: u32,
        /// Where it actually went.
        exit: String,
    },
}

impl SimError {
    /// The diagnostic snapshot attached to this error, if any.
    pub fn snapshot(&self) -> Option<&DiagnosticSnapshot> {
        match self {
            SimError::Timeout { snapshot, .. } => snapshot.as_deref(),
            SimError::NoProgress { snapshot, .. } | SimError::Internal { snapshot, .. } => {
                Some(snapshot)
            }
            _ => None,
        }
    }

    /// The flight-recorder history attached to this error (periodic
    /// snapshots leading up to the failure, oldest first; empty when the
    /// error carries none).
    pub fn history(&self) -> &[DiagnosticSnapshot] {
        match self {
            SimError::Timeout { history, .. } | SimError::NoProgress { history, .. } => history,
            _ => &[],
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoDescriptor { pc } => {
                write!(
                    f,
                    "no task descriptor at {pc:#x}; the task annotation does not cover this path"
                )
            }
            SimError::Fault(msg) => write!(f, "processing unit fault: {msg}"),
            SimError::Timeout { cycles, snapshot, history } => {
                write!(f, "simulation exceeded {cycles} cycles")?;
                if let Some(s) = snapshot {
                    write!(f, " ({})", s.summary())?;
                }
                if !history.is_empty() {
                    write!(f, " [{} flight-recorder frames]", history.len())?;
                }
                Ok(())
            }
            SimError::NoProgress { window, snapshot, history } => {
                write!(f, "no task retired for {window} cycles ({})", snapshot.summary())?;
                if !history.is_empty() {
                    write!(f, " [{} flight-recorder frames]", history.len())?;
                }
                Ok(())
            }
            SimError::Internal { what, snapshot } => {
                write!(f, "internal invariant broke: {what} ({})", snapshot.summary())
            }
            SimError::BadProgram(msg) => write!(f, "malformed program: {msg}"),
            SimError::ExitNotInTargets { task, exit } => {
                write!(
                    f,
                    "task at {task:#x} exited to {exit}, which is not among its descriptor targets"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
