//! Simulator configuration.

use ms_memsys::{BusConfig, DataBanksConfig, ICacheConfig};
use ms_pipeline::{LatencyTable, UnitConfig};

/// Configuration of a multiscalar (or scalar-baseline) processor.
///
/// Defaults reproduce the paper's Section 5.1 parameters. The four
/// configurations evaluated in Tables 3 and 4 are
/// `SimConfig::multiscalar(4 | 8).issue(1 | 2).out_of_order(bool)`
/// against `SimConfig::scalar().issue(..).out_of_order(..)`.
///
/// ```
/// use multiscalar::SimConfig;
/// let cfg = SimConfig::multiscalar(8).issue(2).out_of_order(true);
/// assert_eq!(cfg.units, 8);
/// assert_eq!(cfg.banks.nbanks, 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// Number of processing units (1 for the scalar baseline).
    pub units: usize,
    /// Per-unit issue width (1 or 2).
    pub issue_width: usize,
    /// Out-of-order issue within each unit.
    pub ooo: bool,
    /// OoO consideration window.
    pub window: usize,
    /// Operation latencies (Table 1).
    pub latencies: LatencyTable,
    /// Instruction-cache configuration (per unit).
    pub icache: ICacheConfig,
    /// Data-bank configuration.
    pub banks: DataBanksConfig,
    /// Memory-bus configuration.
    pub bus: BusConfig,
    /// ARB entries per bank (the paper uses 256).
    pub arb_capacity: usize,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
    /// Forward-progress watchdog: if no task retires for this many
    /// cycles, the run fails fast with [`crate::SimError::NoProgress`]
    /// (carrying a diagnostic snapshot) instead of running to the cycle
    /// bound. `None` disables the watchdog.
    pub watchdog: Option<u64>,
    /// Ring hop latency in cycles (paper: 1).
    pub ring_hop_latency: u64,
    /// Ring width override; `None` matches the issue width (paper).
    pub ring_width: Option<usize>,
    /// Task-prediction scheme (paper default: PAs).
    pub predictor: crate::PredictorKind,
    /// Response to ARB capacity exhaustion (paper default: stall).
    pub arb_full_policy: crate::ArbFullPolicy,
    /// Event-driven skip-ahead stepping (on by default): when the whole
    /// machine is provably quiet for N cycles, the clock jumps by N and
    /// the skipped cycles are bulk-charged to the same accounting
    /// buckets the ticked loop would have used. Purely a host-side
    /// optimization — results are byte-identical in both modes (see
    /// DESIGN.md §13) — so it is deliberately *excluded* from
    /// [`SimConfig::stable_key`].
    pub skip_ahead: bool,
}

impl SimConfig {
    /// The paper's multiscalar configuration for `units` processing units
    /// (2 × units data banks, 2-cycle data-cache hits).
    ///
    /// # Panics
    /// Panics if `units` is zero.
    pub fn multiscalar(units: usize) -> SimConfig {
        assert!(units > 0, "need at least one unit");
        SimConfig {
            units,
            issue_width: 1,
            ooo: false,
            window: 16,
            latencies: LatencyTable::default(),
            icache: ICacheConfig::default(),
            banks: DataBanksConfig::multiscalar(units),
            bus: BusConfig::default(),
            arb_capacity: 256,
            max_cycles: 2_000_000_000,
            watchdog: Some(10_000_000),
            ring_hop_latency: 1,
            ring_width: None,
            predictor: crate::PredictorKind::Pas,
            arb_full_policy: crate::ArbFullPolicy::Stall,
            skip_ahead: true,
        }
    }

    /// The paper's scalar baseline (one aggressive unit, 1-cycle data
    /// cache hits, no multiscalar overheads).
    pub fn scalar() -> SimConfig {
        SimConfig { units: 1, banks: DataBanksConfig::scalar(), ..SimConfig::multiscalar(1) }
    }

    /// Sets the per-unit issue width (builder style).
    ///
    /// # Panics
    /// Panics unless `width` is 1 or 2.
    pub fn issue(mut self, width: usize) -> SimConfig {
        assert!(width == 1 || width == 2, "paper evaluates 1- and 2-way units");
        self.issue_width = width;
        self
    }

    /// Enables or disables out-of-order issue (builder style).
    pub fn out_of_order(mut self, ooo: bool) -> SimConfig {
        self.ooo = ooo;
        self
    }

    /// Overrides the cycle safety bound (builder style).
    pub fn max_cycles(mut self, cycles: u64) -> SimConfig {
        self.max_cycles = cycles;
        self
    }

    /// Sets the forward-progress watchdog window, or disables it with
    /// `None` (builder style). The default is 10M cycles: far above any
    /// legitimate inter-retirement gap, far below the cycle bound.
    pub fn watchdog(mut self, window: Option<u64>) -> SimConfig {
        self.watchdog = window;
        self
    }

    /// Sets the ring hop latency (builder style; ablation knob).
    ///
    /// # Panics
    /// Panics if `cycles` is zero.
    pub fn ring_latency(mut self, cycles: u64) -> SimConfig {
        assert!(cycles > 0, "ring hops take at least one cycle");
        self.ring_hop_latency = cycles;
        self
    }

    /// Overrides the ring width (builder style; ablation knob).
    pub fn ring_width(mut self, width: usize) -> SimConfig {
        assert!(width > 0, "ring width must be positive");
        self.ring_width = Some(width);
        self
    }

    /// Selects the task-prediction scheme (builder style; ablation knob).
    pub fn predictor(mut self, kind: crate::PredictorKind) -> SimConfig {
        self.predictor = kind;
        self
    }

    /// Selects the ARB-overflow policy (builder style; ablation knob).
    pub fn arb_policy(mut self, policy: crate::ArbFullPolicy) -> SimConfig {
        self.arb_full_policy = policy;
        self
    }

    /// Enables or disables event-driven skip-ahead stepping (builder
    /// style). On by default; turning it off forces the classic
    /// one-cycle-per-step loop. The two modes are observationally
    /// indistinguishable — `RunStats` and CPI stacks are byte-identical
    /// (pinned by `tests/golden_stats.rs` and `tests/cpi_conservation.rs`)
    /// — so the sweep-cache key deliberately ignores the knob:
    ///
    /// ```
    /// use multiscalar::SimConfig;
    /// let fast = SimConfig::multiscalar(4);
    /// let ticked = fast.skip_ahead(false);
    /// assert!(fast.skip_ahead && !ticked.skip_ahead);
    /// assert_eq!(fast.stable_key(), ticked.stable_key());
    /// ```
    pub fn skip_ahead(mut self, on: bool) -> SimConfig {
        self.skip_ahead = on;
        self
    }

    /// A canonical, versioned, line-oriented serialization of every field
    /// that affects simulation results.
    ///
    /// Two configs produce the same key iff they are equal, and the
    /// rendering is stable across processes and Rust releases (unlike
    /// `Hash`, whose hasher may change), so it is safe to use in on-disk
    /// cache keys. The leading `simconfig v1` token must be bumped
    /// whenever a field is added, removed, or changes meaning.
    ///
    /// [`SimConfig::skip_ahead`] is deliberately absent: it cannot
    /// affect simulation results (both modes are byte-identical), and
    /// keying on it would needlessly split the sweep cache between the
    /// fast and the ticked stepper.
    pub fn stable_key(&self) -> String {
        let predictor = match self.predictor {
            crate::PredictorKind::Pas => "pas",
            crate::PredictorKind::StaticFirstTarget => "static-first-target",
            crate::PredictorKind::LastOutcome => "last-outcome",
        };
        let arb_policy = match self.arb_full_policy {
            crate::ArbFullPolicy::Stall => "stall",
            crate::ArbFullPolicy::Squash => "squash",
        };
        let ring_width = match self.ring_width {
            Some(w) => w.to_string(),
            None => "issue".to_string(),
        };
        let watchdog = match self.watchdog {
            Some(w) => w.to_string(),
            None => "off".to_string(),
        };
        let l = &self.latencies;
        format!(
            "simconfig v2;units={};issue={};ooo={};window={};\
             lat={},{},{},{},{},{},{},{},{},{},{},{};\
             icache={},{},{},{};banks={},{},{},{},{};bus={},{};\
             arb_capacity={};max_cycles={};watchdog={};ring_hop={};ring_width={};\
             predictor={};arb_full={}",
            self.units,
            self.issue_width,
            self.ooo,
            self.window,
            l.int_alu,
            l.int_mul,
            l.int_div,
            l.load,
            l.store,
            l.branch,
            l.fp_add_s,
            l.fp_mul_s,
            l.fp_div_s,
            l.fp_add_d,
            l.fp_mul_d,
            l.fp_div_d,
            self.icache.size_bytes,
            self.icache.block_bytes,
            self.icache.hit_time,
            self.icache.miss_extra,
            self.banks.nbanks,
            self.banks.bank_bytes,
            self.banks.block_bytes,
            self.banks.hit_time,
            self.banks.miss_extra,
            self.bus.first_beat,
            self.bus.extra_beat,
            self.arb_capacity,
            self.max_cycles,
            watchdog,
            self.ring_hop_latency,
            ring_width,
            predictor,
            arb_policy,
        )
    }

    /// Parses a [`SimConfig::stable_key`] rendering back into a config.
    ///
    /// This is the inverse of `stable_key` for every field the key
    /// records; [`SimConfig::skip_ahead`] is not part of the key, so the
    /// parsed config carries the default (`true`). The round trip
    /// `from_stable_key(k)?.stable_key() == k` holds for every key
    /// produced by this crate version. Returns `None` on any version
    /// mismatch, missing/extra section, or malformed field — callers
    /// shipping keys across a process boundary (the ms-serve worker pipe
    /// protocol) treat `None` as a protocol error, never a panic.
    ///
    /// ```
    /// use multiscalar::SimConfig;
    /// let cfg = SimConfig::multiscalar(4).issue(2).out_of_order(true);
    /// let back = SimConfig::from_stable_key(&cfg.stable_key()).unwrap();
    /// assert_eq!(back, cfg);
    /// ```
    pub fn from_stable_key(key: &str) -> Option<SimConfig> {
        fn field<'a>(part: Option<&'a str>, name: &str) -> Option<&'a str> {
            part?.strip_prefix(name)?.strip_prefix('=')
        }
        fn num<T: std::str::FromStr>(s: &str) -> Option<T> {
            s.parse().ok()
        }
        fn nums<const N: usize>(s: &str) -> Option<[u64; N]> {
            let mut out = [0u64; N];
            let mut it = s.split(',');
            for slot in out.iter_mut() {
                *slot = num(it.next()?)?;
            }
            if it.next().is_some() {
                return None;
            }
            Some(out)
        }
        let mut parts = key.split(';');
        if parts.next()? != "simconfig v2" {
            return None;
        }
        let units: usize = num(field(parts.next(), "units")?)?;
        if units == 0 {
            return None;
        }
        let mut cfg = SimConfig::multiscalar(units);
        cfg.issue_width = num(field(parts.next(), "issue")?)?;
        cfg.ooo = num(field(parts.next(), "ooo")?)?;
        cfg.window = num(field(parts.next(), "window")?)?;
        let l: [u64; 12] = nums(field(parts.next(), "lat")?)?;
        cfg.latencies = LatencyTable {
            int_alu: l[0],
            int_mul: l[1],
            int_div: l[2],
            load: l[3],
            store: l[4],
            branch: l[5],
            fp_add_s: l[6],
            fp_mul_s: l[7],
            fp_div_s: l[8],
            fp_add_d: l[9],
            fp_mul_d: l[10],
            fp_div_d: l[11],
        };
        let ic: [u64; 4] = nums(field(parts.next(), "icache")?)?;
        cfg.icache = ICacheConfig {
            size_bytes: u32::try_from(ic[0]).ok()?,
            block_bytes: u32::try_from(ic[1]).ok()?,
            hit_time: ic[2],
            miss_extra: ic[3],
        };
        let bk: [u64; 5] = nums(field(parts.next(), "banks")?)?;
        cfg.banks = DataBanksConfig {
            nbanks: usize::try_from(bk[0]).ok()?,
            bank_bytes: u32::try_from(bk[1]).ok()?,
            block_bytes: u32::try_from(bk[2]).ok()?,
            hit_time: bk[3],
            miss_extra: bk[4],
        };
        let bus: [u64; 2] = nums(field(parts.next(), "bus")?)?;
        cfg.bus = BusConfig { first_beat: bus[0], extra_beat: bus[1] };
        cfg.arb_capacity = num(field(parts.next(), "arb_capacity")?)?;
        cfg.max_cycles = num(field(parts.next(), "max_cycles")?)?;
        cfg.watchdog = match field(parts.next(), "watchdog")? {
            "off" => None,
            w => Some(num(w)?),
        };
        cfg.ring_hop_latency = num(field(parts.next(), "ring_hop")?)?;
        cfg.ring_width = match field(parts.next(), "ring_width")? {
            "issue" => None,
            w => Some(num(w)?),
        };
        cfg.predictor = match field(parts.next(), "predictor")? {
            "pas" => crate::PredictorKind::Pas,
            "static-first-target" => crate::PredictorKind::StaticFirstTarget,
            "last-outcome" => crate::PredictorKind::LastOutcome,
            _ => return None,
        };
        cfg.arb_full_policy = match field(parts.next(), "arb_full")? {
            "stall" => crate::ArbFullPolicy::Stall,
            "squash" => crate::ArbFullPolicy::Squash,
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(cfg)
    }

    /// The per-unit pipeline configuration implied by this config.
    pub fn unit_config(&self) -> UnitConfig {
        UnitConfig {
            issue_width: self.issue_width,
            ooo: self.ooo,
            window: self.window,
            fetch_buffer: 16,
            latencies: self.latencies,
            icache: self.icache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let m8 = SimConfig::multiscalar(8);
        assert_eq!(m8.banks.nbanks, 16);
        assert_eq!(m8.banks.hit_time, 2);
        assert_eq!(m8.arb_capacity, 256);
        let s = SimConfig::scalar();
        assert_eq!(s.units, 1);
        assert_eq!(s.banks.hit_time, 1);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::multiscalar(4).issue(2).out_of_order(true).max_cycles(5);
        assert_eq!(c.issue_width, 2);
        assert!(c.ooo);
        assert_eq!(c.max_cycles, 5);
        assert_eq!(c.unit_config().issue_width, 2);
    }

    #[test]
    #[should_panic(expected = "1- and 2-way")]
    fn bad_width_rejected() {
        let _ = SimConfig::scalar().issue(3);
    }

    #[test]
    fn stable_key_distinguishes_every_builder_knob() {
        let base = SimConfig::multiscalar(8);
        let variants = [
            base.issue(2),
            base.out_of_order(true),
            base.max_cycles(7),
            base.watchdog(None),
            base.watchdog(Some(5_000)),
            base.ring_latency(2),
            base.ring_width(4),
            base.predictor(crate::PredictorKind::LastOutcome),
            base.arb_policy(crate::ArbFullPolicy::Squash),
            SimConfig::multiscalar(4),
            SimConfig::scalar(),
        ];
        let base_key = base.stable_key();
        assert_eq!(base_key, SimConfig::multiscalar(8).stable_key());
        assert!(base_key.starts_with("simconfig v2;"));
        for v in &variants {
            assert_ne!(v.stable_key(), base_key, "{v:?}");
        }
        let mut tiny = base;
        tiny.arb_capacity = 8;
        assert_ne!(tiny.stable_key(), base_key);
    }

    #[test]
    fn stable_key_round_trips() {
        let base = SimConfig::multiscalar(8);
        let variants = [
            base,
            base.issue(2).out_of_order(true),
            base.max_cycles(7).watchdog(None),
            base.watchdog(Some(5_000)).ring_latency(2),
            base.ring_width(4).predictor(crate::PredictorKind::LastOutcome),
            base.predictor(crate::PredictorKind::StaticFirstTarget),
            base.arb_policy(crate::ArbFullPolicy::Squash),
            SimConfig::multiscalar(4),
            SimConfig::scalar(),
        ];
        for v in &variants {
            let key = v.stable_key();
            let back = SimConfig::from_stable_key(&key).unwrap();
            assert_eq!(back, *v, "round trip of {key}");
            assert_eq!(back.stable_key(), key);
        }
        // skip_ahead is not in the key, so it parses back to the default
        // even when the original had it off.
        let ticked = base.skip_ahead(false);
        assert_eq!(SimConfig::from_stable_key(&ticked.stable_key()).unwrap(), base);
    }

    #[test]
    fn from_stable_key_rejects_malformed() {
        let key = SimConfig::multiscalar(4).stable_key();
        assert!(SimConfig::from_stable_key("").is_none());
        assert!(SimConfig::from_stable_key("simconfig v1;units=4").is_none());
        assert!(SimConfig::from_stable_key(&key.replace("v2", "v3")).is_none());
        assert!(SimConfig::from_stable_key(&key.replace("units=4", "units=zero")).is_none());
        assert!(SimConfig::from_stable_key(&key.replace("units=4", "units=0")).is_none());
        assert!(SimConfig::from_stable_key(&key.replace("predictor=pas", "predictor=psychic"))
            .is_none());
        assert!(SimConfig::from_stable_key(&format!("{key};extra=1")).is_none());
        assert!(SimConfig::from_stable_key(key.rsplit_once(';').unwrap().0).is_none());
        // Truncated or over-long latency list.
        assert!(SimConfig::from_stable_key(&key.replace("lat=1,", "lat=")).is_none());
        assert!(SimConfig::from_stable_key(&key.replace("lat=1,", "lat=1,1,")).is_none());
    }

    #[test]
    fn stable_key_ignores_skip_ahead() {
        // Skip-ahead is observationally neutral; the cache key must be
        // shared so ticked and skip-ahead runs hit the same entries.
        let base = SimConfig::multiscalar(8);
        assert_eq!(base.skip_ahead(false).stable_key(), base.stable_key());
        assert_ne!(base.skip_ahead(false), base, "Eq still sees the knob");
    }
}
