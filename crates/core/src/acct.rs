//! Cycle-accounting hooks (CPI stacks).
//!
//! The processor charges every (unit, cycle) to exactly one bucket —
//! issued, or one [`StallReason`] — through a [`CycleAccountant`]. The
//! hook surface follows the [`ms_trace::TraceSink`] /
//! [`crate::FaultInjector`] pattern: the processor is generic over the
//! accountant, every call site is guarded by `if A::ENABLED`, and the
//! default [`NoAccounting`] has `ENABLED = false`, so ordinary runs
//! compile the bookkeeping away entirely and `RunStats` stays
//! bit-identical (the golden-stats suite pins this).
//!
//! [`CpiAccountant`] is the concrete collector: it accumulates the
//! conservation-checked [`CpiStack`] (global, per-unit and per-retired-
//! task) that `msprof` and the `--cpi` sweep artifacts report.

use ms_trace::{CpiStack, StallBuckets, StallReason, TaskCpi, UnitCpi};

/// A sink for per-cycle bucket charges and task-boundary events.
///
/// All hooks default to no-ops, so an accountant only overrides what it
/// uses. The processor guarantees that, per simulated cycle, exactly one
/// of [`CycleAccountant::charge_issued`] / [`CycleAccountant::charge_stall`]
/// is called for each of its units — the conservation invariant
/// `issued + Σ stalls == cycles × units` is a property of the call
/// sites, which [`CpiStack::conservation_holds`] then verifies.
pub trait CycleAccountant {
    /// Whether the processor's charging sites are live. [`NoAccounting`]
    /// sets this to `false`, compiling every site out.
    const ENABLED: bool = true;

    /// Called once at construction with the unit count.
    fn begin(&mut self, _units: usize) {}

    /// The unit issued at least one instruction this cycle.
    fn charge_issued(&mut self, _unit: usize) {}

    /// The unit issued nothing this cycle, for `reason`. Units holding
    /// no task are charged [`StallReason::NoTask`] or
    /// [`StallReason::SquashRecovery`].
    fn charge_stall(&mut self, _unit: usize, _reason: StallReason) {}

    /// Bulk form of [`CycleAccountant::charge_stall`]: the unit stalled
    /// for `reason` for `n` consecutive cycles. The skip-ahead scheduler
    /// charges a whole provably-quiet span in one call (see DESIGN.md
    /// §13); conservation is unaffected because the span accounts for
    /// exactly the cycles the clock jumped over. The default loops over
    /// [`CycleAccountant::charge_stall`], so existing accountants stay
    /// correct without changes.
    ///
    /// ```
    /// use multiscalar::{CpiAccountant, CycleAccountant};
    /// use ms_trace::StallReason;
    ///
    /// let mut acct = CpiAccountant::new();
    /// acct.begin(1);
    /// acct.charge_issued(0);
    /// acct.charge_stall_n(0, StallReason::CacheMiss, 9);
    /// let stack = acct.finish(10, 3).unwrap();
    /// assert!(stack.conservation_holds());
    /// assert_eq!(stack.stall_cycles[StallReason::CacheMiss.index()], 9);
    /// ```
    fn charge_stall_n(&mut self, unit: usize, reason: StallReason, n: u64) {
        for _ in 0..n {
            self.charge_stall(unit, reason);
        }
    }

    /// A task was assigned to `unit` (charges from the next cycle on
    /// belong to it).
    fn task_assign(&mut self, _unit: usize, _order: u64, _entry: u32) {}

    /// The task on `unit` retired, having committed `instructions`.
    fn task_retire(&mut self, _unit: usize, _instructions: u64) {}

    /// The task on `unit` was squashed (its charges stay in the unit
    /// totals but produce no retired-task row).
    fn task_squash(&mut self, _unit: usize) {}

    /// Called once at end of run; returns the collected stack, if any.
    fn finish(&mut self, _cycles: u64, _instructions: u64) -> Option<CpiStack> {
        None
    }
}

/// The no-op accountant: every charging site compiles away
/// (`ENABLED = false`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoAccounting;

impl CycleAccountant for NoAccounting {
    const ENABLED: bool = false;
}

/// Forwarding impl so `&mut A` can be handed to a processor.
impl<A: CycleAccountant> CycleAccountant for &mut A {
    const ENABLED: bool = A::ENABLED;

    fn begin(&mut self, units: usize) {
        (**self).begin(units);
    }

    fn charge_issued(&mut self, unit: usize) {
        (**self).charge_issued(unit);
    }

    fn charge_stall(&mut self, unit: usize, reason: StallReason) {
        (**self).charge_stall(unit, reason);
    }

    fn charge_stall_n(&mut self, unit: usize, reason: StallReason, n: u64) {
        (**self).charge_stall_n(unit, reason, n);
    }

    fn task_assign(&mut self, unit: usize, order: u64, entry: u32) {
        (**self).task_assign(unit, order, entry);
    }

    fn task_retire(&mut self, unit: usize, instructions: u64) {
        (**self).task_retire(unit, instructions);
    }

    fn task_squash(&mut self, unit: usize) {
        (**self).task_squash(unit);
    }

    fn finish(&mut self, cycles: u64, instructions: u64) -> Option<CpiStack> {
        (**self).finish(cycles, instructions)
    }
}

/// A task currently charged to a unit.
#[derive(Clone, Debug)]
struct OpenTask {
    order: u64,
    entry: u32,
    issued_cycles: u64,
    stall_cycles: StallBuckets,
}

/// The concrete CPI-stack collector.
#[derive(Clone, Debug, Default)]
pub struct CpiAccountant {
    per_unit: Vec<UnitCpi>,
    open: Vec<Option<OpenTask>>,
    per_task: Vec<TaskCpi>,
}

impl CpiAccountant {
    /// A fresh accountant (sized on [`CycleAccountant::begin`]).
    pub fn new() -> CpiAccountant {
        CpiAccountant::default()
    }
}

impl CycleAccountant for CpiAccountant {
    fn begin(&mut self, units: usize) {
        self.per_unit = vec![UnitCpi::default(); units];
        self.open = vec![None; units];
    }

    fn charge_issued(&mut self, unit: usize) {
        self.per_unit[unit].issued_cycles += 1;
        if let Some(t) = &mut self.open[unit] {
            t.issued_cycles += 1;
        }
    }

    fn charge_stall(&mut self, unit: usize, reason: StallReason) {
        self.per_unit[unit].stall_cycles[reason.index()] += 1;
        if let Some(t) = &mut self.open[unit] {
            t.stall_cycles[reason.index()] += 1;
        }
    }

    fn charge_stall_n(&mut self, unit: usize, reason: StallReason, n: u64) {
        self.per_unit[unit].stall_cycles[reason.index()] += n;
        if let Some(t) = &mut self.open[unit] {
            t.stall_cycles[reason.index()] += n;
        }
    }

    fn task_assign(&mut self, unit: usize, order: u64, entry: u32) {
        self.open[unit] = Some(OpenTask {
            order,
            entry,
            issued_cycles: 0,
            stall_cycles: StallBuckets::default(),
        });
    }

    fn task_retire(&mut self, unit: usize, instructions: u64) {
        if let Some(t) = self.open[unit].take() {
            self.per_task.push(TaskCpi {
                order: t.order,
                unit,
                entry: t.entry,
                instructions,
                issued_cycles: t.issued_cycles,
                stall_cycles: t.stall_cycles,
            });
        }
    }

    fn task_squash(&mut self, unit: usize) {
        self.open[unit] = None;
    }

    fn finish(&mut self, cycles: u64, instructions: u64) -> Option<CpiStack> {
        let mut stack = CpiStack {
            units: self.per_unit.len(),
            cycles,
            instructions,
            issued_cycles: 0,
            stall_cycles: StallBuckets::default(),
            per_unit: std::mem::take(&mut self.per_unit),
            per_task: std::mem::take(&mut self.per_task),
        };
        for u in &stack.per_unit {
            stack.issued_cycles += u.issued_cycles;
            for i in 0..StallReason::COUNT {
                stack.stall_cycles[i] += u.stall_cycles[i];
            }
        }
        Some(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_accounting_is_disabled_and_inert() {
        const { assert!(!NoAccounting::ENABLED) };
        let mut a = NoAccounting;
        a.begin(4);
        a.charge_issued(0);
        a.charge_stall(1, StallReason::RemoteDep);
        a.task_assign(0, 0, 0x100);
        a.task_retire(0, 5);
        assert!(a.finish(10, 20).is_none());
    }

    #[test]
    fn cpi_accountant_accumulates_and_conserves() {
        let mut a = CpiAccountant::new();
        a.begin(2);
        a.task_assign(0, 0, 0x100);
        // Cycle 1: unit 0 issues, unit 1 has no task.
        a.charge_issued(0);
        a.charge_stall(1, StallReason::NoTask);
        // Cycle 2: unit 0 stalls, unit 1 gets a task next cycle.
        a.charge_stall(0, StallReason::Drain);
        a.charge_stall(1, StallReason::NoTask);
        a.task_assign(1, 1, 0x200);
        // Cycle 3: both busy; unit 0 retires.
        a.charge_issued(0);
        a.charge_issued(1);
        a.task_retire(0, 7);
        let stack = a.finish(3, 7).unwrap();
        assert!(stack.conservation_holds(), "{stack:?}");
        assert_eq!(stack.issued_cycles, 3);
        assert_eq!(stack.stall_cycles[StallReason::NoTask.index()], 2);
        assert_eq!(stack.per_task.len(), 1);
        let t = &stack.per_task[0];
        assert_eq!((t.order, t.unit, t.instructions), (0, 0, 7));
        // The retired task was charged 2 issue cycles + 1 drain.
        assert_eq!(t.issued_cycles, 2);
        assert_eq!(t.stall_cycles[StallReason::Drain.index()], 1);
    }

    #[test]
    fn bulk_charge_equals_per_cycle_charges() {
        let mut a = CpiAccountant::new();
        a.begin(1);
        a.task_assign(0, 0, 0x100);
        for _ in 0..7 {
            a.charge_stall(0, StallReason::RemoteDep);
        }
        a.task_retire(0, 0);
        let per_cycle = a.finish(7, 0).unwrap();

        let mut b = CpiAccountant::new();
        b.begin(1);
        b.task_assign(0, 0, 0x100);
        b.charge_stall_n(0, StallReason::RemoteDep, 7);
        b.task_retire(0, 0);
        let bulk = b.finish(7, 0).unwrap();

        assert_eq!(format!("{per_cycle:?}"), format!("{bulk:?}"));
        assert!(bulk.conservation_holds());
    }

    #[test]
    fn squashed_tasks_leave_no_per_task_row() {
        let mut a = CpiAccountant::new();
        a.begin(1);
        a.task_assign(0, 0, 0x100);
        a.charge_issued(0);
        a.task_squash(0);
        a.charge_stall(0, StallReason::SquashRecovery);
        let stack = a.finish(2, 0).unwrap();
        assert!(stack.conservation_holds());
        assert!(stack.per_task.is_empty());
        assert_eq!(stack.issued_cycles, 1);
        assert_eq!(stack.stall_cycles[StallReason::SquashRecovery.index()], 1);
    }
}
