//! The service-layer chaos campaign end to end: real worker processes
//! (this crate's own `mschaos --worker`), real kills and torn files,
//! and a byte-identity oracle that must hold for every host fault.

use ms_chaos::{run_serve_campaign, ServeCampaign, HOST_PLAN_NAMES};

/// Worker command for the shard pools: the `mschaos` binary in its
/// hidden worker mode (tests cannot rely on `current_exe`, which would
/// be the test harness itself).
fn campaign() -> ServeCampaign {
    ServeCampaign {
        seeds: 1,
        worker_cmd: Some(vec![env!("CARGO_BIN_EXE_mschaos").to_string(), "--worker".to_string()]),
        ..ServeCampaign::default()
    }
}

#[test]
fn unknown_plans_are_rejected_up_front() {
    let c = ServeCampaign { plans: vec!["worker-kill".into(), "meteor".into()], ..campaign() };
    let err = run_serve_campaign(&c).expect_err("unknown plan must not run");
    assert!(err.contains("meteor"), "{err}");
    assert!(err.contains("worker-stall"), "the error must list the valid plans: {err}");
}

#[test]
fn every_host_fault_plan_converges_to_identical_bytes() {
    let dir = std::env::temp_dir().join(format!("ms-chaos-serve-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let c = ServeCampaign { artifacts_dir: Some(dir.clone()), ..campaign() };
    let report = run_serve_campaign(&c).expect("campaign runs");

    assert_eq!(report.points.len(), HOST_PLAN_NAMES.len(), "one point per plan");
    for p in &report.points {
        assert!(p.failure.is_none(), "{} seed {}: {}", p.plan, p.seed, p.failure.as_ref().unwrap());
        assert!(p.identical, "{} seed {} diverged", p.plan, p.seed);
    }

    // The issue's robustness floor, across the plan set: at least one
    // restart, one quarantine-and-recompute, one discarded duplicate.
    let t = report.totals();
    assert!(t.restarts >= 1, "{t:?}");
    assert!(t.deaths >= 1, "{t:?}");
    assert!(t.deadline_kills >= 1, "{t:?}");
    assert!(t.requeued + t.requeue_deduped >= 1, "{t:?}");
    assert!(t.duplicates_discarded >= 1, "{t:?}");
    assert!(t.cache_quarantined >= 1, "{t:?}");
    assert_eq!(t.poisoned, 0, "{t:?}");
    assert!(report.robustness_gaps().is_empty(), "{:?}", report.robustness_gaps());

    // The report is well-formed JSON with the expected schema and one
    // shard-counter object per point.
    let json = report.to_json();
    let doc = ms_trace::jsonv::parse(&json).expect(&json);
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("multiscalar-chaos-serve/v1"),
        "{json}"
    );
    assert!(json.contains("\"totals\""), "{json}");
    assert!(json.contains("\"restarts\""), "{json}");

    // The side-channel artifacts CI `cmp`s: a baseline plus one merged
    // file per point, all byte-identical.
    let baseline = std::fs::read(dir.join("baseline.results.json")).expect("baseline artifact");
    assert!(!baseline.is_empty());
    for p in &report.points {
        let merged = std::fs::read(dir.join(format!("{}-{}.results.json", p.plan, p.seed)))
            .unwrap_or_else(|e| panic!("{}-{}: {e}", p.plan, p.seed));
        assert_eq!(merged, baseline, "{} seed {} artifact differs", p.plan, p.seed);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
