//! # ms-chaos — deterministic fault-injection campaigns
//!
//! The multiscalar simulator's central invariant is that *speculation
//! never changes architectural results*: whatever the predictor guesses,
//! however the ring reorders deliveries, however often the ARB forces
//! stalls or squashes, the committed execution must equal the sequential
//! one. This crate stress-tests that invariant by perturbing the
//! microarchitecture on purpose and checking the result against the
//! reference oracle.
//!
//! A [`FaultPlan`] is a seeded, deterministic
//! [`FaultInjector`]: every decision is a pure
//! function of the seed-derived key and the hook inputs (cycle, unit,
//! assignment order), never of sequential RNG state, so a plan perturbs
//! identically no matter how many hooks fire in between. Plans may
//!
//! * force task mispredictions at chosen assignment orders,
//! * jitter ring-hop latencies and throttle ring width,
//! * tighten ARB capacity in pressure windows, and
//! * inject spurious squashes of speculative tasks (never the head),
//!
//! all of which the simulator must absorb. A [`Campaign`] runs each
//! (workload × plan × seed) point end-to-end and checks the oracle:
//! final memory equals the reference ([`Workload::verify_memory`]),
//! retired instruction and task counts equal an unperturbed baseline, and
//! the retirement sequence is identical and in order. Reports serialize
//! to deterministic JSON — same seed, byte-identical report.
//!
//! The `mschaos` binary is the campaign CLI; see `README.md` ("Chaos
//! testing") and `DESIGN.md` §9.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use ms_workloads::{Scale, Workload, WorkloadError};
use multiscalar::{FaultInjector, NoFaults, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// splitmix64 finalizer: the pure mixing function behind every plan
/// decision (no sequential state, so decisions are call-order free).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod serve_chaos;

pub use serve_chaos::{
    run_serve_campaign, ServeCampaign, ServeCampaignReport, ServePointResult, ServeTotals,
    HOST_PLAN_NAMES,
};

/// The built-in plan shapes, in campaign order.
pub const PLAN_NAMES: [&str; 5] = ["mispredict", "ring", "arb", "squash", "storm"];

/// A seeded, deterministic fault plan.
///
/// Construct with one of the named shapes ([`FaultPlan::by_name`] or the
/// specific constructors); each derives its parameters and mixing key
/// from the seed via the vendored `SmallRng`, then acts as a pure
/// function of its hook inputs.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Plan shape name (one of [`PLAN_NAMES`]).
    name: &'static str,
    /// Seed the plan was built from.
    seed: u64,
    /// Seed-derived mixing key.
    key: u64,
    /// Force a wrong target choice when `mix(key, order) % period == 0`.
    mispredict_period: Option<u64>,
    /// Max extra ring-hop cycles (0 disables jitter).
    ring_jitter_max: u64,
    /// Ring width throttled to `cap` while `cycle % period < duty`.
    ring_cap_window: Option<(u64, u64, usize)>,
    /// ARB per-bank capacity tightened to `cap` in the same window shape.
    arb_cap_window: Option<(u64, u64, usize)>,
    /// Request a spurious squash when `mix(key, cycle) % period == 0`.
    squash_period: Option<u64>,
}

impl FaultPlan {
    fn base(name: &'static str, seed: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::RngCore;
        FaultPlan {
            name,
            seed,
            key: rng.next_u64(),
            mispredict_period: None,
            ring_jitter_max: 0,
            ring_cap_window: None,
            arb_cap_window: None,
            squash_period: None,
        }
    }

    /// Forces a wrong successor prediction roughly every 5–8 assignments.
    pub fn mispredict(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::base("mispredict", seed);
        p.mispredict_period = Some(5 + mix(p.key ^ 1) % 4);
        p
    }

    /// Jitters ring-hop latency by 0–3 cycles and periodically throttles
    /// the ring to one message per hop.
    pub fn ring(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::base("ring", seed);
        p.ring_jitter_max = 3;
        p.ring_cap_window = Some((64 + mix(p.key ^ 2) % 64, 16, 1));
        p
    }

    /// Periodically tightens ARB per-bank capacity to a handful of lines
    /// (head allocation is exempt, so progress is preserved).
    pub fn arb(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::base("arb", seed);
        p.arb_cap_window = Some((96 + mix(p.key ^ 3) % 64, 32, 2));
        p
    }

    /// Injects spurious squashes of a speculative task roughly every
    /// 97–224 cycles.
    pub fn squash(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::base("squash", seed);
        p.squash_period = Some(97 + mix(p.key ^ 4) % 128);
        p
    }

    /// Everything at once.
    pub fn storm(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::base("storm", seed);
        p.mispredict_period = Some(7 + mix(p.key ^ 1) % 6);
        p.ring_jitter_max = 2;
        p.ring_cap_window = Some((128 + mix(p.key ^ 2) % 64, 24, 1));
        p.arb_cap_window = Some((160 + mix(p.key ^ 3) % 64, 32, 3));
        p.squash_period = Some(131 + mix(p.key ^ 4) % 128);
        p
    }

    /// Builds a named plan shape ([`PLAN_NAMES`]) for `seed`.
    pub fn by_name(name: &str, seed: u64) -> Option<FaultPlan> {
        match name {
            "mispredict" => Some(FaultPlan::mispredict(seed)),
            "ring" => Some(FaultPlan::ring(seed)),
            "arb" => Some(FaultPlan::arb(seed)),
            "squash" => Some(FaultPlan::squash(seed)),
            "storm" => Some(FaultPlan::storm(seed)),
            _ => None,
        }
    }

    /// The plan shape name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn in_window(window: Option<(u64, u64, usize)>, now: u64) -> Option<usize> {
        window.and_then(|(period, duty, cap)| (now % period < duty).then_some(cap))
    }
}

impl FaultInjector for FaultPlan {
    fn override_prediction(
        &mut self,
        _now: u64,
        order: u64,
        _task_entry: u32,
        ntargets: usize,
        predicted: usize,
    ) -> usize {
        match self.mispredict_period {
            Some(p)
                if ntargets > 1 && mix(self.key ^ order.wrapping_mul(0xa5a5)).is_multiple_of(p) =>
            {
                (predicted + 1) % ntargets
            }
            _ => predicted,
        }
    }

    fn ring_extra_delay(&mut self, now: u64, unit: usize) -> u64 {
        if self.ring_jitter_max == 0 {
            return 0;
        }
        mix(self.key ^ now.wrapping_mul(0x1234_5601) ^ unit as u64) % (self.ring_jitter_max + 1)
    }

    fn ring_width_cap(&mut self, now: u64) -> Option<usize> {
        FaultPlan::in_window(self.ring_cap_window, now)
    }

    fn arb_capacity_cap(&mut self, now: u64) -> Option<usize> {
        FaultPlan::in_window(self.arb_cap_window, now)
    }

    fn spurious_squash(&mut self, now: u64, active_len: usize) -> Option<usize> {
        let p = self.squash_period?;
        if active_len < 2 || !mix(self.key ^ now.wrapping_mul(0xdead_4bad)).is_multiple_of(p) {
            return None;
        }
        Some(1 + (mix(self.key ^ now ^ 0x51) % (active_len as u64 - 1)) as usize)
    }
}

/// Campaign parameters: the cross product of workloads, plan shapes and
/// seeds, each run on a `units`-wide machine at `scale`.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Workload names (paper row names, case-insensitive).
    pub workloads: Vec<String>,
    /// Plan shape names (subset of [`PLAN_NAMES`]).
    pub plans: Vec<String>,
    /// Number of seeds per (workload, plan): seeds are
    /// `seed_base .. seed_base + seeds`.
    pub seeds: u64,
    /// First seed.
    pub seed_base: u64,
    /// Processing units of the machine under test.
    pub units: usize,
    /// Workload scale.
    pub scale: Scale,
    /// Cycle bound per run.
    pub max_cycles: u64,
    /// Forward-progress watchdog per run (fault injection must never
    /// livelock the machine; a firing watchdog is a campaign failure).
    pub watchdog: Option<u64>,
}

impl Default for Campaign {
    fn default() -> Campaign {
        Campaign {
            workloads: Vec::new(),
            plans: PLAN_NAMES.iter().map(|s| s.to_string()).collect(),
            seeds: 8,
            seed_base: 0,
            units: 4,
            scale: Scale::Test,
            max_cycles: 50_000_000,
            watchdog: Some(2_000_000),
        }
    }
}

/// One (workload × plan × seed) campaign point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Workload name.
    pub workload: String,
    /// Plan shape name.
    pub plan: String,
    /// Seed.
    pub seed: u64,
    /// Simulated cycles (perturbed run; 0 on failure before completion).
    pub cycles: u64,
    /// Tasks squashed in the perturbed run (baseline + injected).
    pub tasks_squashed: u64,
    /// `None` = oracle passed; `Some(reason)` = violation.
    pub failure: Option<String>,
}

impl PointResult {
    /// The minimal `mschaos` invocation that reproduces this point.
    pub fn repro(&self, campaign: &Campaign) -> String {
        format!(
            "mschaos --workloads {} --plans {} --seeds 1 --seed-base {} --units {} --scale {}",
            self.workload.to_lowercase(),
            self.plan,
            self.seed,
            campaign.units,
            campaign.scale.id(),
        )
    }
}

/// A finished campaign: every point, in deterministic order.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The campaign that was run.
    pub campaign: Campaign,
    /// One result per (workload × plan × seed), in that nesting order.
    pub points: Vec<PointResult>,
}

impl CampaignReport {
    /// Number of oracle violations.
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| p.failure.is_some()).count()
    }

    /// Serializes the report as deterministic JSON (schema
    /// `multiscalar-chaos/v1`): same campaign and seeds, byte-identical
    /// output.
    pub fn to_json(&self) -> String {
        use ms_trace::json;
        let mut out = String::from("{\"schema\":\"multiscalar-chaos/v1\"");
        out.push_str(&format!(",\"scale\":{}", json::string(self.campaign.scale.id())));
        out.push_str(&format!(",\"units\":{}", self.campaign.units));
        out.push_str(&format!(
            ",\"seeds\":{},\"seed_base\":{}",
            self.campaign.seeds, self.campaign.seed_base
        ));
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"workload\":{},\"plan\":{},\"seed\":{},\"cycles\":{},\"tasks_squashed\":{},\"failure\":{}}}",
                json::string(&p.workload),
                json::string(&p.plan),
                p.seed,
                p.cycles,
                p.tasks_squashed,
                p.failure.as_deref().map_or("null".into(), json::string),
            ));
        }
        out.push_str(&format!("],\"failures\":{}}}", self.failures()));
        out
    }
}

/// Architectural fingerprint of an unperturbed run, against which every
/// perturbed run is checked.
struct Baseline {
    instructions: u64,
    tasks_retired: u64,
    retirement_entries: Vec<u32>,
}

fn sim_config(c: &Campaign) -> SimConfig {
    SimConfig::multiscalar(c.units).max_cycles(c.max_cycles).watchdog(c.watchdog)
}

fn baseline(w: &Workload, c: &Campaign) -> Result<Baseline, WorkloadError> {
    let (stats, p) = w.run_multiscalar_with_injector(sim_config(c), NoFaults)?;
    Ok(Baseline {
        instructions: stats.instructions,
        tasks_retired: stats.tasks_retired,
        retirement_entries: p.retirement_log().iter().map(|r| r.entry).collect(),
    })
}

/// Runs one (workload, plan) point and applies the oracle.
fn run_point(w: &Workload, base: &Baseline, plan: FaultPlan, c: &Campaign) -> PointResult {
    let workload = w.name.to_string();
    let plan_name = plan.name().to_string();
    let seed = plan.seed();
    // `run_multiscalar_with_injector` already verifies final memory
    // against the reference implementation — the core oracle.
    match w.run_multiscalar_with_injector(sim_config(c), plan) {
        Ok((stats, p)) => {
            let mut failure = None;
            if stats.instructions != base.instructions {
                failure = Some(format!(
                    "retired {} instructions, baseline retired {}",
                    stats.instructions, base.instructions
                ));
            } else if stats.tasks_retired != base.tasks_retired {
                failure = Some(format!(
                    "retired {} tasks, baseline retired {}",
                    stats.tasks_retired, base.tasks_retired
                ));
            } else {
                let log = p.retirement_log();
                if log.windows(2).any(|w| w[1].cycle < w[0].cycle) {
                    failure = Some("retirement cycles are not non-decreasing".into());
                } else if log.iter().map(|r| r.entry).ne(base.retirement_entries.iter().copied()) {
                    failure = Some("retirement entry sequence diverges from baseline".into());
                }
            }
            PointResult {
                workload,
                plan: plan_name,
                seed,
                cycles: stats.cycles,
                tasks_squashed: stats.tasks_squashed,
                failure,
            }
        }
        Err(e) => PointResult {
            workload,
            plan: plan_name,
            seed,
            cycles: 0,
            tasks_squashed: 0,
            failure: Some(e.to_string()),
        },
    }
}

/// Resolves the campaign's workload selection against the suite.
///
/// # Errors
/// Returns the first unknown workload or plan name.
pub fn resolve(c: &Campaign) -> Result<Vec<Workload>, String> {
    for p in &c.plans {
        if !PLAN_NAMES.contains(&p.as_str()) {
            return Err(format!("unknown plan `{p}` (use {})", PLAN_NAMES.join(", ")));
        }
    }
    if c.workloads.is_empty() {
        return Ok(ms_workloads::suite(c.scale));
    }
    c.workloads
        .iter()
        .map(|n| ms_workloads::by_name(n, c.scale).ok_or_else(|| format!("unknown workload `{n}`")))
        .collect()
}

/// Runs the whole campaign: for every workload, an unperturbed baseline,
/// then every (plan × seed) perturbed run checked against it.
///
/// # Errors
/// Returns an error string for unknown names or a failing baseline (a
/// baseline failure means the simulator is broken even without faults).
pub fn run_campaign(c: &Campaign) -> Result<CampaignReport, String> {
    let workloads = resolve(c)?;
    let mut points = Vec::new();
    for w in &workloads {
        let base =
            baseline(w, c).map_err(|e| format!("{}: unperturbed baseline failed: {e}", w.name))?;
        for plan_name in &c.plans {
            for s in 0..c.seeds {
                let seed = c.seed_base + s;
                let plan = FaultPlan::by_name(plan_name, seed)
                    .unwrap_or_else(|| unreachable!("plan names pre-validated"));
                points.push(run_point(w, &base, plan, c));
            }
        }
    }
    Ok(CampaignReport { campaign: c.clone(), points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_decisions_are_pure_and_seeded() {
        let mut a = FaultPlan::storm(42);
        let mut b = FaultPlan::storm(42);
        // Call order must not matter: drain hooks differently.
        let _ = a.ring_extra_delay(9, 1);
        for cyc in [5u64, 900, 12_345] {
            assert_eq!(a.spurious_squash(cyc, 6), b.spurious_squash(cyc, 6));
            assert_eq!(a.ring_extra_delay(cyc, 2), b.ring_extra_delay(cyc, 2));
            assert_eq!(a.ring_width_cap(cyc), b.ring_width_cap(cyc));
            assert_eq!(a.arb_capacity_cap(cyc), b.arb_capacity_cap(cyc));
            assert_eq!(
                a.override_prediction(cyc, cyc, 0x100, 3, 0),
                b.override_prediction(cyc, cyc, 0x100, 3, 0)
            );
        }
        let mut c = FaultPlan::storm(43);
        let differs =
            (0..64u64).any(|cyc| a.ring_extra_delay(cyc, 0) != c.ring_extra_delay(cyc, 0));
        assert!(differs, "different seeds should perturb differently");
    }

    #[test]
    fn spurious_squash_never_targets_head() {
        let mut p = FaultPlan::squash(7);
        for cyc in 0..10_000 {
            if let Some(k) = p.spurious_squash(cyc, 4) {
                assert!((1..4).contains(&k), "cycle {cyc} chose {k}");
            }
            assert_eq!(p.spurious_squash(cyc, 1), None, "lone head must be exempt");
        }
    }

    #[cfg(not(feature = "broken-squash"))]
    #[test]
    fn storm_campaign_passes_oracle_and_is_deterministic() {
        let c = Campaign {
            workloads: vec!["wc".into(), "cmp".into()],
            plans: vec!["storm".into(), "squash".into()],
            seeds: 2,
            ..Campaign::default()
        };
        let r1 = run_campaign(&c).expect("campaign runs");
        assert_eq!(r1.failures(), 0, "{}", r1.to_json());
        assert!(
            r1.points.iter().any(|p| p.tasks_squashed > 0),
            "storm plans should actually squash"
        );
        let r2 = run_campaign(&c).expect("campaign runs");
        assert_eq!(r1.to_json(), r2.to_json(), "same seeds, byte-identical report");
    }

    #[cfg(feature = "broken-squash")]
    #[test]
    fn broken_squash_is_caught_by_the_campaign() {
        // With the seeded bug compiled in (a squash wave no longer
        // discards the squashed tasks' in-flight ring messages),
        // wrong-path register values can deliver to re-dispatched tasks
        // and corrupt architectural results. The effect needs a dense
        // squash/jitter mix to surface — this fixed-seed campaign is
        // known to catch it and serves as the harness's teeth check.
        let c = Campaign {
            workloads: vec!["gcc".into()],
            plans: vec!["storm".into()],
            seeds: 8,
            ..Campaign::default()
        };
        match run_campaign(&c) {
            Ok(report) => {
                assert!(report.failures() > 0, "seeded bug went undetected: {}", report.to_json());
                let fail = report.points.iter().find(|p| p.failure.is_some()).unwrap();
                assert!(fail.repro(&c).contains("--seed-base"), "{}", fail.repro(&c));
            }
            // Also acceptable: the bug corrupts even the unperturbed
            // baseline (control/memory squashes leak stores too).
            Err(e) => assert!(e.contains("baseline failed"), "{e}"),
        }
    }
}
