//! `mschaos` — the fault-injection campaign runner.
//!
//! ```text
//! cargo run --release -p ms-chaos --bin mschaos -- \
//!     [--workloads a,b,...] [--plans mispredict,ring,arb,squash,storm] \
//!     [--seeds N] [--seed-base B] [--units N] [--scale test|full] \
//!     [--max-cycles N] [--watchdog N|off] [--out PATH]
//! ```
//!
//! Runs every (workload × plan × seed) point, checks the
//! sequential-semantics oracle, prints a summary, and writes a
//! deterministic JSON report (default `CHAOS_report.json`; schema
//! `multiscalar-chaos/v1`). Exits non-zero on any oracle violation,
//! printing a minimal repro line per failing point.

use ms_chaos::{run_campaign, Campaign, PLAN_NAMES};
use ms_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: mschaos [--workloads a,b,...] [--plans {}] \
         [--seeds N] [--seed-base B] [--units N] [--scale test|full] \
         [--max-cycles N] [--watchdog N|off] [--out PATH]",
        PLAN_NAMES.join(",")
    );
    std::process::exit(2);
}

fn main() {
    let mut campaign = Campaign::default();
    let mut out_path = "CHAOS_report.json".to_string();

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workloads" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--workloads needs a comma-separated list");
                    usage()
                });
                campaign.workloads = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--plans" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--plans needs a comma-separated list");
                    usage()
                });
                campaign.plans = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--seeds" => {
                campaign.seeds =
                    it.next().and_then(|v| v.parse().ok()).filter(|&s| s > 0).unwrap_or_else(
                        || {
                            eprintln!("--seeds needs a positive integer");
                            usage()
                        },
                    );
            }
            "--seed-base" => {
                campaign.seed_base = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed-base needs an integer");
                    usage()
                });
            }
            "--units" => {
                campaign.units =
                    it.next().and_then(|v| v.parse().ok()).filter(|&u| u > 0).unwrap_or_else(
                        || {
                            eprintln!("--units needs a positive integer");
                            usage()
                        },
                    );
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--scale needs test|full");
                    usage()
                });
                campaign.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale `{v}` (use test|full)");
                    usage()
                });
            }
            "--max-cycles" => {
                campaign.max_cycles =
                    it.next().and_then(|v| v.parse().ok()).filter(|&c| c > 0).unwrap_or_else(
                        || {
                            eprintln!("--max-cycles needs a positive integer");
                            usage()
                        },
                    );
            }
            "--watchdog" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--watchdog needs a cycle count or `off`");
                    usage()
                });
                campaign.watchdog = if v == "off" {
                    None
                } else {
                    Some(v.parse().ok().filter(|&w| w > 0).unwrap_or_else(|| {
                        eprintln!("--watchdog needs a positive integer or `off`");
                        usage()
                    }))
                };
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    usage()
                });
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let report = run_campaign(&campaign).unwrap_or_else(|e| {
        eprintln!("mschaos: {e}");
        std::process::exit(2);
    });

    let failures = report.failures();
    println!(
        "mschaos: {} points ({} workloads x {} plans x {} seeds): {} passed, {} failed",
        report.points.len(),
        report.points.iter().map(|p| &p.workload).collect::<std::collections::BTreeSet<_>>().len(),
        campaign.plans.len(),
        campaign.seeds,
        report.points.len() - failures,
        failures,
    );
    for p in report.points.iter().filter(|p| p.failure.is_some()) {
        println!(
            "FAIL {} {} seed {}: {}\n  repro: {}",
            p.workload,
            p.plan,
            p.seed,
            p.failure.as_deref().unwrap_or(""),
            p.repro(&campaign),
        );
    }

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}
