//! `mschaos` — the fault-injection campaign runner.
//!
//! ```text
//! cargo run --release -p ms-chaos --bin mschaos -- \
//!     [--workloads a,b,...] [--plans mispredict,ring,arb,squash,storm] \
//!     [--seeds N] [--seed-base B] [--units N] [--scale test|full] \
//!     [--max-cycles N] [--watchdog N|off] [--out PATH]
//!
//! cargo run --release -p ms-chaos --bin mschaos -- serve \
//!     [--workloads a,b,...] [--plans worker-kill,worker-stall,dup-job,torn-cache,conn-drop] \
//!     [--seeds N] [--seed-base B] [--units N] [--scale test|full] \
//!     [--artifacts DIR] [--out PATH]
//! ```
//!
//! The default mode runs every (workload × plan × seed) point of the
//! *microarchitectural* campaign, checks the sequential-semantics
//! oracle, prints a summary, and writes a deterministic JSON report
//! (default `CHAOS_report.json`; schema `multiscalar-chaos/v1`). Exits
//! non-zero on any oracle violation, printing a minimal repro line per
//! failing point.
//!
//! The `serve` subcommand runs the *service-layer* campaign instead:
//! seeded host faults (killed/stalled workers, duplicated jobs, torn
//! cache files, dropped connections) against the process-shard runtime,
//! checking that the merged artifact stays byte-identical to an
//! undisturbed single-process run (report `CHAOS_serve_report.json`;
//! schema `multiscalar-chaos-serve/v1`). `--artifacts DIR` additionally
//! writes every point's merged bytes next to the baseline so CI can
//! `cmp` them. Exits non-zero on any violated check or unmet
//! robustness floor.
//!
//! The hidden `--worker` first argument turns the process into a shard
//! worker (see `ms_serve::worker`): the serve campaign's supervisors
//! re-invoke this same binary as their worker processes.

use ms_chaos::{run_campaign, run_serve_campaign, Campaign, ServeCampaign};
use ms_chaos::{HOST_PLAN_NAMES, PLAN_NAMES};
use ms_sweep::artifacts;
use ms_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: mschaos [--workloads a,b,...] [--plans {}] \
         [--seeds N] [--seed-base B] [--units N] [--scale test|full] \
         [--max-cycles N] [--watchdog N|off] [--out PATH]\n\
         \x20      mschaos serve [--workloads a,b,...] [--plans {}] \
         [--seeds N] [--seed-base B] [--units N] [--scale test|full] \
         [--artifacts DIR] [--out PATH]",
        PLAN_NAMES.join(","),
        HOST_PLAN_NAMES.join(","),
    );
    std::process::exit(2);
}

/// Writes a report artifact crash-safely; exits on failure.
fn write_report(path: &str, bytes: &str) {
    if let Err(e) = artifacts::write_atomic(std::path::Path::new(path), bytes.as_bytes()) {
        eprintln!("writing {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn serve_main(mut it: std::iter::Skip<std::env::Args>) -> ! {
    let mut campaign = ServeCampaign::default();
    let mut out_path = "CHAOS_serve_report.json".to_string();

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workloads" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--workloads needs a comma-separated list");
                    usage()
                });
                campaign.workloads = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--plans" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--plans needs a comma-separated list");
                    usage()
                });
                campaign.plans = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--seeds" => {
                campaign.seeds =
                    it.next().and_then(|v| v.parse().ok()).filter(|&s| s > 0).unwrap_or_else(
                        || {
                            eprintln!("--seeds needs a positive integer");
                            usage()
                        },
                    );
            }
            "--seed-base" => {
                campaign.seed_base = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed-base needs an integer");
                    usage()
                });
            }
            "--units" => {
                campaign.units =
                    it.next().and_then(|v| v.parse().ok()).filter(|&u| u > 0).unwrap_or_else(
                        || {
                            eprintln!("--units needs a positive integer");
                            usage()
                        },
                    );
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--scale needs test|full");
                    usage()
                });
                campaign.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale `{v}` (use test|full)");
                    usage()
                });
            }
            "--artifacts" => {
                campaign.artifacts_dir = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--artifacts needs a directory");
                            usage()
                        })
                        .into(),
                );
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    usage()
                });
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let report = run_serve_campaign(&campaign).unwrap_or_else(|e| {
        eprintln!("mschaos serve: {e}");
        std::process::exit(2);
    });

    let failures = report.failures();
    let totals = report.totals();
    println!(
        "mschaos serve: {} points ({} plans x {} seeds): {} passed, {} failed",
        report.points.len(),
        campaign.plans.len(),
        campaign.seeds,
        report.points.len() - failures,
        failures,
    );
    println!(
        "  restarts {} deaths {} deadline-kills {} requeued {} requeue-deduped {} \
         duplicates-discarded {} poisoned {} cache-quarantined {}",
        totals.restarts,
        totals.deaths,
        totals.deadline_kills,
        totals.requeued,
        totals.requeue_deduped,
        totals.duplicates_discarded,
        totals.poisoned,
        totals.cache_quarantined,
    );
    for p in report.points.iter().filter(|p| p.failure.is_some()) {
        println!(
            "FAIL {} seed {}: {}\n  repro: mschaos serve --plans {} --seeds 1 --seed-base {} \
             --units {} --scale {}",
            p.plan,
            p.seed,
            p.failure.as_deref().unwrap_or(""),
            p.plan,
            p.seed,
            campaign.units,
            campaign.scale.id(),
        );
    }
    let gaps = report.robustness_gaps();
    for gap in &gaps {
        println!("FLOOR {gap}");
    }

    write_report(&out_path, &report.to_json());
    if failures > 0 || !gaps.is_empty() {
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut it = std::env::args().skip(1);
    let mut first = it.next();
    match first.as_deref() {
        // Shard-worker mode: this very binary, re-invoked by the serve
        // campaign's supervisors as their worker processes.
        Some("--worker") => std::process::exit(ms_serve::worker_main()),
        Some("serve") => serve_main(it),
        _ => {}
    }

    let mut campaign = Campaign::default();
    let mut out_path = "CHAOS_report.json".to_string();
    while let Some(arg) = first.take().or_else(|| it.next()) {
        match arg.as_str() {
            "--workloads" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--workloads needs a comma-separated list");
                    usage()
                });
                campaign.workloads = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--plans" => {
                let list = it.next().unwrap_or_else(|| {
                    eprintln!("--plans needs a comma-separated list");
                    usage()
                });
                campaign.plans = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--seeds" => {
                campaign.seeds =
                    it.next().and_then(|v| v.parse().ok()).filter(|&s| s > 0).unwrap_or_else(
                        || {
                            eprintln!("--seeds needs a positive integer");
                            usage()
                        },
                    );
            }
            "--seed-base" => {
                campaign.seed_base = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed-base needs an integer");
                    usage()
                });
            }
            "--units" => {
                campaign.units =
                    it.next().and_then(|v| v.parse().ok()).filter(|&u| u > 0).unwrap_or_else(
                        || {
                            eprintln!("--units needs a positive integer");
                            usage()
                        },
                    );
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--scale needs test|full");
                    usage()
                });
                campaign.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale `{v}` (use test|full)");
                    usage()
                });
            }
            "--max-cycles" => {
                campaign.max_cycles =
                    it.next().and_then(|v| v.parse().ok()).filter(|&c| c > 0).unwrap_or_else(
                        || {
                            eprintln!("--max-cycles needs a positive integer");
                            usage()
                        },
                    );
            }
            "--watchdog" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--watchdog needs a cycle count or `off`");
                    usage()
                });
                campaign.watchdog = if v == "off" {
                    None
                } else {
                    Some(v.parse().ok().filter(|&w| w > 0).unwrap_or_else(|| {
                        eprintln!("--watchdog needs a positive integer or `off`");
                        usage()
                    }))
                };
            }
            "--out" => {
                out_path = it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    usage()
                });
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let report = run_campaign(&campaign).unwrap_or_else(|e| {
        eprintln!("mschaos: {e}");
        std::process::exit(2);
    });

    let failures = report.failures();
    println!(
        "mschaos: {} points ({} workloads x {} plans x {} seeds): {} passed, {} failed",
        report.points.len(),
        report.points.iter().map(|p| &p.workload).collect::<std::collections::BTreeSet<_>>().len(),
        campaign.plans.len(),
        campaign.seeds,
        report.points.len() - failures,
        failures,
    );
    for p in report.points.iter().filter(|p| p.failure.is_some()) {
        println!(
            "FAIL {} {} seed {}: {}\n  repro: {}",
            p.workload,
            p.plan,
            p.seed,
            p.failure.as_deref().unwrap_or(""),
            p.repro(&campaign),
        );
    }

    write_report(&out_path, &report.to_json());
    if failures > 0 {
        std::process::exit(1);
    }
}
