//! Service-layer chaos: seeded host-level faults against the
//! process-shard runtime, with a byte-identity oracle.
//!
//! The microarchitectural campaigns in the crate root perturb the
//! simulator *inside* one process and check sequential semantics. This
//! module perturbs the *host layer* — the supervised worker processes,
//! the sweep cache, and the `msserve` daemon — and checks the service
//! invariant instead: **no host fault may change an artifact byte**.
//! Every plan runs the same job list through a
//! [`ProcessShardExecutor`] (or a live [`Server`] backed by one) while a
//! seeded fault fires, then compares the merged `results.json` bytes
//! against an undisturbed single-process run.
//!
//! The host-fault plans ([`HOST_PLAN_NAMES`]):
//!
//! * `worker-kill` — a worker SIGKILLs itself mid-job; the supervisor
//!   must restart it and re-queue the orphan exactly once.
//! * `worker-stall` — a worker stalls past its per-job deadline while
//!   its heartbeats keep flowing; only the deadline can catch it.
//! * `dup-job` — one dispatch is deliberately duplicated; the second
//!   result must be discarded, never double-merged.
//! * `torn-cache` — sweep-cache entries are truncated/corrupted on
//!   disk; reads must quarantine to `.corrupt` and recompute.
//! * `conn-drop` — a client vanishes mid-request/mid-response; the
//!   daemon must shrug and serve the next connection identical bytes.
//!
//! Faults are derived from the seed with the same splitmix64 mixing the
//! microarchitectural plans use, so a campaign point is reproducible
//! from `(plan, seed)` alone. The report (schema
//! `multiscalar-chaos-serve/v1`) carries per-point supervisor counters;
//! unlike the microarchitectural report its counter values are
//! *observational* (host scheduling decides e.g. how a re-queue
//! resolves), but the oracle columns — `identical` and `failure` — are
//! not negotiable.

use crate::mix;
use ms_serve::protocol::{self, Response};
use ms_serve::worker::FAULT_ENV;
use ms_serve::{ProcessShardExecutor, Server, ServerConfig, ShardOptions, ShardStats};
use ms_sweep::{artifacts, run_jobs_with, Executor, InProcessExecutor};
use ms_sweep::{SweepCache, SweepOptions, SweepSpec};
use ms_workloads::Scale;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The built-in host-fault plan shapes, in campaign order.
pub const HOST_PLAN_NAMES: [&str; 5] =
    ["worker-kill", "worker-stall", "dup-job", "torn-cache", "conn-drop"];

/// A service-layer chaos campaign: every (plan × seed) point runs the
/// full job list under one seeded host fault and checks byte identity.
#[derive(Clone, Debug)]
pub struct ServeCampaign {
    /// Workloads in the job list (each contributes a scalar and a
    /// multiscalar design point, so `stable_key` round-tripping and both
    /// engine kinds are exercised).
    pub workloads: Vec<String>,
    /// Plans to run (subset of [`HOST_PLAN_NAMES`]).
    pub plans: Vec<String>,
    /// Seeds per plan.
    pub seeds: usize,
    /// First seed; point `s` uses `seed_base + s`.
    pub seed_base: u64,
    /// Units for the multiscalar design points.
    pub units: usize,
    /// Workload scale.
    pub scale: Scale,
    /// Worker command for the shard pools. `None` uses the
    /// [`ShardOptions`] default: the current executable re-invoked with
    /// `--worker` (which is why the `mschaos` binary has a hidden
    /// `--worker` mode). Tests point this at `mschaos` explicitly.
    pub worker_cmd: Option<Vec<String>>,
    /// Scratch directory for the `torn-cache` plan's cache dirs
    /// (default: the system temp dir). Each point uses a fresh
    /// subdirectory and removes it afterwards.
    pub scratch: Option<PathBuf>,
    /// If set, every point's merged `results.json` bytes are written
    /// here (atomically) as `<plan>-<seed>.results.json`, next to the
    /// undisturbed `baseline.results.json` — so CI can `cmp` them
    /// independently of this module's own oracle.
    pub artifacts_dir: Option<PathBuf>,
}

impl Default for ServeCampaign {
    fn default() -> ServeCampaign {
        ServeCampaign {
            workloads: vec!["wc".into(), "cmp".into()],
            plans: HOST_PLAN_NAMES.iter().map(|s| s.to_string()).collect(),
            seeds: 2,
            seed_base: 0,
            units: 4,
            scale: Scale::Test,
            worker_cmd: None,
            scratch: None,
            artifacts_dir: None,
        }
    }
}

/// One finished (plan × seed) point.
#[derive(Clone, Debug)]
pub struct ServePointResult {
    /// Plan shape name (one of [`HOST_PLAN_NAMES`]).
    pub plan: String,
    /// Seed this point ran with.
    pub seed: u64,
    /// Whether the merged artifact was byte-identical to the
    /// undisturbed single-process run.
    pub identical: bool,
    /// Supervisor counters for the shard pool this point ran on.
    pub shard: ShardStats,
    /// Torn cache entries quarantined to `.corrupt` and recomputed
    /// (non-zero only for the `torn-cache` plan).
    pub cache_quarantined: u64,
    /// `None` when every check held; otherwise a `;`-joined list of the
    /// violated expectations.
    pub failure: Option<String>,
}

/// Aggregated robustness counters across every point of a campaign.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeTotals {
    /// Worker respawns after a death.
    pub restarts: u64,
    /// Worker deaths observed.
    pub deaths: u64,
    /// Deaths caused by a per-job deadline kill.
    pub deadline_kills: u64,
    /// Orphaned jobs re-queued by identity.
    pub requeued: u64,
    /// Orphan re-queues deduplicated against a live assignment.
    pub requeue_deduped: u64,
    /// Duplicate results discarded on arrival.
    pub duplicates_discarded: u64,
    /// Job identities quarantined as poison.
    pub poisoned: u64,
    /// Torn cache entries quarantined and recomputed.
    pub cache_quarantined: u64,
}

/// A finished service-layer campaign.
#[derive(Clone, Debug)]
pub struct ServeCampaignReport {
    /// The campaign that was run.
    pub campaign: ServeCampaign,
    /// One result per (plan × seed), in that nesting order.
    pub points: Vec<ServePointResult>,
}

impl ServeCampaignReport {
    /// Number of points that violated a check.
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| p.failure.is_some()).count()
    }

    /// Sums the robustness counters across every point.
    pub fn totals(&self) -> ServeTotals {
        let mut t = ServeTotals::default();
        for p in &self.points {
            t.restarts += p.shard.restarts;
            t.deaths += p.shard.deaths;
            t.deadline_kills += p.shard.deadline_kills;
            t.requeued += p.shard.requeued;
            t.requeue_deduped += p.shard.requeue_deduped;
            t.duplicates_discarded += p.shard.duplicates_discarded;
            t.poisoned += p.shard.poisoned;
            t.cache_quarantined += p.cache_quarantined;
        }
        t
    }

    /// The robustness floor the issue demands of a full campaign: at
    /// least one restart, one quarantine-and-recompute, and one
    /// deduplicated/discarded re-queued job across the plan set.
    /// Expectations are only levied for plans that actually ran; the
    /// returned list names every unmet one (empty = floor met).
    pub fn robustness_gaps(&self) -> Vec<String> {
        let ran = |p: &str| self.campaign.plans.iter().any(|q| q == p);
        let t = self.totals();
        let mut gaps = Vec::new();
        if (ran("worker-kill") || ran("worker-stall")) && t.restarts == 0 {
            gaps.push("no worker restart recorded".to_string());
        }
        if ran("torn-cache") && t.cache_quarantined == 0 {
            gaps.push("no cache quarantine-and-recompute recorded".to_string());
        }
        if ran("dup-job") && t.duplicates_discarded == 0 {
            gaps.push("no deduplicated re-queued job recorded".to_string());
        }
        gaps
    }

    /// Serializes the report as JSON, schema `multiscalar-chaos-serve/v1`
    /// (fixed field order; counter *values* are observational).
    pub fn to_json(&self) -> String {
        use ms_trace::json;
        let mut out = String::from("{\"schema\":\"multiscalar-chaos-serve/v1\"");
        out.push_str(&format!(",\"scale\":{}", json::string(self.campaign.scale.id())));
        out.push_str(&format!(",\"units\":{}", self.campaign.units));
        out.push_str(&format!(
            ",\"seeds\":{},\"seed_base\":{}",
            self.campaign.seeds, self.campaign.seed_base
        ));
        out.push_str(",\"workloads\":[");
        for (i, w) in self.campaign.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(w));
        }
        out.push_str("],\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"plan\":{},\"seed\":{},\"identical\":{},\"cache_quarantined\":{},\
                 \"shard\":{},\"failure\":{}}}",
                json::string(&p.plan),
                p.seed,
                p.identical,
                p.cache_quarantined,
                p.shard.to_json(),
                p.failure.as_deref().map_or("null".into(), json::string),
            ));
        }
        let t = self.totals();
        out.push_str(&format!(
            "],\"totals\":{{\"restarts\":{},\"deaths\":{},\"deadline_kills\":{},\
             \"requeued\":{},\"requeue_deduped\":{},\"duplicates_discarded\":{},\
             \"poisoned\":{},\"cache_quarantined\":{}}}",
            t.restarts,
            t.deaths,
            t.deadline_kills,
            t.requeued,
            t.requeue_deduped,
            t.duplicates_discarded,
            t.poisoned,
            t.cache_quarantined,
        ));
        out.push_str(&format!(",\"failures\":{}}}", self.failures()));
        out
    }
}

/// The sweep spec every point (and the baseline) expands: both engine
/// kinds per workload, one multiscalar width/order, `units` units.
fn spec(c: &ServeCampaign) -> SweepSpec {
    SweepSpec {
        workloads: c.workloads.clone(),
        scale: c.scale,
        widths: vec![1],
        orders: vec![false],
        unit_counts: vec![c.units],
        include_scalar: true,
        partitions: Vec::new(),
    }
}

fn shard_opts(c: &ServeCampaign) -> ShardOptions {
    ShardOptions { worker_cmd: c.worker_cmd.clone(), ..ShardOptions::default() }
}

/// Accumulates violated expectations for one point.
struct Checks(Vec<String>);

impl Checks {
    fn expect(&mut self, ok: bool, what: &str) {
        if !ok {
            self.0.push(what.to_string());
        }
    }

    fn into_failure(self) -> Option<String> {
        if self.0.is_empty() {
            None
        } else {
            Some(self.0.join("; "))
        }
    }
}

/// Runs the job list through `exec` and returns the merged bytes.
fn merged_json(c: &ServeCampaign, opts: &SweepOptions, exec: &dyn Executor) -> String {
    artifacts::results_json(&run_jobs_with(spec(c).expand(), opts, exec))
}

fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

/// `worker-kill` / `worker-stall`: one worker armed with a seeded fault
/// on a seeded job index; a single slot so the fault always fires.
fn run_worker_fault(
    c: &ServeCampaign,
    plan: &str,
    seed: u64,
    baseline: &str,
) -> (String, ShardStats, u64, Checks) {
    let jobs = spec(c).expand().len() as u64;
    let stall = plan == "worker-stall";
    let k = mix(seed ^ if stall { 0x57a1 } else { 0x1c11 }) % jobs.max(1);
    let fault = if stall { format!("stall@{k}:60000") } else { format!("kill@{k}") };
    let exec = ProcessShardExecutor::start(ShardOptions {
        workers: 1,
        job_deadline_ms: if stall { 250 } else { 120_000 },
        worker_env: vec![(0, FAULT_ENV.into(), fault)],
        ..shard_opts(c)
    });
    let merged = merged_json(c, &SweepOptions::default(), &exec);
    let stats = exec.stats();
    exec.shutdown();

    let mut ck = Checks(Vec::new());
    ck.expect(merged == baseline, "merged bytes diverged from baseline");
    ck.expect(stats.deaths >= 1, "fault caused no worker death");
    ck.expect(stats.restarts >= 1, "no restart after the death");
    ck.expect(stats.requeued + stats.requeue_deduped >= 1, "orphaned job was not re-queued");
    if stall {
        ck.expect(stats.deadline_kills >= 1, "stall was not caught by the job deadline");
    }
    ck.expect(stats.poisoned == 0, "a transient fault must not poison");
    (merged, stats, 0, ck)
}

/// `dup-job`: a seeded dispatch is issued twice; the second arrival must
/// be discarded, and the merge must not see it.
fn run_dup_job(c: &ServeCampaign, seed: u64, baseline: &str) -> (String, ShardStats, u64, Checks) {
    let jobs = spec(c).expand().len() as u64;
    let exec = ProcessShardExecutor::start(ShardOptions {
        duplicate_nth: Some(mix(seed ^ 0xd0b) % jobs.max(1)),
        ..shard_opts(c)
    });
    let merged = merged_json(c, &SweepOptions::default(), &exec);
    // The duplicate ticket settles after the original result; wait for
    // its arrival to be recorded as discarded before reading counters.
    let discarded = wait_for(|| exec.stats().duplicates_discarded >= 1);
    let stats = exec.stats();
    exec.shutdown();

    let mut ck = Checks(Vec::new());
    ck.expect(merged == baseline, "merged bytes diverged from baseline");
    ck.expect(discarded, "duplicate result was never discarded");
    ck.expect(stats.completed == jobs, "a duplicate double-settled a job");
    ck.expect(stats.dispatched > stats.completed, "the duplicate was never dispatched");
    (merged, stats, 0, ck)
}

/// `torn-cache`: populate a real cache, corrupt a seeded subset of its
/// entries on disk, then re-run through process shards. Every torn
/// entry must be quarantined to `.corrupt` and recomputed.
fn run_torn_cache(
    c: &ServeCampaign,
    seed: u64,
    baseline: &str,
) -> (String, ShardStats, u64, Checks) {
    let root = c.scratch.clone().unwrap_or_else(std::env::temp_dir);
    let dir = root.join(format!("ms-chaos-serve-cache-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = SweepCache::at(&dir);
    let opts = SweepOptions { cache: cache.clone(), ..SweepOptions::default() };

    let mut ck = Checks(Vec::new());
    // Populate the cache with an undisturbed in-process run.
    let _ = merged_json(c, &opts, &InProcessExecutor::new());

    // Tear a seeded subset of the published entries (always >= 1): a
    // truncation models a crash mid-write, a flipped tail models rot.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "entry"))
                .collect()
        })
        .unwrap_or_default();
    entries.sort();
    ck.expect(!entries.is_empty(), "populate pass published no cache entries");
    let mut torn = 0u64;
    for (i, path) in entries.iter().enumerate() {
        let pick = mix(seed ^ 0x7042 ^ i as u64);
        if pick.is_multiple_of(2) && !(i == entries.len() - 1 && torn == 0) {
            continue;
        }
        torn += 1;
        let bytes = std::fs::read(path).unwrap_or_default();
        let tear: Vec<u8> = if pick % 4 < 2 {
            bytes[..bytes.len() / 2].to_vec()
        } else {
            let mut b = bytes;
            b.extend_from_slice(b"torn by mschaos serve\n");
            b
        };
        if std::fs::write(path, tear).is_err() {
            ck.expect(false, "could not tear a cache entry");
        }
    }

    // The perturbed run: torn entries must be quarantined and recomputed
    // by the shard pool; intact entries still serve as hits.
    let exec = ProcessShardExecutor::start(shard_opts(c));
    let merged = merged_json(c, &opts, &exec);
    let stats = exec.stats();
    exec.shutdown();

    ck.expect(merged == baseline, "merged bytes diverged from baseline");
    ck.expect(cache.quarantined() == torn, "quarantine count != torn entries");
    ck.expect(stats.completed >= torn, "quarantined entries were not recomputed");
    let _ = std::fs::remove_dir_all(&dir);
    (merged, stats, cache.quarantined(), ck)
}

/// `conn-drop`: against a live daemon backed by process shards, a
/// seeded misbehaving client vanishes (after a full request, or mid
/// request line); the next well-behaved connection must still get
/// byte-identical artifacts.
fn run_conn_drop(
    c: &ServeCampaign,
    seed: u64,
    baseline: &str,
) -> (String, ShardStats, u64, Checks) {
    use ms_trace::json;
    let mut ck = Checks(Vec::new());
    let exec = Arc::new(ProcessShardExecutor::start(shard_opts(c)));
    let cfg = ServerConfig { cache: SweepCache::disabled(), ..ServerConfig::default() };
    let server = match Server::start(cfg, Arc::clone(&exec) as Arc<dyn Executor>) {
        Ok(server) => server,
        Err(e) => {
            ck.expect(false, &format!("daemon failed to bind: {e}"));
            let stats = exec.stats();
            exec.shutdown();
            return (String::new(), stats, 0, ck);
        }
    };
    let addr = server.addr();

    let workloads = c.workloads.iter().map(|w| json::string(w)).collect::<Vec<_>>().join(",");
    let line = format!(
        "{{\"op\":\"sweep\",\"id\":1,\"workloads\":[{workloads}],\"scale\":{},\
         \"widths\":[1],\"order\":\"inorder\",\"units\":[{}],\"scalar\":true}}",
        json::string(c.scale.id()),
        c.units,
    );

    // The vanishing client: drop after the full request (the daemon
    // computes, then writes into a dead socket) or mid request line
    // (the daemon reads a torn line) — seed decides.
    let dropped = (|| -> std::io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut hello = String::new();
        reader.read_line(&mut hello)?;
        if mix(seed ^ 0xd409).is_multiple_of(2) {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        } else {
            writer.write_all(&line.as_bytes()[..line.len() / 2])?;
        }
        Ok(()) // both handles drop here: RST/EOF mid-conversation
    })();
    ck.expect(dropped.is_ok(), "the dropping client could not even connect");

    // The well-behaved client, on a fresh connection.
    let served = (|| -> Result<String, String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(Duration::from_secs(60))).map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        reader.read_line(&mut buf).map_err(|e| e.to_string())?; // hello
        writer.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        writer.write_all(b"\n").map_err(|e| e.to_string())?;
        buf.clear();
        reader.read_line(&mut buf).map_err(|e| e.to_string())?;
        match protocol::parse_response(&buf) {
            Ok(Response::SweepResult { payload, .. }) => Ok(payload),
            Ok(other) => Err(format!("unexpected response: {other:?}")),
            Err(e) => Err(format!("unparseable response: {e}")),
        }
    })();
    let merged = match served {
        Ok(payload) => payload,
        Err(e) => {
            ck.expect(false, &format!("well-behaved client failed after the drop: {e}"));
            String::new()
        }
    };
    ck.expect(merged == baseline, "served bytes diverged from baseline after the drop");

    server.shutdown();
    server.join();
    let stats = exec.stats();
    exec.shutdown();
    ck.expect(stats.completed >= spec(c).expand().len() as u64, "shard pool computed nothing");
    (merged, stats, 0, ck)
}

/// Runs the campaign: every (plan × seed) point, each under its seeded
/// host fault, each checked against the undisturbed baseline bytes.
///
/// `Err` is reserved for campaign-level misconfiguration (unknown plan,
/// empty job list, unwritable artifact dir); per-point violations land
/// in [`ServePointResult::failure`] so one bad point never hides the
/// others.
pub fn run_serve_campaign(c: &ServeCampaign) -> Result<ServeCampaignReport, String> {
    for plan in &c.plans {
        if !HOST_PLAN_NAMES.contains(&plan.as_str()) {
            return Err(format!(
                "unknown serve plan `{plan}` (expected one of {})",
                HOST_PLAN_NAMES.join(", ")
            ));
        }
    }
    let jobs = spec(c).expand();
    if jobs.is_empty() {
        return Err("campaign expands to an empty job list".to_string());
    }

    // The undisturbed single-process truth every point is held to.
    let baseline = artifacts::results_json(&run_jobs_with(
        jobs,
        &SweepOptions::default(),
        &InProcessExecutor::new(),
    ));
    let write_artifact = |name: &str, bytes: &str| -> Result<(), String> {
        let Some(dir) = &c.artifacts_dir else { return Ok(()) };
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let path = dir.join(name);
        artifacts::write_atomic(&path, bytes.as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write_artifact("baseline.results.json", &baseline)?;

    let mut points = Vec::new();
    for plan in &c.plans {
        for s in 0..c.seeds.max(1) {
            let seed = c.seed_base.wrapping_add(s as u64);
            let (merged, shard, cache_quarantined, ck) = match plan.as_str() {
                "worker-kill" | "worker-stall" => run_worker_fault(c, plan, seed, &baseline),
                "dup-job" => run_dup_job(c, seed, &baseline),
                "torn-cache" => run_torn_cache(c, seed, &baseline),
                _ => run_conn_drop(c, seed, &baseline),
            };
            write_artifact(&format!("{plan}-{seed}.results.json"), &merged)?;
            points.push(ServePointResult {
                plan: plan.clone(),
                seed,
                identical: merged == baseline,
                shard,
                cache_quarantined,
                failure: ck.into_failure(),
            });
        }
    }
    Ok(ServeCampaignReport { campaign: c.clone(), points })
}
