//! A tagged instruction: operation plus multiscalar tag bits.

use crate::op::Op;
use crate::tags::{StopCond, TagBits};
use std::fmt;

/// An instruction as stored in a multiscalar program: the base-ISA
/// operation plus the forward/stop tag bits of Section 2.2.
///
/// In hardware the tag bits may live in a side table concatenated with the
/// instruction on an instruction-cache miss; architecturally they are part
/// of the instruction, so we store them together.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The base operation.
    pub op: Op,
    /// Multiscalar tag bits.
    pub tags: TagBits,
}

impl Instr {
    /// An untagged instruction.
    pub fn new(op: Op) -> Instr {
        Instr { op, tags: TagBits::NONE }
    }

    /// Sets the forward bit (builder style).
    pub fn with_forward(mut self) -> Instr {
        self.tags.forward = true;
        self
    }

    /// Sets the stop condition (builder style).
    pub fn with_stop(mut self, stop: StopCond) -> Instr {
        self.tags.stop = stop;
        self
    }
}

impl From<Op> for Instr {
    fn from(op: Op) -> Instr {
        Instr::new(op)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = format!("{}{}", self.op.mnemonic(), self.tags.suffix());
        let ops = self.op.operands();
        if ops.is_empty() {
            write!(f, "{m}")
        } else {
            write!(f, "{m} {ops}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn display_includes_tag_suffixes() {
        let i = Instr::new(Op::Bne { rs: Reg::int(20), rt: Reg::int(16), off: -14 })
            .with_stop(StopCond::Always);
        assert_eq!(i.to_string(), "bne!s $20, $16, -14");

        let j = Instr::new(Op::Halt);
        assert_eq!(j.to_string(), "halt");
    }

    #[test]
    fn builders_compose() {
        let i = Instr::new(Op::Nop).with_forward().with_stop(StopCond::IfTaken);
        assert!(i.tags.forward);
        assert_eq!(i.tags.stop, StopCond::IfTaken);
    }
}
